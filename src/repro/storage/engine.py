"""The durable storage engine: transactions, WAL, checkpoint, recovery.

Attachment model: a :class:`StorageEngine` attaches to one in-memory
:class:`~repro.relational.database.Database` by installing itself as the
*journal* of the catalog and of every registered relation.  From then on
every relation mutation and every DDL action reports its redo payload
here *before* applying, and the engine groups those payloads into
transactions:

* ``begin()`` / ``commit()`` / ``rollback()`` -- the explicit API;
* ``statement()`` -- a scope the SQL executor wraps around each DML
  statement, giving autocommit-per-statement semantics (and statement
  rollback on error) when no explicit transaction is open;
* any mutation outside both -- its own single-record transaction.

Transactions reach the WAL only at commit (redo-only, no-steal): the
``begin``/``mut``/``ddl``/``rule_sync``/``commit`` records are appended
as one batch and fsynced per policy, so a crash leaves each transaction
either fully logged or torn at the tail -- recovery therefore always
restores a *prefix of committed transactions*.  Rollback undoes the
in-memory changes from per-relation pre-images captured at first touch.

Recovery (ARIES-lite, redo-only) = load the latest snapshot, then
replay the WAL tail: records are applied in LSN order, only for
transactions whose ``commit`` record survived, and idempotently -- each
mutation record carries the relation's post-mutation version, and replay
skips records at or below the relation's current watermark.  Replayed
mutations go through the same ``_touch`` path as live ones, so index
and statistics caches invalidate identically.

The engine also tracks whether the **rule base** (the rule relations of
:mod:`repro.rules.rule_relations`) still describes the data: an ILS run
commits a ``rule_sync`` marker in the same transaction as the rule
relations, and any later committed data mutation marks the rules stale.
Recovery reports that flag so the query system can degrade to
extensional-only answers instead of serving wrong intensional ones.
"""

from __future__ import annotations

import os
import time
from typing import Any

from repro import obs
from repro.errors import RecoveryError, StorageError
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.rules.rule_relations import (
    ATTRIBUTE_MAP_NAME, INDUCTION_META_NAME, RULE_RELATION_NAME,
    SUPPORT_RELATION_NAME, VALUE_MAP_NAME,
)
from repro.storage import codec
from repro.storage.faults import REAL_OPS, FileOps
from repro.storage.snapshot import (
    SNAPSHOT_FILE, load_snapshot, snapshot_exists, write_snapshot,
)
from repro.storage.wal import WriteAheadLog, read_records

WAL_FILE = "wal.jsonl"

#: How many idempotency-dedup entries the engine keeps (and carries
#: across checkpoints in the snapshot metadata).  Retry windows are
#: seconds; the cap only bounds memory, not correctness within them.
DEDUP_KEEP = 4096

#: Relations that *are* the knowledge base; mutations of anything else
#: count as data mutations for rule-staleness tracking.
RULE_RELATIONS = frozenset(name.lower() for name in (
    RULE_RELATION_NAME, ATTRIBUTE_MAP_NAME, VALUE_MAP_NAME,
    SUPPORT_RELATION_NAME, INDUCTION_META_NAME))


def is_rule_relation(name: str) -> bool:
    return name.lower() in RULE_RELATIONS


class _Transaction:
    """Buffered redo records plus in-memory undo state for one tx.

    ``last_insert_rel``/``last_insert_rows`` point at the trailing
    record when it is an insert, so consecutive inserts to the same
    relation can coalesce without re-inspecting the record dict on
    every row (the WAL hot path).  Any other record appended in between
    must reset ``last_insert_rel`` to ``None``.
    """

    __slots__ = ("txid", "records", "undo",
                 "last_insert_rel", "last_insert_rows",
                 "last_insert_plain")

    def __init__(self, txid: int):
        self.txid = txid
        self.records: list[dict] = []
        self.undo: list[tuple] = []
        self.last_insert_rel: Relation | None = None
        self.last_insert_rows: list | None = None
        self.last_insert_plain = True


class _StatementScope:
    """Context manager the executor wraps around one DML statement."""

    __slots__ = ("engine",)

    def __init__(self, engine: "StorageEngine"):
        self.engine = engine

    def __enter__(self) -> "_StatementScope":
        self.engine._scope_depth += 1
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        engine = self.engine
        engine._scope_depth -= 1
        if exc_type is not None:
            # A failed statement aborts its transaction -- the implicit
            # one it opened, or (PostgreSQL-style) the enclosing
            # explicit one, which cannot be left half-applied.
            if engine._tx is not None:
                engine._rollback_current()
            return None
        if (engine._tx is not None and not engine._explicit
                and engine._scope_depth == 0):
            engine._flush_commit()


class RecoveryReport:
    """What recovery found and did; rendered by the CLI."""

    def __init__(self) -> None:
        self.snapshot_used = False
        self.snapshot_lsn = 0
        self.replayed_records = 0
        self.committed_transactions = 0
        self.discarded_records = 0
        self.torn_tail = False
        self.rules_stale = False
        self.has_rules = False
        self.last_lsn = 0
        #: committed idempotency entries (key -> recorded response):
        #: snapshot metadata overlaid with the WAL tail's ``dedup``
        #: records, exactly the retried-DML answers whose effects
        #: survived recovery.
        self.dedup_entries: dict[str, dict] = {}

    def render(self) -> str:
        lines = [
            "recovery complete:",
            f"  snapshot: "
            + (f"loaded (lsn {self.snapshot_lsn})" if self.snapshot_used
               else "none"),
            f"  WAL: {self.replayed_records} records replayed across "
            f"{self.committed_transactions} committed transactions",
        ]
        if self.discarded_records:
            lines.append(f"  discarded: {self.discarded_records} records "
                         "of uncommitted transactions")
        if self.torn_tail:
            lines.append("  torn tail detected and ignored (normal "
                         "after a crash)")
        if self.has_rules:
            lines.append("  rule base: "
                         + ("STALE -- intensional answers degraded"
                            if self.rules_stale else "fresh"))
        return "\n".join(lines)


class StorageEngine:
    """Durability for one database: WAL + snapshots + transactions."""

    def __init__(self, database: Database, data_dir: str,
                 fsync: str = "commit",
                 file_ops: FileOps | None = None):
        os.makedirs(data_dir, exist_ok=True)
        self.database = database
        self.data_dir = data_dir
        self.ops = file_ops or REAL_OPS
        self.wal = WriteAheadLog(os.path.join(data_dir, WAL_FILE),
                                 fsync=fsync, file_ops=self.ops)
        self._tx: _Transaction | None = None
        self._explicit = False
        self._scope_depth = 0
        self._suspended = False
        self._next_tx = 1
        #: rule-staleness tracking (see module docstring).
        self.has_rules = any(is_rule_relation(name)
                             for name in database.catalog.names())
        self.rules_stale = False
        #: committed idempotency entries (insertion-ordered, capped at
        #: :data:`DEDUP_KEEP`); carried into checkpoint metadata so a
        #: WAL rotation cannot forget a recent retried-DML answer.
        self._dedup_recent: dict[str, dict] = {}
        # Attach: become the journal of the catalog and every relation.
        database.storage = self
        database.catalog.journal = self
        for relation in database.catalog:
            relation.journal = self
        if (self.wal.last_lsn == 0 and not snapshot_exists(data_dir)
                and len(database.catalog) > 0):
            self._bootstrap_catalog()

    def _bootstrap_catalog(self) -> None:
        """First attach of a non-empty database to a fresh directory:
        journal the pre-existing catalog as one committed transaction.

        Without this, a crash before the first checkpoint would recover
        an empty database -- or worse, a later rules transaction without
        the data it was induced from, violating the rule-base-never-
        newer-than-data invariant."""
        tx = self._ensure_tx()
        for relation in self.database.catalog:
            record = {"type": "ddl", "op": "register", "tx": tx.txid,
                      "replace": False,
                      **codec.encode_relation(relation)}
            record["name"] = relation.name
            tx.records.append(record)
        if self.has_rules:
            # Pre-existing rule relations describe the pre-existing
            # data: they bootstrap fresh, not stale.
            tx.records.append({
                "type": "rule_sync", "tx": tx.txid,
                "stats_version": self.database.catalog.stats_version()})
        self._flush_commit()

    # -- attachment --------------------------------------------------------

    def detach(self) -> None:
        """Stop journaling (pending implicit work is committed first)."""
        if self._tx is not None:
            if self._explicit:
                self._rollback_current()
            else:
                self._flush_commit()
        self.database.storage = None
        self.database.catalog.journal = None
        for relation in self.database.catalog:
            relation.journal = None
        self.wal.close()

    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.data_dir, SNAPSHOT_FILE)

    # -- journal protocol (called by Relation / Catalog) -------------------

    def log_mutation(self, relation: Relation, op: str,
                     payload: dict[str, Any]) -> None:
        if self._suspended:
            return
        # The insert arm is the WAL hot path (one call per inserted
        # row): the tx lookup, autocommit check and staleness-cache
        # probe are inlined rather than delegated, and consecutive
        # inserts into the same relation coalesce into one record -- a
        # transaction of N single-row inserts would otherwise pay N
        # JSON encodings, the dominant cost of bulk commits.  The first
        # record's truncate undo already covers the grown row range.
        tx = self._tx
        if tx is None:
            tx = self._tx = _Transaction(self._next_tx)
            self._next_tx += 1
        if op == "insert":
            new_rows = payload["rows"]
            if tx.last_insert_rel is relation:
                if tx.last_insert_plain:
                    tx.last_insert_rows.extend(new_rows)
                else:
                    tx.last_insert_rows.extend(
                        codec.encode_row(r) for r in new_rows)
            else:
                needs = codec.schema_needs_row_encoding(relation.schema)
                if needs:
                    rows_out = [codec.encode_row(r) for r in new_rows]
                else:
                    # Validated rows of a date-free schema are JSON-
                    # safe tuples already -- the record references
                    # them; only the containing list is fresh.
                    rows_out = list(new_rows)
                tx.records.append({"type": "mut", "tx": tx.txid,
                                   "rel": relation.name, "op": "insert",
                                   "ver": relation.version + 1,
                                   "rows": rows_out})
                tx.undo.append(("truncate", relation,
                                len(relation.rows)))
                tx.last_insert_rel = relation
                tx.last_insert_rows = rows_out
                tx.last_insert_plain = not needs
            if not self._explicit and self._scope_depth == 0:
                self._flush_commit()
            return
        tx.last_insert_rel = None
        record = {"type": "mut", "tx": tx.txid, "rel": relation.name,
                  "op": op, "ver": relation.version + 1}
        # Undo entries are exact inverses sized to the rows affected (a
        # full pre-image copy would make a transaction of N inserts into
        # an N-row relation quadratic).  The relation has not mutated
        # yet, so its current rows *are* the pre-image.
        rows = relation.rows
        if op == "delete":
            positions = list(payload["positions"])
            record["positions"] = positions
            tx.undo.append(("reinsert", relation,
                            [(index, rows[index]) for index in positions]))
        elif op == "replace":
            changes = payload["changes"]
            record["changes"] = [[index, codec.encode_row(row)]
                                 for index, row in changes]
            tx.undo.append(("putback", relation,
                            [(index, rows[index]) for index, _ in changes]))
        elif op == "clear":
            tx.undo.append(("allrows", relation, list(rows)))
        else:
            raise StorageError(f"unknown mutation op {op!r}")
        tx.records.append(record)
        self._maybe_autocommit()

    def log_register(self, relation: Relation, replace: bool,
                     displaced: Relation | None) -> None:
        if self._suspended:
            return
        tx = self._ensure_tx()
        tx.last_insert_rel = None
        record = {"type": "ddl", "op": "register", "tx": tx.txid,
                  "replace": bool(replace),
                  **codec.encode_relation(relation)}
        record["name"] = relation.name
        tx.records.append(record)
        tx.undo.append(("register", relation, displaced))
        self._maybe_autocommit()

    def log_drop(self, relation: Relation) -> None:
        if self._suspended:
            return
        tx = self._ensure_tx()
        tx.last_insert_rel = None
        tx.records.append({"type": "ddl", "op": "drop", "tx": tx.txid,
                           "name": relation.name})
        tx.undo.append(("drop", relation))
        self._maybe_autocommit()

    def mark_rules_current(self) -> None:
        """Record (transactionally) that the rule relations now describe
        the current data: the ILS calls this inside the same transaction
        that registers the freshly induced rule relations."""
        if self._suspended:
            return
        tx = self._ensure_tx()
        tx.last_insert_rel = None
        tx.records.append({
            "type": "rule_sync", "tx": tx.txid,
            "stats_version": self.database.catalog.stats_version()})
        self._maybe_autocommit()

    def note_dedup(self, key: str, response: dict[str, Any]) -> None:
        """Journal an idempotency entry in the *current* transaction.

        The server wraps an autocommit DML statement in an outer
        :meth:`statement` scope, executes it (the executor's inner scope
        exits at depth 1 without flushing), then calls this -- so the
        ``dedup`` record commits in the same WAL batch as the mutation
        it acknowledges.  A crash therefore either keeps both (retry
        answered from the journal) or neither (retry re-executes
        safely); there is no window where the effect is durable but the
        acknowledgement key is not.
        """
        if self._suspended:
            return
        tx = self._ensure_tx()
        tx.last_insert_rel = None
        tx.records.append({"type": "dedup", "tx": tx.txid,
                           "key": key, "resp": dict(response)})
        self._maybe_autocommit()

    def _remember_dedup(self, records: list[dict]) -> None:
        for record in records:
            if record["type"] == "dedup":
                self._dedup_recent[record["key"]] = record["resp"]
        while len(self._dedup_recent) > DEDUP_KEEP:
            self._dedup_recent.pop(next(iter(self._dedup_recent)))

    # -- transaction machinery ---------------------------------------------

    def _ensure_tx(self) -> _Transaction:
        if self._tx is None:
            self._tx = _Transaction(self._next_tx)
            self._next_tx += 1
        return self._tx

    def _maybe_autocommit(self) -> None:
        if (self._tx is not None and not self._explicit
                and self._scope_depth == 0):
            self._flush_commit()

    def in_transaction(self) -> bool:
        return self._tx is not None and self._explicit

    def begin(self) -> None:
        """Open an explicit transaction; mutations buffer until
        :meth:`commit` and can be undone by :meth:`rollback`."""
        if self._tx is not None:
            raise StorageError(
                "a transaction is already open",
                hint="commit or rollback the open transaction first")
        self._tx = _Transaction(self._next_tx)
        self._next_tx += 1
        self._explicit = True

    def commit(self) -> None:
        """Make the open transaction durable (WAL append + fsync)."""
        if self._tx is None or not self._explicit:
            raise StorageError(
                "no open transaction to commit",
                hint="open one with begin(); plain statements "
                     "autocommit on their own")
        self._flush_commit()

    def rollback(self) -> None:
        """Discard the open transaction, restoring every touched
        relation's pre-transaction rows (nothing reaches the WAL)."""
        if self._tx is None or not self._explicit:
            raise StorageError(
                "no open transaction to roll back",
                hint="open one with begin(); plain statements "
                     "autocommit on their own")
        self._rollback_current()

    def transaction(self):
        """``with engine.transaction(): ...`` -- begin, then commit on
        success or roll back on error."""
        return _TransactionScope(self)

    def statement(self) -> _StatementScope:
        """The per-DML-statement scope (see class docstring)."""
        return _StatementScope(self)

    def _flush_commit(self) -> None:
        tx, self._tx, self._explicit = self._tx, None, False
        if tx is None or not tx.records:
            self._notify_cache("commit")
            return
        records = ([{"type": "begin", "tx": tx.txid}]
                   + tx.records
                   + [{"type": "commit", "tx": tx.txid}])
        self.wal.append(records, commit_batch=True)
        obs.counter("wal_transactions_total",
                    "transactions committed to the WAL").inc()
        self._track_staleness(tx.records)
        self._remember_dedup(tx.records)
        self._notify_cache("commit")

    def _notify_cache(self, event: str) -> None:
        """Tell the query cache a transaction boundary passed: commit
        publishes entries admitted inside the transaction, rollback
        discards them (they were derived from undone state)."""
        cache = getattr(self.database, "_query_cache", None)
        if cache is None:
            return
        if event == "commit":
            cache.on_commit()
        else:
            cache.on_rollback()

    def _track_staleness(self, records: list[dict]) -> None:
        synced_at = touched_data_at = None
        for index, record in enumerate(records):
            if record["type"] == "rule_sync":
                synced_at = index
            elif self._touches_data(record):
                touched_data_at = index
        if synced_at is not None:
            self.has_rules = True
            self.rules_stale = (touched_data_at is not None
                                and touched_data_at > synced_at)
        elif touched_data_at is not None and self.has_rules:
            self.rules_stale = True

    @staticmethod
    def _touches_data(record: dict) -> bool:
        name = record.get("rel") or record.get("name")
        return name is not None and not is_rule_relation(name)

    def _rollback_current(self) -> None:
        tx, self._tx, self._explicit = self._tx, None, False
        if tx is None:
            return
        self._suspended = True
        try:
            for entry in reversed(tx.undo):
                kind = entry[0]
                if kind == "truncate":
                    _kind, relation, length = entry
                    del relation.rows[length:]
                    relation._touch()
                elif kind == "reinsert":
                    _kind, relation, items = entry
                    for position, row in items:  # ascending positions
                        relation.rows.insert(position, row)
                    relation._touch()
                elif kind == "putback":
                    _kind, relation, items = entry
                    for position, row in items:
                        relation.rows[position] = row
                    relation._touch()
                elif kind == "allrows":
                    _kind, relation, rows = entry
                    relation.restore_rows(rows)
                elif kind == "register":
                    _kind, relation, displaced = entry
                    if relation.name in self.database.catalog:
                        self.database.catalog.drop(relation.name)
                    if displaced is not None:
                        self.database.catalog.register(displaced)
                elif kind == "drop":
                    _kind, relation = entry
                    self.database.catalog.register(relation, replace=True)
            self._notify_cache("rollback")
        finally:
            self._suspended = False

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self) -> int:
        """Atomically snapshot the database (rule relations included)
        and truncate the WAL; returns the snapshot's LSN watermark."""
        if self._tx is not None:
            raise StorageError(
                "cannot checkpoint inside an open transaction",
                hint="commit or rollback first; checkpoints must "
                     "capture a quiesced state")
        start = time.perf_counter()
        meta = {
            "database": self.database.name,
            "lsn": self.wal.last_lsn,
            "versions": {relation.name: relation.version
                         for relation in self.database.catalog},
            "next_tx": self._next_tx,
            "has_rules": self.has_rules,
            "rules_stale": self.rules_stale,
            "dedup": dict(self._dedup_recent),
        }
        write_snapshot(self.database, self.snapshot_path, meta, self.ops)
        self.wal.rotate(meta["lsn"])
        obs.counter("checkpoints_total", "snapshots written").inc()
        obs.histogram("checkpoint_seconds", "checkpoint latency").observe(
            time.perf_counter() - start)
        return meta["lsn"]

    # -- recovery ----------------------------------------------------------

    @classmethod
    def recover(cls, data_dir: str, fsync: str = "commit",
                file_ops: FileOps | None = None,
                ) -> tuple["StorageEngine", RecoveryReport]:
        """Restart: load the latest snapshot, replay the WAL tail, and
        return a live engine over the recovered database plus a report.
        """
        report = RecoveryReport()
        snapshot_path = os.path.join(data_dir, SNAPSHOT_FILE)
        next_tx = 1
        if os.path.exists(snapshot_path):
            database, meta = load_snapshot(snapshot_path)
            report.snapshot_used = True
            report.snapshot_lsn = int(meta.get("lsn", 0))
            report.has_rules = bool(meta.get("has_rules"))
            report.rules_stale = bool(meta.get("rules_stale"))
            report.dedup_entries = dict(meta.get("dedup") or {})
            next_tx = int(meta.get("next_tx", 1))
        else:
            database = Database()
        records, torn = read_records(os.path.join(data_dir, WAL_FILE))
        report.torn_tail = torn
        _replay(database, records, report.snapshot_lsn, report)
        for record in records:
            if record["type"] in ("begin", "mut", "ddl", "rule_sync",
                                  "dedup", "commit"):
                next_tx = max(next_tx, int(record["tx"]) + 1)
        report.has_rules = RULE_RELATION_NAME in database.catalog
        if not report.has_rules:
            report.rules_stale = False
        engine = cls(database, data_dir, fsync=fsync, file_ops=file_ops)
        engine._next_tx = next_tx
        engine.has_rules = report.has_rules
        engine.rules_stale = report.rules_stale
        engine._dedup_recent = dict(report.dedup_entries)
        engine._remember_dedup(())  # enforce the DEDUP_KEEP cap
        report.last_lsn = engine.wal.last_lsn
        obs.counter("recovery_runs_total", "recoveries performed").inc()
        obs.counter("recovery_replayed_records_total",
                    "WAL records redone during recovery").inc(
                        report.replayed_records)
        if report.rules_stale:
            obs.counter("recovery_stale_rule_base_total",
                        "recoveries that found a stale rule base").inc()
        return engine, report

    def replay_tail(self) -> RecoveryReport:
        """Apply committed WAL records the live database has not seen
        yet (idempotent, by version watermark) -- the warm-standby path,
        also exercised by the cache-invalidation regression tests."""
        report = RecoveryReport()
        records, torn = read_records(self.wal.path)
        report.torn_tail = torn
        self._suspended = True
        try:
            _replay(self.database, records, 0, report)
        finally:
            self._suspended = False
        report.last_lsn = self.wal.last_lsn
        return report

    # -- status ------------------------------------------------------------

    def status(self) -> dict[str, Any]:
        return {
            "data_dir": self.data_dir,
            "fsync": self.wal.fsync,
            "last_lsn": self.wal.last_lsn,
            "in_transaction": self.in_transaction(),
            "has_rules": self.has_rules,
            "rules_stale": self.rules_stale,
            "snapshot": os.path.exists(self.snapshot_path),
        }


class _TransactionScope:
    __slots__ = ("engine",)

    def __init__(self, engine: StorageEngine):
        self.engine = engine

    def __enter__(self) -> StorageEngine:
        self.engine.begin()
        return self.engine

    def __exit__(self, exc_type, exc, _tb) -> None:
        if exc_type is not None:
            if self.engine._tx is not None:
                self.engine._rollback_current()
            return None
        if self.engine._tx is not None:
            self.engine.commit()


def _replay(database: Database, records: list[dict], start_lsn: int,
            report: RecoveryReport) -> None:
    """Redo committed transactions above *start_lsn* onto *database*."""
    tail = [record for record in records
            if record["lsn"] > start_lsn and record["type"] != "header"]
    committed = {record["tx"] for record in tail
                 if record["type"] == "commit"}
    report.committed_transactions = len(committed)
    last_rules_lsn = last_data_lsn = None
    for record in tail:
        if record["type"] in ("begin", "commit"):
            continue
        if record["tx"] not in committed:
            report.discarded_records += 1
            continue
        if record["type"] == "dedup":
            # Idempotency entries mutate no relation: collect the
            # committed answer for the server's dedup table and move on.
            report.dedup_entries[record["key"]] = record["resp"]
            report.replayed_records += 1
            continue
        _apply(database, record)
        report.replayed_records += 1
        name = record.get("rel") or record.get("name")
        if record["type"] == "rule_sync" or (
                name is not None and is_rule_relation(name)):
            last_rules_lsn = record["lsn"]
        elif name is not None:
            last_data_lsn = record["lsn"]
    # Rule staleness: the snapshot's verdict stands unless the WAL tail
    # has newer evidence either way.
    if last_rules_lsn is not None or last_data_lsn is not None:
        if last_rules_lsn is None:
            report.rules_stale = report.has_rules or report.rules_stale
        else:
            report.rules_stale = (last_data_lsn is not None
                                  and last_data_lsn > last_rules_lsn)
        report.has_rules = True if last_rules_lsn is not None \
            else report.has_rules


def _apply(database: Database, record: dict) -> None:
    kind = record["type"]
    if kind == "rule_sync":
        return
    if kind == "ddl":
        if record["op"] == "register":
            relation = codec.decode_relation(record)
            database.catalog.register(relation, replace=True)
            return
        if record["op"] == "drop":
            if record["name"] in database.catalog:
                database.catalog.drop(record["name"])
            return
        raise RecoveryError(f"unknown DDL op {record['op']!r} in WAL")
    if kind != "mut":
        raise RecoveryError(f"unknown WAL record type {kind!r}")
    try:
        relation = database.relation(record["rel"])
    except Exception as error:
        raise RecoveryError(
            f"WAL mutates unknown relation {record['rel']!r}") from error
    version = int(record["ver"])
    if version <= relation.version:
        return  # already reflected (snapshot or a previous replay)
    op = record["op"]
    rows = relation.rows
    try:
        if op == "insert":
            rows.extend(codec.decode_row(row) for row in record["rows"])
        elif op == "delete":
            doomed = set(record["positions"])
            rows[:] = [row for index, row in enumerate(rows)
                       if index not in doomed]
        elif op == "replace":
            for index, row in record["changes"]:
                rows[index] = codec.decode_row(row)
        elif op == "clear":
            rows.clear()
        else:
            raise RecoveryError(f"unknown mutation op {op!r} in WAL")
    except (IndexError, KeyError) as error:
        raise RecoveryError(
            f"WAL record lsn {record['lsn']} does not fit relation "
            f"{relation.name} (wrong snapshot/WAL pair?)") from error
    # The same invalidation path as a live mutation: bump + hooks ...
    relation._touch()
    # ... then pin the watermark to the logged post-mutation version.
    relation._version = version
