"""Deterministic fault injection for the durable storage engine.

Every file-system side effect of the storage layer -- WAL appends,
fsyncs, snapshot writes, the checkpoint's atomic renames -- goes through
a :class:`FileOps` instance.  The default performs real I/O; a
:class:`FaultInjector` performs real I/O up to a chosen operation index
and then *dies*: it optionally applies a prefix of the final write (a
torn record at any byte offset) and raises :class:`InjectedCrash` for
that and every subsequent operation, exactly as a killed process leaves
a torn tail and performs nothing further.

The crash schedule is a plain pair ``(crash_at, partial_fraction)``, so
a property test can first count a workload's operations with
:class:`CountingOps` and then enumerate every crash point
deterministically -- no randomness hides in this module.
"""

from __future__ import annotations

import os
from typing import TextIO


class InjectedCrash(Exception):
    """The simulated process death.

    Deliberately *not* a :class:`~repro.errors.ReproError`: storage code
    must never catch and absorb it, because a real ``kill -9`` cannot be
    caught either.
    """


class FileOps:
    """Real file-system operations, one method per storage side effect.

    ``kind`` labels the call site (``wal_append``, ``wal_fsync``,
    ``snapshot_write``, ``snapshot_fsync``, ``snapshot_rename``,
    ``wal_rotate``) so injectors and tests can target specific fault
    classes.
    """

    def write(self, handle: TextIO, data: str, kind: str) -> None:
        handle.write(data)

    def fsync(self, handle: TextIO, kind: str) -> None:
        handle.flush()
        os.fsync(handle.fileno())

    def replace(self, source: str, destination: str, kind: str) -> None:
        os.replace(source, destination)


REAL_OPS = FileOps()


class CountingOps(FileOps):
    """Counts operations (performing them for real) so a harness can
    enumerate crash points: run once counting, then once per index."""

    def __init__(self) -> None:
        self.count = 0
        self.kinds: list[str] = []

    def _tick(self, kind: str) -> None:
        self.count += 1
        self.kinds.append(kind)

    def write(self, handle: TextIO, data: str, kind: str) -> None:
        self._tick(kind)
        super().write(handle, data, kind)

    def fsync(self, handle: TextIO, kind: str) -> None:
        self._tick(kind)
        super().fsync(handle, kind)

    def replace(self, source: str, destination: str, kind: str) -> None:
        self._tick(kind)
        super().replace(source, destination, kind)


class FaultInjector(FileOps):
    """Dies at operation ``crash_at`` (0-based).

    For a write, ``partial_fraction`` of the payload (rounded down to a
    byte count) is applied before death -- 0.0 kills the write entirely,
    1.0 lets it complete and kills the process just after.  Non-write
    operations are killed before taking effect.  Once dead, every
    further operation raises immediately.
    """

    def __init__(self, crash_at: int, partial_fraction: float = 0.0):
        if crash_at < 0:
            raise ValueError("crash_at must be >= 0")
        if not 0.0 <= partial_fraction <= 1.0:
            raise ValueError("partial_fraction must be in [0, 1]")
        self.crash_at = crash_at
        self.partial_fraction = partial_fraction
        self.clock = 0
        self.dead = False
        self.died_on: str | None = None

    def _tick(self, kind: str) -> bool:
        """Advance the op clock; True when this op is the crash point."""
        if self.dead:
            raise InjectedCrash(f"already dead (crashed on {self.died_on})")
        fatal = self.clock == self.crash_at
        self.clock += 1
        if fatal:
            self.dead = True
            self.died_on = kind
        return fatal

    def write(self, handle: TextIO, data: str, kind: str) -> None:
        if self._tick(kind):
            prefix = data[:int(len(data) * self.partial_fraction)]
            if prefix:
                handle.write(prefix)
                handle.flush()
            raise InjectedCrash(f"torn {kind} after {len(prefix)} of "
                                f"{len(data)} bytes")
        super().write(handle, data, kind)

    def fsync(self, handle: TextIO, kind: str) -> None:
        if self._tick(kind):
            raise InjectedCrash(f"died before {kind} fsync")
        super().fsync(handle, kind)

    def replace(self, source: str, destination: str, kind: str) -> None:
        if self._tick(kind):
            raise InjectedCrash(f"died before {kind} rename")
        super().replace(source, destination, kind)
