"""Checkpointed snapshots: the whole database in one atomic file.

A snapshot is the text serialization of every relation (rule relations
included -- they are ordinary catalog members, so knowledge relocates
with the data) preceded by one ``%meta`` line: a CRC-protected JSON
object carrying the WAL watermark (``lsn``), each relation's mutation
version, the next transaction id and the rule-base staleness flags.

The write protocol is the classic atomic-publish dance: write to
``<path>.tmp``, fsync, then ``os.replace`` onto the real path.  A crash
at any byte of the tmp write leaves the previous snapshot untouched; a
crash just after the rename leaves the new snapshot fully in place.
There is no state in between, which is what lets recovery trust the
file it finds.
"""

from __future__ import annotations

import json
import os
import zlib

from repro.errors import RecoveryError
from repro.relational.database import Database
from repro.relational.textio import dump_relation, load_relations
from repro.storage.faults import REAL_OPS, FileOps

SNAPSHOT_FILE = "snapshot.db"

_META_PREFIX = "%meta "


def _encode_meta(meta: dict) -> str:
    body = json.dumps(meta, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8"))
    return _META_PREFIX + json.dumps({**meta, "crc": crc}, sort_keys=True,
                                     separators=(",", ":")) + "\n"


def _decode_meta(line: str, path: str) -> dict:
    if not line.startswith(_META_PREFIX):
        raise RecoveryError(
            f"snapshot {path} has no %meta header",
            hint="the file is not a storage-engine snapshot; point the "
                 "engine at its own data directory")
    try:
        meta = json.loads(line[len(_META_PREFIX):])
        crc = meta.pop("crc")
    except (ValueError, KeyError, TypeError) as error:
        raise RecoveryError(
            f"snapshot {path} has an unreadable %meta header") from error
    body = json.dumps(meta, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(body.encode("utf-8")) != crc:
        raise RecoveryError(
            f"snapshot {path} failed its meta CRC check",
            hint="the snapshot is corrupt; restore it from a backup or "
                 "delete it to recover from the WAL alone")
    return meta


def write_snapshot(database: Database, path: str, meta: dict,
                   file_ops: FileOps | None = None) -> None:
    """Atomically publish *database* (plus *meta*) to *path*."""
    ops = file_ops or REAL_OPS
    import io
    buffer = io.StringIO()
    buffer.write(_encode_meta(meta))
    buffer.write(f"%database {database.name}\n")
    for relation in database.catalog:
        dump_relation(relation, buffer)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        ops.write(handle, buffer.getvalue(), "snapshot_write")
        ops.fsync(handle, "snapshot_fsync")
    ops.replace(tmp, path, "snapshot_rename")


def load_snapshot(path: str) -> tuple[Database, dict]:
    """Load the snapshot at *path*; returns the rebuilt database and
    the meta mapping (relation mutation versions restored)."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    if not lines:
        raise RecoveryError(f"snapshot {path} is empty")
    meta = _decode_meta(lines[0].rstrip("\n"), path)
    name = meta.get("database", "db")
    database = Database(name)
    try:
        relations = load_relations(lines[1:])
    except Exception as error:
        raise RecoveryError(
            f"snapshot {path} body failed to parse: {error}",
            hint="the snapshot is corrupt; restore it from a backup or "
                 "delete it to recover from the WAL alone") from error
    versions = meta.get("versions", {})
    for relation in relations:
        database.catalog.register(relation)
        # Restore the mutation-version watermark the relation carried at
        # checkpoint time: WAL replay is made idempotent by comparing
        # record versions against it.
        relation._version = int(versions.get(relation.name, 0))
    return database, meta


def snapshot_exists(data_dir: str) -> bool:
    return os.path.exists(os.path.join(data_dir, SNAPSHOT_FILE))
