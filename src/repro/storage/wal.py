"""The append-only write-ahead log.

One JSONL record per line.  Every record carries a monotonic ``lsn``
and a ``crc`` (CRC32 of the canonical JSON body without the ``crc``
field), so a reader can tell three states apart:

* a **valid record** -- parses, CRC matches, LSN strictly increases;
* a **torn tail** -- the final line fails any of those checks because a
  crash interrupted the append; recovery treats the log as ending at
  the last valid record (this is the normal post-crash state);
* **mid-log corruption** -- an invalid record *followed by* valid ones,
  which no crash of this engine can produce; recovery refuses with
  :class:`~repro.errors.CorruptWalRecord` rather than silently skipping
  committed work.

Transactions are logged at commit time only (redo-only, ARIES-lite):
``begin`` / ``mut``+``ddl``+``rule_sync`` / ``commit`` records are
appended as one batch, so a transaction is either fully present or torn
at the tail -- never interleaved with another.

A ``header`` record carries the LSN watermark a rotated log starts
after, keeping LSNs monotonic across checkpoint truncation.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from typing import Any, Iterable, TextIO

from repro import obs
from repro.errors import CorruptWalRecord, StorageError
from repro.storage.faults import REAL_OPS, FileOps

try:  # pragma: no cover - exercised implicitly by every WAL test
    import orjson

    def _dumps(record: dict) -> str:
        # PASSTHROUGH_DATETIME keeps orjson as strict as the stdlib:
        # an unencoded date reaching the WAL is a codec bug and must
        # raise, not serialize to a form the reader cannot reverse.
        return orjson.dumps(
            record,
            option=orjson.OPT_SORT_KEYS | orjson.OPT_PASSTHROUGH_DATETIME,
        ).decode("utf-8")

    _loads = orjson.loads
except ImportError:  # pragma: no cover - container ships orjson
    def _dumps(record: dict) -> str:
        return json.dumps(record, ensure_ascii=False, sort_keys=True,
                          separators=(",", ":"))

    _loads = json.loads

#: fsync policies: every append batch, only commit batches (default),
#: or never (OS page cache only -- survives process death, not power
#: loss).
FSYNC_POLICIES = ("always", "commit", "never")


def encode_record(record: dict) -> str:
    """The JSONL line for *record*, CRC appended.

    The CRC covers the serialized body exactly as written (everything
    before the spliced ``,"crc":N`` suffix), so the reader verifies the
    raw line bytes instead of re-serializing -- integrity does not
    depend on writer and reader agreeing on a canonical key order or
    even on the same JSON library.  The splice avoids a second full
    dump per record, which on a bulk commit was the single hottest line
    of the append path.
    """
    body = _dumps(record)
    crc = zlib.crc32(body.encode("utf-8"))
    return f'{body[:-1]},"crc":{crc}}}\n'


def decode_record(line: str) -> dict | None:
    """Parse one line; ``None`` when torn/invalid (caller decides
    whether that is a tolerable tail or mid-log corruption)."""
    line = line.strip()
    if not line:
        return None
    # The writer splices the CRC as the final field, so the last
    # ``,"crc":`` of the raw line is always the genuine one (an
    # occurrence inside a string value necessarily comes earlier).
    body, sep, tail = line.rpartition(',"crc":')
    if not sep or not tail.endswith("}"):
        return None
    try:
        crc = int(tail[:-1])
    except ValueError:
        return None
    if zlib.crc32((body + "}").encode("utf-8")) != crc:
        return None
    try:
        record = _loads(line)
    except (ValueError, TypeError):
        return None
    if not isinstance(record, dict) or "crc" not in record:
        return None
    record.pop("crc")
    if not isinstance(record.get("lsn"), int) or "type" not in record:
        return None
    return record


def read_records(path: str) -> tuple[list[dict], bool]:
    """Every valid record of the log at *path*, in order.

    Returns ``(records, torn_tail)``.  A trailing run of invalid lines
    is the torn tail; an invalid line *before* a valid one is mid-log
    corruption and raises :class:`CorruptWalRecord`, as does a
    non-monotonic LSN.
    """
    if not os.path.exists(path):
        return [], False
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle.read().split("\n") if line.strip()]
    decoded = [decode_record(line) for line in lines]
    last_valid = -1
    for index, record in enumerate(decoded):
        if record is not None:
            last_valid = index
    records: list[dict] = []
    for index, record in enumerate(decoded[:last_valid + 1]):
        if record is None:
            raise CorruptWalRecord(
                f"invalid WAL record at line {index + 1} of {path} "
                f"(valid records follow it)")
        if records and record["lsn"] <= records[-1]["lsn"]:
            raise CorruptWalRecord(
                f"non-monotonic LSN {record['lsn']} after "
                f"{records[-1]['lsn']} at line {index + 1} of {path}")
        records.append(record)
    return records, last_valid < len(decoded) - 1


class WriteAheadLog:
    """Appender over one WAL file, LSN allocation included."""

    def __init__(self, path: str, fsync: str = "commit",
                 file_ops: FileOps | None = None):
        if fsync not in FSYNC_POLICIES:
            raise StorageError(
                f"unknown fsync policy {fsync!r}",
                hint=f"choose one of {', '.join(FSYNC_POLICIES)}")
        self.path = path
        self.fsync = fsync
        self.ops = file_ops or REAL_OPS
        self._handle: TextIO | None = None
        records, torn = read_records(path)
        self.last_lsn = records[-1]["lsn"] if records else 0
        if torn:
            # Drop the torn tail before ever appending again: a fresh
            # record after an invalid line would turn a tolerable tail
            # into (apparent) mid-log corruption on the next read.
            self._truncate_tail()

    def _truncate_tail(self) -> None:
        """Cut the file at the first invalid non-blank line (which
        :func:`read_records` has already proven is the start of the torn
        tail, not mid-log corruption)."""
        with open(self.path, "rb") as handle:
            raw = handle.read()
        keep = 0
        for line in raw.splitlines(keepends=True):
            try:
                text = line.decode("utf-8")
            except UnicodeDecodeError:
                break
            if text.strip() and decode_record(text) is None:
                break
            keep += len(line)
        with open(self.path, "r+b") as handle:
            handle.truncate(keep)

    # -- appending ---------------------------------------------------------

    def _open(self) -> TextIO:
        if self._handle is None or self._handle.closed:
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def append(self, records: Iterable[dict], commit_batch: bool = True,
               ) -> int:
        """Assign LSNs to *records*, append them, and apply the fsync
        policy; returns the last LSN written.

        The batch is written and flushed as ONE group commit: a process
        kill tears at most the batch being written (leaving its
        transaction uncommitted), never an earlier one.  One write plus
        one flush per transaction instead of per record is what keeps
        journaling overhead flat on bulk commits.
        """
        handle = self._open()
        lines: list[str] = []
        for record in records:
            self.last_lsn += 1
            lines.append(encode_record({**record, "lsn": self.last_lsn}))
        if lines:
            self.ops.write(handle, "".join(lines), "wal_append")
            handle.flush()
        obs.counter("wal_records_total",
                    "WAL records appended").inc(len(lines))
        if self.fsync == "always" or (self.fsync == "commit"
                                      and commit_batch):
            start = time.perf_counter()
            self.ops.fsync(handle, "wal_fsync")
            obs.histogram("wal_fsync_seconds",
                          "WAL fsync latency").observe(
                              time.perf_counter() - start)
        return self.last_lsn

    # -- checkpoint rotation ----------------------------------------------

    def rotate(self, after_lsn: int) -> None:
        """Truncate the log to a header record (atomically, via a tmp
        file and rename): everything at or below *after_lsn* is covered
        by the snapshot that the caller just made durable."""
        self.close()
        tmp = self.path + ".tmp"
        header = {"type": "header", "lsn": after_lsn}
        with open(tmp, "w", encoding="utf-8") as handle:
            self.ops.write(handle, encode_record(header), "wal_rotate")
            self.ops.fsync(handle, "wal_rotate")
        self.ops.replace(tmp, self.path, "wal_rotate")
        self.last_lsn = max(self.last_lsn, after_lsn)

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None
