"""Multi-domain synthetic workload generation and differential testing.

Three layers, all seed-deterministic:

* :mod:`repro.synth.distributions` -- integer-only skew / correlation /
  adversarial-boundary value draws;
* :mod:`repro.synth.domains` -- schema-driven domain builders (hospital,
  logistics, a 5-level ``isa`` ontology, plus the paper's ship database)
  producing bound, rule-induced :class:`~repro.synth.domains.SynthInstance`\\ s;
* :mod:`repro.synth.workload` -- mixed SELECT/ask/DML statement programs
  over any instance, with sha256 fingerprints for determinism pinning;
* :mod:`repro.synth.differential` -- the cross-engine differential
  harness, metamorphic invariants, ddmin minimizer and counterexample
  corpus.

``python -m repro.synth`` runs the fuzzing CLI.
"""

from repro.synth.differential import (
    CONFIGS, DEFAULT_CONFIGS, Divergence, Report, case_payload,
    check_conjunct_commutativity, check_insert_delete_roundtrip,
    check_intensional_consistency, diverges, load_case, minimize,
    replay_case, run_config, run_differential, save_case,
)
from repro.synth.domains import (
    DOMAINS, SynthDomain, SynthInstance, build_instance, get_domain,
)
from repro.synth.workload import (
    DEFAULT_MIX, ProgramGenerator, Statement, generate_program,
    rows_fingerprint, rules_fingerprint, schema_fingerprint,
    workload_fingerprint,
)

__all__ = [
    "CONFIGS", "DEFAULT_CONFIGS", "DEFAULT_MIX", "DOMAINS", "Divergence",
    "ProgramGenerator", "Report", "Statement", "SynthDomain",
    "SynthInstance", "build_instance", "case_payload",
    "check_conjunct_commutativity", "check_insert_delete_roundtrip",
    "check_intensional_consistency", "diverges", "generate_program",
    "get_domain", "load_case", "minimize", "replay_case",
    "rows_fingerprint", "rules_fingerprint", "run_config",
    "run_differential", "save_case", "schema_fingerprint",
    "workload_fingerprint",
]
