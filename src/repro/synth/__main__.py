"""Differential fuzzing CLI.

::

    python -m repro.synth --domains hospital,ontology --seeds 0-9 \\
        --statements 40 --configs legacy,planner-rules,server \\
        --corpus-dir tests/differential/corpus --artifact-dir out/

    python -m repro.synth --chaos --fault-seeds 0-24 --chaos-rate 0.15

``--chaos`` switches to the wire-fault leg: every program replays over
a seeded faulty socket (drops, truncations, corruption, swallowed
replies, resets) against a fault-free oracle; the fingerprint check
proves every client-acknowledged committed DML applied exactly once.

Exit status is non-zero when any (domain, seed) cell diverges; each
divergence is ddmin-minimized and written as a JSON counterexample that
``tests/differential/test_corpus.py`` replays as a pinned regression.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.synth.differential import (
    CONFIGS, DEFAULT_CONFIGS, case_payload, minimize, run_differential,
    save_case,
)
from repro.synth.domains import DOMAINS


def _parse_seeds(spec: str) -> list[int]:
    seeds: list[int] = []
    for part in spec.split(","):
        part = part.strip()
        if "-" in part[1:]:
            low, _, high = part.partition("-")
            seeds.extend(range(int(low), int(high) + 1))
        else:
            seeds.append(int(part))
    return seeds


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.synth",
        description="cross-engine differential fuzzing over synthetic "
                    "domains")
    parser.add_argument("--domains", default="hospital,logistics,ontology",
                        help="comma-separated domain names "
                             f"(known: {', '.join(sorted(DOMAINS))})")
    parser.add_argument("--seeds", default="0-2",
                        help="comma/range list, e.g. 0-9 or 3,5,8")
    parser.add_argument("--statements", type=int, default=30,
                        help="program length per (domain, seed)")
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--adversarial", action="store_true",
                        help="adversarial value distributions (band-edge "
                             "mass, label noise)")
    parser.add_argument("--configs", default=",".join(DEFAULT_CONFIGS),
                        help="engine configurations; first is baseline "
                             f"(known: {', '.join(sorted(CONFIGS))})")
    parser.add_argument("--corpus-dir", default=None,
                        help="write minimized counterexamples here")
    parser.add_argument("--no-minimize", action="store_true",
                        help="report divergences without ddmin")
    parser.add_argument("--chaos", action="store_true",
                        help="run the wire-fault chaos leg instead of "
                             "the engine matrix")
    parser.add_argument("--fault-seeds", default="0-24",
                        help="chaos fault-schedule seeds per (domain, "
                             "seed) cell (same spec syntax as --seeds)")
    parser.add_argument("--chaos-rate", type=float, default=0.15,
                        help="total per-frame fault probability for "
                             "the chaos leg's mixed schedule")
    args = parser.parse_args(argv)

    domains = [name.strip() for name in args.domains.split(",")]
    configs = tuple(name.strip() for name in args.configs.split(","))
    for name in configs:
        if name not in CONFIGS:
            parser.error(f"unknown config {name!r}")
    for name in domains:
        if name not in DOMAINS:
            parser.error(f"unknown domain {name!r}")
    seeds = _parse_seeds(args.seeds)

    if args.chaos:
        return _run_chaos_matrix(args, domains, seeds)

    failures = 0
    for domain in domains:
        for seed in seeds:
            report = run_differential(
                domain, seed, n_statements=args.statements,
                scale=args.scale, adversarial=args.adversarial,
                configs=configs)
            print(report.render())
            if report.ok:
                continue
            failures += 1
            if args.no_minimize:
                continue
            core = minimize(domain, seed, report.statements,
                            configs=configs, scale=args.scale,
                            adversarial=args.adversarial)
            print(f"  minimized to {len(core)} statement(s):")
            for statement in core:
                print(f"    {statement.sql}")
            if args.corpus_dir:
                payload = case_payload(
                    domain, seed, core, configs=configs,
                    scale=args.scale, adversarial=args.adversarial,
                    note="auto-minimized by python -m repro.synth")
                path = os.path.join(
                    args.corpus_dir,
                    f"auto_{domain}_{seed}_"
                    f"{payload['fingerprint'][:10]}.json")
                save_case(path, payload)
                print(f"  counterexample written to {path}")
    total = len(domains) * len(seeds)
    print(f"{total - failures}/{total} cells agree across "
          f"{len(configs)} configs")
    return 1 if failures else 0


def _run_chaos_matrix(args, domains: list[str],
                      seeds: list[int]) -> int:
    from repro.synth.chaos import (
        chaos_case_payload, minimize_chaos, run_chaos,
    )
    fault_seeds = _parse_seeds(args.fault_seeds)
    failures = 0
    cells = 0
    for domain in domains:
        for seed in seeds:
            for fault_seed in fault_seeds:
                cells += 1
                report = run_chaos(
                    domain, seed, fault_seed=fault_seed,
                    rate=args.chaos_rate,
                    n_statements=args.statements, scale=args.scale,
                    adversarial=args.adversarial)
                label = (f"[{domain} seed={seed} "
                         f"fault_seed={fault_seed}]")
                if report.ok:
                    print(f"{label} {len(report.statements)} "
                          f"statements through chaos: exactly-once "
                          f"holds")
                    continue
                failures += 1
                print(report.render())
                if args.no_minimize:
                    continue
                core = minimize_chaos(
                    domain, seed, report.statements,
                    fault_seed=fault_seed, rate=args.chaos_rate,
                    scale=args.scale, adversarial=args.adversarial)
                print(f"  minimized to {len(core)} statement(s):")
                for statement in core:
                    print(f"    {statement.sql}")
                if args.corpus_dir:
                    payload = chaos_case_payload(
                        case_payload(
                            domain, seed, core, configs=("server",),
                            scale=args.scale,
                            adversarial=args.adversarial,
                            note="auto-minimized chaos leg"),
                        fault_seed=fault_seed, rate=args.chaos_rate)
                    path = os.path.join(
                        args.corpus_dir,
                        f"chaos_{domain}_{seed}_{fault_seed}_"
                        f"{payload['fingerprint'][:10]}.json")
                    save_case(path, payload)
                    print(f"  counterexample written to {path}")
    print(f"{cells - failures}/{cells} chaos cells hold exactly-once "
          f"at rate {args.chaos_rate:g}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
