"""The chaos differential leg: wire faults vs a fault-free oracle.

The cross-engine harness (:mod:`repro.synth.differential`) proves that
every engine configuration computes the same answers.  This module
proves something harsher: that the *resilient client* computes those
same answers **through a faulty network**.  One leg replays a generated
statement program over a clean server connection (the oracle); the
other replays it through a :class:`~repro.server.chaosproxy.ChaosSocket`
driven by a seeded :class:`~repro.server.chaosproxy.ChaosSchedule`
that drops, truncates, corrupts, delays and resets protocol frames --
including ``drop_reply``, the ambiguous-ack case where the server fully
processed a DML but the client never saw the answer.

Agreement is checked statement by statement *and* on the final
database fingerprint, so the leg fails if any client-acknowledged DML
was lost (fingerprint missing a row) or double-applied (fingerprint
has an extra row, or a retried count disagrees) -- the exactly-once
guarantee idempotency tokens exist to provide.

Failures delta-debug through :func:`repro.synth.differential.minimize`
with a chaos-replaying predicate and land in the same corpus format,
extended with a ``chaos`` key that :func:`replay_chaos_case` (and
``replay_case``) dispatch on.
"""

from __future__ import annotations

from typing import Sequence

from repro.server.chaosproxy import ChaosSchedule, ChaosSocket
from repro.server.resilience import RetryPolicy
from repro.synth.differential import (
    Divergence, Report, _error_outcome, canonical_outcome, minimize,
    run_config,
)
from repro.synth.domains import SynthInstance, build_instance
from repro.synth.workload import Statement, generate_program, \
    rows_fingerprint

__all__ = [
    "ChaosClientSession",
    "chaos_diverges",
    "mixed_rates",
    "minimize_chaos",
    "replay_chaos_case",
    "run_chaos",
]

#: The oracle leg: the plain server config from the differential matrix.
ORACLE_CONFIG = "server"

#: How hard the chaos client retries.  Attempt counts are high and
#: backoffs tiny: the goal is correctness under faults, not production
#: pacing, and the probability that *every* attempt of one statement is
#: faulted must be negligible at the rates the legs run.
CHAOS_RETRY = dict(max_attempts=10, base_delay_s=0.001,
                   multiplier=2.0, max_delay_s=0.02, jitter=0.5)


def mixed_rates(rate: float) -> dict[str, float]:
    """A representative fault mix summing to *rate* per request frame,
    weighted toward the cases that matter most for exactly-once."""
    return {
        "drop_reply": rate * 0.35,
        "drop": rate * 0.20,
        "truncate": rate * 0.15,
        "corrupt": rate * 0.10,
        "reset": rate * 0.10,
        "delay": rate * 0.10,
    }


class ChaosClientSession:
    """Replays a program through a live server over a faulty wire.

    The same shape as ``ServerSession`` from the differential matrix,
    except the client (a) wraps every socket it opens in a
    :class:`ChaosSocket` bound to one shared schedule -- the frame
    counter spans reconnects, so a retry meets the *next* scheduled
    fault, not the same one forever -- and (b) runs with a retry
    policy, so transport faults surface as reconnect-and-retry instead
    of errors.  No circuit breaker: its cooldown is deliberate
    slowness, and the leg asserts correctness, not pacing.
    """

    def __init__(self, instance: SynthInstance, schedule: ChaosSchedule):
        from repro.cache.core import query_cache
        from repro.query.system import IntensionalQueryProcessor
        from repro.server import IntensionalQueryServer
        from repro.server.client import Client
        self.instance = instance
        self.schedule = schedule
        query_cache(instance.database).enabled = False
        system = IntensionalQueryProcessor(
            instance.database, instance.rules, binding=instance.binding)
        self.server = IntensionalQueryServer(system, port=0,
                                             lock_timeout_s=5.0)
        self.server.start()
        self.client = Client(
            "127.0.0.1", self.server.port,
            timeout_s=30.0, connect_timeout_s=10.0,
            retry=RetryPolicy(seed=schedule.seed, **CHAOS_RETRY),
            client_id=f"chaos-{schedule.seed}",
            wrap_socket=lambda sock: ChaosSocket(sock, schedule),
        ).connect()

    def run(self, statement: Statement) -> dict:
        try:
            return canonical_outcome(self.client.sql(statement.sql))
        except Exception as error:
            return _error_outcome(error)

    def final_state(self) -> str:
        return rows_fingerprint(self.instance)

    def close(self) -> None:
        try:
            self.client.close()
        except Exception:
            pass  # the farewell frame is fair game for the schedule
        self.server.shutdown(drain=False)


def run_chaos(domain: str, seed: int,
              statements: Sequence[Statement] | None = None, *,
              fault_seed: int = 0, rate: float = 0.15,
              rates: dict[str, float] | None = None,
              n_statements: int = 30, workload_seed: int = 0,
              scale: int = 1, adversarial: bool = False) -> Report:
    """One chaos cell: faulty-wire leg vs the fault-free oracle.

    Returns a :class:`Report` whose configs are ``(server, chaos)``;
    a :class:`Divergence` at index -1 means the final fingerprints
    disagree -- a lost or double-applied committed DML.
    """
    if statements is None:
        instance = build_instance(domain, seed=seed, scale=scale,
                                  adversarial=adversarial)
        statements = generate_program(instance, n_statements,
                                      seed=workload_seed)
    statements = list(statements)
    chaos_name = f"chaos(fault_seed={fault_seed})"
    report = Report(domain, seed, (ORACLE_CONFIG, chaos_name),
                    statements)

    base_outcomes, base_final = run_config(
        ORACLE_CONFIG, domain, seed, statements,
        scale=scale, adversarial=adversarial)

    schedule = ChaosSchedule(fault_seed,
                             rates=rates if rates is not None
                             else mixed_rates(rate))
    instance = build_instance(domain, seed=seed, scale=scale,
                              adversarial=adversarial)
    session = ChaosClientSession(instance, schedule)
    try:
        outcomes = [session.run(statement) for statement in statements]
        final = session.final_state()
    finally:
        session.close()

    report.outcomes[ORACLE_CONFIG] = base_outcomes
    report.outcomes[chaos_name] = outcomes
    for index, statement in enumerate(statements):
        if outcomes[index] != base_outcomes[index]:
            report.divergences.append(Divergence(
                domain, seed, index, statement, ORACLE_CONFIG,
                chaos_name, base_outcomes[index], outcomes[index]))
    if final != base_final:
        report.divergences.append(Divergence(
            domain, seed, -1, None, ORACLE_CONFIG, chaos_name,
            base_final, final))
    return report


def chaos_diverges(domain: str, seed: int,
                   statements: Sequence[Statement], *,
                   fault_seed: int, rate: float = 0.15,
                   rates: dict[str, float] | None = None,
                   scale: int = 1, adversarial: bool = False) -> bool:
    report = run_chaos(domain, seed, statements, fault_seed=fault_seed,
                       rate=rate, rates=rates, scale=scale,
                       adversarial=adversarial)
    return not report.ok


def minimize_chaos(domain: str, seed: int,
                   statements: Sequence[Statement], *,
                   fault_seed: int, rate: float = 0.15,
                   rates: dict[str, float] | None = None,
                   scale: int = 1,
                   adversarial: bool = False) -> list[Statement]:
    """ddmin with a chaos-replaying predicate.

    Each candidate subset replays with a *fresh* schedule from the same
    fault seed, so shrinking stays deterministic even though removing a
    statement shifts which frames meet which faults.
    """

    def predicate(subset: Sequence[Statement]) -> bool:
        return chaos_diverges(domain, seed, subset,
                              fault_seed=fault_seed, rate=rate,
                              rates=rates, scale=scale,
                              adversarial=adversarial)

    return minimize(domain, seed, statements, configs=(ORACLE_CONFIG,),
                    predicate=predicate)


def chaos_case_payload(payload: dict, *, fault_seed: int,
                       rate: float,
                       rates: dict[str, float] | None = None) -> dict:
    """Extend a differential corpus payload with the chaos schedule."""
    payload = dict(payload)
    payload["chaos"] = {"fault_seed": fault_seed, "rate": rate}
    if rates is not None:
        payload["chaos"]["rates"] = rates
    return payload


def replay_chaos_case(payload: dict) -> Report:
    """Re-run a pinned chaos counterexample (corpus regression path)."""
    chaos = payload["chaos"]
    statements = [Statement(kind, sql)
                  for kind, sql in payload["statements"]]
    return run_chaos(
        payload["domain"], payload["seed"], statements,
        fault_seed=int(chaos["fault_seed"]),
        rate=float(chaos.get("rate", 0.15)),
        rates=chaos.get("rates"),
        scale=payload.get("scale", 1),
        adversarial=payload.get("adversarial", False))
