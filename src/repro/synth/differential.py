"""Cross-engine differential testing over synthetic workloads.

Every statement of a generated program is replayed through several
independently configured engines -- legacy executor vs cost-based
planner, semantic optimization on/off, compiled vs interpreted
predicates, streaming batch sizes {1, 7, default, UNBOUNDED}, result
cache on/off, and the direct call path vs the server wire path -- and
the per-statement outcomes plus the final database state must agree
bit-for-bit.  A disagreement is a :class:`Divergence`;
:func:`minimize` delta-debugs the statement list down to a minimal
reproducer, and :mod:`tests.differential` pins minimized cases from
``tests/differential/corpus/`` as regression tests.

Beyond plain result equality the harness checks metamorphic
invariants that need no oracle:

* **intensional superset-consistency** -- a forward intensional answer
  ("every answer is of type T / satisfies C") must hold extensionally:
  re-projecting the conclusion attribute over the same qualification
  may produce no violating value;
* **conjunct commutativity** -- reordering the WHERE conjuncts must
  not change the result;
* **insert/delete round-trip** -- inserting a fresh-keyed row and
  deleting it restores the exact prior state.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.relational import columnar, compiled
from repro.relational.expressions import ColumnRef
from repro.relational.relation import Relation
from repro.sql import ast
from repro.sql.executor import execute_select_legacy, execute_statement
from repro.sql.parser import parse_statement
from repro.synth.domains import SynthInstance, build_instance
from repro.synth.workload import (
    Statement, _digest, generate_program, rows_fingerprint,
)

UNBOUNDED = 2 ** 62


# ---------------------------------------------------------------------------
# canonical outcomes


def _row_key(row: tuple):
    return tuple((value is None, type(value).__name__, str(value))
                 for value in row)


def canonical_relation(relation: Relation) -> dict:
    """Order-insensitive (bag) canonical form of a result relation."""
    rows = sorted((list(row) for row in relation), key=tuple)
    return {"kind": "rows",
            "columns": [column.name for column in relation.schema.columns],
            "rows": rows}


def canonical_outcome(value) -> dict:
    if isinstance(value, Relation):
        return canonical_relation(value)
    if isinstance(value, int):
        return {"kind": "count", "count": value}
    return {"kind": "text", "text": str(value)}


def _error_outcome(error: Exception) -> dict:
    return {"kind": "error", "type": type(error).__name__}


# ---------------------------------------------------------------------------
# engine sessions


class EngineSession:
    """One configured engine replaying a statement program."""

    def __init__(self, instance: SynthInstance, *,
                 use_planner: bool = True,
                 with_rules: bool = False,
                 reinduce_after_dml: bool = False,
                 compiled_predicates: bool = True,
                 cache_enabled: bool = False,
                 batch_size: int | None = None,
                 columnar_enabled: bool | None = None,
                 parallel_workers: int | None = None):
        self.instance = instance
        self.use_planner = use_planner
        self.with_rules = with_rules
        self.reinduce_after_dml = reinduce_after_dml
        self.batch_size = batch_size
        self._compiled_before = compiled.ENABLED
        compiled.ENABLED = compiled_predicates
        self._columnar_before = columnar.FORCED
        columnar.set_enabled(columnar_enabled)
        from repro.plan import parallel
        self._parallel_before = parallel.FORCED
        parallel.set_workers(parallel_workers)
        from repro.cache.core import query_cache
        self._cache = query_cache(instance.database)
        self._cache.enabled = cache_enabled

    def _rules(self):
        return self.instance.rules if self.with_rules else None

    def run(self, statement: Statement) -> dict:
        database = self.instance.database
        try:
            parsed = parse_statement(statement.sql)
            if isinstance(parsed, ast.SelectStmt):
                if self.use_planner:
                    result = self._cache.execute_select(
                        parsed, rules=self._rules(),
                        batch_size=self.batch_size)
                else:
                    result = execute_select_legacy(database, parsed)
                return canonical_relation(result)
            value = execute_statement(database, statement.sql)
            if self.reinduce_after_dml:
                self.instance.reinduce()
            return canonical_outcome(value)
        except Exception as error:  # compared across engines
            return _error_outcome(error)

    def final_state(self) -> str:
        return rows_fingerprint(self.instance)

    def close(self) -> None:
        from repro.plan import parallel
        compiled.ENABLED = self._compiled_before
        columnar.set_enabled(self._columnar_before)
        parallel.set_workers(self._parallel_before)


class ServerSession:
    """Replays the program over the wire through a live server."""

    def __init__(self, instance: SynthInstance):
        from repro.query.system import IntensionalQueryProcessor
        from repro.server import IntensionalQueryServer
        from repro.server.client import Client
        self.instance = instance
        from repro.cache.core import query_cache
        query_cache(instance.database).enabled = False
        system = IntensionalQueryProcessor(
            instance.database, instance.rules, binding=instance.binding)
        self.server = IntensionalQueryServer(system, port=0,
                                             lock_timeout_s=5.0)
        self.server.start()
        self.client = Client("127.0.0.1", self.server.port).connect()

    def run(self, statement: Statement) -> dict:
        try:
            return canonical_outcome(self.client.sql(statement.sql))
        except Exception as error:
            return _error_outcome(error)

    def final_state(self) -> str:
        return rows_fingerprint(self.instance)

    def close(self) -> None:
        try:
            self.client.close()
        finally:
            self.server.shutdown(drain=False)


@dataclass(frozen=True)
class EngineConfig:
    """A named way of standing up an engine over a domain instance."""

    name: str
    description: str
    factory: Callable[[SynthInstance], object]

    def open(self, instance: SynthInstance):
        return self.factory(instance)


CONFIGS: dict[str, EngineConfig] = {}


def _register(name: str, description: str, factory) -> None:
    CONFIGS[name] = EngineConfig(name, description, factory)


_register("legacy", "pre-planner heuristic pipeline",
          lambda instance: EngineSession(instance, use_planner=False))
_register("planner", "cost-based planner, no rules, cache off",
          lambda instance: EngineSession(instance))
_register("planner-rules",
          "planner with the induced rule base (semantic optimization; "
          "staleness guard exercised by DML)",
          lambda instance: EngineSession(instance, with_rules=True))
_register("planner-reinduce",
          "planner with rules re-induced after every DML statement",
          lambda instance: EngineSession(instance, with_rules=True,
                                         reinduce_after_dml=True))
_register("interpreted", "planner with compiled predicates disabled",
          lambda instance: EngineSession(instance,
                                         compiled_predicates=False))
_register("batch-1", "planner streaming one row per morsel",
          lambda instance: EngineSession(instance, batch_size=1))
_register("batch-7", "planner streaming seven rows per morsel",
          lambda instance: EngineSession(instance, batch_size=7))
_register("unbounded", "planner materializing everything per operator",
          lambda instance: EngineSession(instance, batch_size=UNBOUNDED))
_register("cached", "planner behind the version-aware query cache",
          lambda instance: EngineSession(instance, with_rules=True,
                                         cache_enabled=True))
_register("columnar", "planner over the columnar store with vectorized "
          "predicate kernels forced on",
          lambda instance: EngineSession(instance, columnar_enabled=True))
_register("columnar-off", "planner forced onto the row pipeline "
          "(columnar store and kernels disabled)",
          lambda instance: EngineSession(instance, columnar_enabled=False))
_register("parallel", "planner with exchange operators at 4 workers",
          lambda instance: EngineSession(instance, parallel_workers=4))
_register("parallel-off", "planner forced onto strictly serial plans",
          lambda instance: EngineSession(instance, parallel_workers=1))
_register("server", "statements shipped over the wire protocol",
          ServerSession)

#: The default matrix: one representative per engine dimension.
DEFAULT_CONFIGS = ("legacy", "planner", "planner-rules", "interpreted",
                   "batch-1", "unbounded", "cached", "columnar",
                   "columnar-off", "parallel", "parallel-off", "server")


# ---------------------------------------------------------------------------
# running and comparing


@dataclass(frozen=True)
class Divergence:
    """Two configurations disagreeing on one statement (or final state)."""

    domain: str
    seed: int
    statement_index: int          #: -1 means final-state mismatch
    statement: Statement | None
    config_a: str
    config_b: str
    outcome_a: dict | str
    outcome_b: dict | str

    def render(self) -> str:
        where = ("final state" if self.statement_index < 0 else
                 f"statement {self.statement_index}: "
                 f"{self.statement.sql}")
        return (f"[{self.domain} seed={self.seed}] {where}\n"
                f"  {self.config_a}: {self.outcome_a}\n"
                f"  {self.config_b}: {self.outcome_b}")


@dataclass
class Report:
    """The outcome of one differential run."""

    domain: str
    seed: int
    configs: tuple[str, ...]
    statements: list[Statement]
    divergences: list[Divergence] = field(default_factory=list)
    outcomes: dict[str, list[dict]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def render(self) -> str:
        if self.ok:
            return (f"[{self.domain} seed={self.seed}] "
                    f"{len(self.statements)} statements x "
                    f"{len(self.configs)} configs: agree")
        return "\n".join(d.render() for d in self.divergences)


def _fresh_instance(domain: str, seed: int, scale: int,
                    adversarial: bool) -> SynthInstance:
    return build_instance(domain, seed=seed, scale=scale,
                          adversarial=adversarial)


def run_config(config_name: str, domain: str, seed: int,
               statements: Sequence[Statement], *, scale: int = 1,
               adversarial: bool = False) -> tuple[list[dict], str]:
    """Replay *statements* through one engine configuration built on a
    fresh instance; returns (per-statement outcomes, final state)."""
    instance = _fresh_instance(domain, seed, scale, adversarial)
    session = CONFIGS[config_name].open(instance)
    try:
        outcomes = [session.run(statement) for statement in statements]
        return outcomes, session.final_state()
    finally:
        session.close()


def run_differential(domain: str, seed: int,
                     statements: Sequence[Statement] | None = None, *,
                     n_statements: int = 30, workload_seed: int = 0,
                     scale: int = 1, adversarial: bool = False,
                     configs: Sequence[str] = DEFAULT_CONFIGS,
                     stop_at: int | None = None) -> Report:
    """Run the full differential matrix for one (domain, seed).

    Every configuration replays the same statement program against its
    own fresh instance; the first configuration is the baseline the
    rest are compared against, statement by statement and on the final
    database state.  *stop_at* caps the number of divergences reported.
    """
    if statements is None:
        instance = _fresh_instance(domain, seed, scale, adversarial)
        statements = generate_program(instance, n_statements,
                                      seed=workload_seed)
    statements = list(statements)
    report = Report(domain, seed, tuple(configs), statements)
    results = {name: run_config(name, domain, seed, statements,
                                scale=scale, adversarial=adversarial)
               for name in configs}
    for name, (outcomes, _final) in results.items():
        report.outcomes[name] = outcomes
    baseline = configs[0]
    base_outcomes, base_final = results[baseline]
    for name in configs[1:]:
        outcomes, final = results[name]
        for index, statement in enumerate(statements):
            if outcomes[index] != base_outcomes[index]:
                report.divergences.append(Divergence(
                    domain, seed, index, statement, baseline, name,
                    base_outcomes[index], outcomes[index]))
                if stop_at and len(report.divergences) >= stop_at:
                    return report
        if final != base_final:
            report.divergences.append(Divergence(
                domain, seed, -1, None, baseline, name,
                base_final, final))
    return report


# ---------------------------------------------------------------------------
# metamorphic invariants


def check_intensional_consistency(domain: str, seed: int, sql: str, *,
                                  scale: int = 1,
                                  adversarial: bool = False) -> list[str]:
    """Verify forward intensional answers extensionally.

    For every forward answer with a value conclusion C over an
    attribute of a FROM relation, re-runs the qualification through the
    rule-free legacy executor projecting C's attribute: a value outside
    C's interval is a violation.  Returns violation descriptions.
    """
    from repro.query.system import IntensionalQueryProcessor
    from repro.sql.parser import parse_select

    instance = _fresh_instance(domain, seed, scale, adversarial)
    processor = IntensionalQueryProcessor(
        instance.database, instance.rules, binding=instance.binding)
    result = processor.ask(sql, forward=True, backward=False)
    statement = parse_select(sql)
    from_tables = {table.name.lower() for table in statement.tables}
    violations: list[str] = []
    for answer in result.inference.forward_answers():
        conclusion = answer.conclusion
        if conclusion is None:
            continue
        if conclusion.attribute.relation.lower() not in from_tables:
            continue  # derived via join closure; not directly checkable
        probe = ast.SelectStmt(
            items=[ast.SelectItem(ColumnRef(
                conclusion.attribute.attribute,
                conclusion.attribute.relation))],
            tables=statement.tables, where=statement.where)
        extension = execute_select_legacy(instance.database, probe)
        for (value,) in extension:
            if not conclusion.satisfied_by(value):
                violations.append(
                    f"{answer.render()} but {conclusion.attribute.render()}"
                    f"={value!r} in the extension of: {sql}")
    return violations


def _split_conjuncts(sql: str) -> tuple[str, list[str], str]:
    """Split a generated flat-conjunction SELECT into
    (head, conjuncts, tail).  Generated SQL never nests AND under
    OR/NOT or parentheses, so a textual split is exact."""
    upper = sql.upper()
    start = upper.find(" WHERE ")
    if start < 0:
        return sql, [], ""
    head = sql[:start]
    rest = sql[start + len(" WHERE "):]
    tail = ""
    for marker in (" GROUP BY ", " ORDER BY "):
        position = rest.upper().find(marker)
        if position >= 0:
            tail = rest[position:]
            rest = rest[:position]
    parts = rest.split(" AND ")
    return head, parts, tail


def check_conjunct_commutativity(domain: str, seed: int, sql: str, *,
                                 config: str = "planner-rules",
                                 scale: int = 1,
                                 adversarial: bool = False) -> bool:
    """Reordering WHERE conjuncts must not change the result."""
    head, conjuncts, tail = _split_conjuncts(sql)
    if len(conjuncts) < 2:
        return True
    reordered = (head + " WHERE "
                 + " AND ".join(reversed(conjuncts)) + tail)
    original = Statement("select", sql)
    swapped = Statement("select", reordered)
    outcomes, _final = run_config(config, domain, seed,
                                  [original, swapped],
                                  scale=scale, adversarial=adversarial)
    return outcomes[0] == outcomes[1]


def check_insert_delete_roundtrip(domain: str, seed: int, *,
                                  config: str = "planner-rules",
                                  scale: int = 1,
                                  adversarial: bool = False) -> bool:
    """INSERT a fresh-keyed row then DELETE it: state must round-trip."""
    instance = _fresh_instance(domain, seed, scale, adversarial)
    session = CONFIGS[config].open(instance)
    try:
        before = session.final_state()
        relation_name = instance.domain.relation_order[-1]
        relation = instance.database.relation(relation_name)
        template = list(list(relation)[0])
        key_column = relation.schema.key[0]
        position = relation.schema.position(key_column)
        template[position] = ("Z999" if isinstance(template[position], str)
                              else 999999)
        columns = ", ".join(column.name
                            for column in relation.schema.columns)

        def literal(value):
            if isinstance(value, str):
                return "'" + value.replace("'", "''") + "'"
            return "NULL" if value is None else str(value)

        values = ", ".join(literal(value) for value in template)
        insert = Statement("dml", f"INSERT INTO {relation_name} "
                                  f"({columns}) VALUES ({values})")
        delete = Statement(
            "dml",
            f"DELETE FROM {relation_name} WHERE "
            f"{relation_name}.{key_column} = "
            f"{literal(template[position])}")
        first = session.run(insert)
        second = session.run(delete)
        if first.get("kind") != "count" or second.get("kind") != "count":
            return False
        return session.final_state() == before
    finally:
        session.close()


# ---------------------------------------------------------------------------
# delta-debugging minimizer


def diverges(domain: str, seed: int, statements: Sequence[Statement], *,
             configs: Sequence[str], scale: int = 1,
             adversarial: bool = False) -> bool:
    report = run_differential(domain, seed, statements, configs=configs,
                              scale=scale, adversarial=adversarial,
                              stop_at=1)
    return not report.ok


def minimize(domain: str, seed: int, statements: Sequence[Statement], *,
             configs: Sequence[str], scale: int = 1,
             adversarial: bool = False,
             predicate: Callable[[Sequence[Statement]], bool] | None = None,
             ) -> list[Statement]:
    """ddmin: the statement list shrunk to a still-diverging core.

    *predicate* overrides the default "does the matrix diverge" check
    (used by the minimizer's own tests with injected faults).
    """
    if predicate is None:
        def predicate(subset: Sequence[Statement]) -> bool:
            return diverges(domain, seed, subset, configs=configs,
                            scale=scale, adversarial=adversarial)
    current = list(statements)
    if not predicate(current):
        return current
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk:]
            if candidate and predicate(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
            else:
                start += chunk
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current


# ---------------------------------------------------------------------------
# counterexample corpus


def case_payload(domain: str, seed: int,
                 statements: Sequence[Statement], *,
                 configs: Sequence[str], scale: int = 1,
                 adversarial: bool = False, note: str = "") -> dict:
    payload = {
        "domain": domain, "seed": seed, "scale": scale,
        "adversarial": adversarial, "configs": list(configs),
        "statements": [[statement.kind, statement.sql]
                       for statement in statements],
        "note": note,
    }
    payload["fingerprint"] = _digest(
        {key: value for key, value in payload.items()
         if key != "fingerprint"})
    return payload


def save_case(path: str, payload: dict) -> None:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_case(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def replay_case(payload: dict) -> Report:
    """Re-run a pinned corpus case; a fixed bug must stay agreeing."""
    if payload.get("chaos"):
        # Wire-fault counterexample: replay through the chaos harness
        # (imported lazily -- chaos depends on this module).
        from repro.synth.chaos import replay_chaos_case
        return replay_chaos_case(payload)
    statements = [Statement(kind, sql)
                  for kind, sql in payload["statements"]]
    return run_differential(
        payload["domain"], payload["seed"], statements,
        configs=tuple(payload["configs"]),
        scale=payload.get("scale", 1),
        adversarial=payload.get("adversarial", False))
