"""Seed-deterministic value distributions for the synthetic domains.

Every helper is a pure function of its ``random.Random`` instance and
integer parameters, and every draw stays in *integer* arithmetic: no
``math.pow``, no libm, no float rounding that could differ between
platforms.  Same seed therefore means byte-identical output on every
interpreter and OS -- the property the determinism suite in
``tests/synth/`` pins with golden fingerprints.

The distribution shapes mirror what attribute-oriented induction over
plain SELECTs (PAPERS.md, arXiv:1006.1695) stresses:

* **skew** -- a tournament draw (minimum of ``skew + 1`` uniforms)
  piles mass on the low end of the range, so induced interval rules
  see dense and sparse bands in one relation;
* **correlation** -- banded labels tie a numeric attribute to a
  classification attribute, the exact shape the ILS induces over;
* **adversarial boundaries** -- band edges receive extra mass and a
  controlled fraction of rows is relabeled across a band edge, which
  creates the inconsistent (X, Y) pairs step 2 of the induction
  algorithm must remove and puts induced intervals on knife edges
  where a semantic-optimizer soundness bug shows up first.
"""

from __future__ import annotations

import random
from typing import NamedTuple, Sequence


def skewed_int(rng: random.Random, low: int, high: int,
               skew: int = 0) -> int:
    """An integer in ``[low, high)``; ``skew`` of 0 is uniform, higher
    values concentrate mass toward ``low`` (tournament selection: the
    minimum of ``skew + 1`` uniform draws)."""
    if high <= low:
        raise ValueError("empty range")
    best = rng.randrange(low, high)
    for _ in range(skew):
        best = min(best, rng.randrange(low, high))
    return best


def weighted_choice(rng: random.Random, values: Sequence,
                    weights: Sequence[int]):
    """Pick from *values* with integer *weights* (exact arithmetic)."""
    if len(values) != len(weights) or not values:
        raise ValueError("values and weights must align and be non-empty")
    total = sum(weights)
    if total <= 0:
        raise ValueError("weights must sum to a positive integer")
    pick = rng.randrange(total)
    for value, weight in zip(values, weights):
        pick -= weight
        if pick < 0:
            return value
    raise AssertionError("unreachable")


class Band(NamedTuple):
    """One contiguous value band carrying a label: ``[low, high]``."""

    low: int
    high: int
    label: str

    def contains(self, value: int) -> bool:
        return self.low <= value <= self.high


def band_label(bands: Sequence[Band], value: int) -> str:
    """The label of the band containing *value* (bands must cover it)."""
    for band in bands:
        if band.contains(value):
            return band.label
    raise ValueError(f"value {value} outside every band")


def banded_value(rng: random.Random, bands: Sequence[Band],
                 skew: int = 0, edge_permille: int = 0) -> tuple[int, str]:
    """Draw ``(value, label)`` from *bands*.

    The band is chosen uniformly (``skew`` > 0 biases toward earlier
    bands), then the value uniformly within it -- except that
    ``edge_permille`` out of 1000 draws land exactly on a band edge,
    the adversarial case that puts induced interval endpoints where
    off-by-one rewrite bugs live.
    """
    index = skewed_int(rng, 0, len(bands), skew)
    band = bands[index]
    if edge_permille and rng.randrange(1000) < edge_permille:
        value = band.low if rng.randrange(2) == 0 else band.high
    else:
        value = rng.randrange(band.low, band.high + 1)
    return value, band.label


def noisy_label(rng: random.Random, label: str, labels: Sequence[str],
                noise_permille: int = 0) -> str:
    """Relabel with probability ``noise_permille``/1000, drawing
    uniformly from *labels* (may redraw the same label)."""
    if noise_permille and rng.randrange(1000) < noise_permille:
        return labels[rng.randrange(len(labels))]
    return label


def identifier(prefix: str, number: int, width: int = 5) -> str:
    """Deterministic fixed-width identifier, e.g. ``P00042``."""
    return f"{prefix}{number:0{width}d}"
