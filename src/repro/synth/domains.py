"""Multi-domain synthetic KER test beds.

Every claim the reproduction makes was, until this module, verified
against one domain: the Appendix C ship database.  Here three more
domains are generated -- seed-deterministically -- so the equivalence,
differential, and bench suites can prove the engine on data it was
never tuned for:

* ``hospital`` -- PATIENT/WARD with a severity-banded triage label and
  a ward foreign key; skew and adversarial boundary mass stress
  interval induction and the semantic optimizer.
* ``logistics`` -- SHIPMENT/ROUTE with weight-banded priorities and
  distance-banded zones; hot-route skew gives the stats histograms a
  non-uniform FK distribution.
* ``ontology`` -- a single ASSET relation under a five-level ``isa``
  hierarchy (ASSET > MOBILE > VEHICLE > CAR > SPORT), the recursive
  conceptual-schema shape of PAPERS.md's DL-Lite line of work: forward
  inference must walk four subtype derivations deep.
* ``ship`` -- the Appendix C instance wrapped in the same interface so
  harnesses iterate one registry.

All value draws go through :mod:`repro.synth.distributions` (integer
arithmetic only), so the same ``(name, seed, scale, adversarial)``
quadruple yields byte-identical databases on every platform --
``tests/synth/test_determinism.py`` pins golden fingerprints.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.induction import InductionConfig, InductiveLearningSubsystem
from repro.ker import KerSchema, SchemaBinding, parse_ker
from repro.relational import Database, INTEGER, char
from repro.rules.ruleset import RuleSet
from repro.synth.distributions import (
    Band, band_label, banded_value, identifier, noisy_label, skewed_int,
    weighted_choice,
)

# ---------------------------------------------------------------------------
# hospital


HOSPITAL_SCHEMA_DDL = """
object type WARD
    has key: Ward      domain: CHAR[4]
    has:     WardName  domain: CHAR[16]
    has:     Floor     domain: INTEGER
    has:     Beds      domain: INTEGER
    with
        Floor in [1..6]

WARD contains INTENSIVE, SURGICAL, GENERAL
    with
        if x isa WARD and 1 <= x.Floor <= 2 then x isa INTENSIVE
        if x isa WARD and 3 <= x.Floor <= 4 then x isa SURGICAL
        if x isa WARD and 5 <= x.Floor <= 6 then x isa GENERAL

INTENSIVE isa WARD with 1 <= Floor <= 2
SURGICAL isa WARD with 3 <= Floor <= 4
GENERAL isa WARD with 5 <= Floor <= 6

object type PATIENT
    has key: Id        domain: CHAR[6]
    has:     Age       domain: INTEGER
    has:     Severity  domain: INTEGER
    has:     Triage    domain: CHAR[8]
    has:     Ward      domain: WARD
    with
        Severity in [0..99]
        Age in [0..99]
        if 70 <= Severity <= 99 then Triage = "RED"
        if 30 <= Severity <= 69 then Triage = "AMBER"
        if 0 <= Severity <= 29 then Triage = "GREEN"

PATIENT contains CRITICAL, URGENT, ROUTINE
    with
        if x isa PATIENT and 70 <= x.Severity <= 99 then x isa CRITICAL
        if x isa PATIENT and 30 <= x.Severity <= 69 then x isa URGENT
        if x isa PATIENT and 0 <= x.Severity <= 29 then x isa ROUTINE

CRITICAL isa PATIENT with Triage = "RED"
URGENT isa PATIENT with Triage = "AMBER"
ROUTINE isa PATIENT with Triage = "GREEN"
"""

#: Severity bands, routine first so skew favors the common case.
_TRIAGE_BANDS = (Band(0, 29, "GREEN"), Band(30, 69, "AMBER"),
                 Band(70, 99, "RED"))

#: Triage label -> the wards that triage admits to.
_WARDS_BY_TRIAGE = {"RED": ("W01", "W02"), "AMBER": ("W03", "W04"),
                    "GREEN": ("W05", "W06")}

_WARD_NAMES = ("Harborview", "Lakeside", "Northgate", "Eastbrook",
               "Willowmere", "Stonebridge")


def build_hospital(seed: int = 0, scale: int = 1,
                   adversarial: bool = False) -> Database:
    """PATIENT(Id, Age, Severity, Triage, Ward) referencing WARD."""
    rng = random.Random(f"hospital:{seed}:{scale}:{int(adversarial)}")
    ward_rows = []
    for index in range(6):
        floor = index + 1
        ward_rows.append((f"W{index + 1:02d}", _WARD_NAMES[index], floor,
                          8 + 4 * floor + rng.randrange(4)))
    edge = 300 if adversarial else 0
    noise = 40 if adversarial else 0
    labels = tuple(band.label for band in _TRIAGE_BANDS)
    patient_rows = []
    for number in range(120 * scale):
        severity, label = banded_value(rng, _TRIAGE_BANDS, skew=1,
                                       edge_permille=edge)
        triage = noisy_label(rng, label, labels, noise_permille=noise)
        wards = _WARDS_BY_TRIAGE[triage]
        if adversarial and rng.randrange(1000) < 30:
            ward = f"W{rng.randrange(1, 7):02d}"  # cross-band admission
        else:
            ward = wards[rng.randrange(len(wards))]
        age = skewed_int(rng, 0, 100, skew=1)
        patient_rows.append((identifier("P", number + 1), age, severity,
                             triage, ward))
    db = Database("hospital")
    db.create("WARD",
              [("Ward", char(4)), ("WardName", char(16)),
               ("Floor", INTEGER), ("Beds", INTEGER)],
              rows=ward_rows, key=["Ward"])
    db.create("PATIENT",
              [("Id", char(6)), ("Age", INTEGER), ("Severity", INTEGER),
               ("Triage", char(8)), ("Ward", char(4))],
              rows=patient_rows, key=["Id"])
    return db


# ---------------------------------------------------------------------------
# logistics


LOGISTICS_SCHEMA_DDL = """
object type ROUTE
    has key: Route     domain: CHAR[5]
    has:     RouteName domain: CHAR[18]
    has:     Distance  domain: INTEGER
    has:     Zone      domain: CHAR[8]
    with
        Distance in [10..5000]

ROUTE contains LOCAL, REGIONAL, LONGHAUL
    with
        if x isa ROUTE and 10 <= x.Distance <= 149 then x isa LOCAL
        if x isa ROUTE and 150 <= x.Distance <= 999 then x isa REGIONAL
        if x isa ROUTE and 1000 <= x.Distance <= 5000 then x isa LONGHAUL

LOCAL isa ROUTE with Zone = "LOCAL"
REGIONAL isa ROUTE with Zone = "REGION"
LONGHAUL isa ROUTE with Zone = "LONG"

object type SHIPMENT
    has key: Id       domain: CHAR[7]
    has:     Weight   domain: INTEGER
    has:     Priority domain: CHAR[8]
    has:     Route    domain: ROUTE
    with
        Weight in [1..20000]
        if 1 <= Weight <= 99 then Priority = "PARCEL"
        if 100 <= Weight <= 1999 then Priority = "PALLET"
        if 2000 <= Weight <= 20000 then Priority = "BULK"
"""

_DISTANCE_BANDS = (Band(10, 149, "LOCAL"), Band(150, 999, "REGION"),
                   Band(1000, 5000, "LONG"))

_WEIGHT_BANDS = (Band(1, 99, "PARCEL"), Band(100, 1999, "PALLET"),
                 Band(2000, 20000, "BULK"))

#: Zone -> preferred weight-band indexes (correlation: long routes
#: carry bulk, local routes carry parcels).
_BAND_WEIGHTS_BY_ZONE = {"LOCAL": (6, 3, 1), "REGION": (2, 6, 2),
                         "LONG": (1, 3, 6)}

_ROUTE_NAMES = ("Quayline", "Milltrack", "Fenroad", "Archway", "Tollgate",
                "Causeway", "Beltline", "Skeinway", "Farspur")


def build_logistics(seed: int = 0, scale: int = 1,
                    adversarial: bool = False) -> Database:
    """SHIPMENT(Id, Weight, Priority, Route) referencing ROUTE."""
    rng = random.Random(f"logistics:{seed}:{scale}:{int(adversarial)}")
    route_rows = []
    zones = []
    for index in range(9):
        band = _DISTANCE_BANDS[index // 3]
        distance = rng.randrange(band.low, band.high + 1)
        route_rows.append((f"R{index + 1:03d}", _ROUTE_NAMES[index],
                           distance, band.label))
        zones.append(band.label)
    edge = 300 if adversarial else 0
    noise = 40 if adversarial else 0
    labels = tuple(band.label for band in _WEIGHT_BANDS)
    shipment_rows = []
    #: hot-route skew: route R001 carries an outsized share.
    route_weights = tuple(12 if i == 0 else 3 if i < 5 else 1
                          for i in range(9))
    for number in range(130 * scale):
        route_index = weighted_choice(rng, tuple(range(9)), route_weights)
        zone = zones[route_index]
        band_index = weighted_choice(rng, (0, 1, 2),
                                     _BAND_WEIGHTS_BY_ZONE[zone])
        band = _WEIGHT_BANDS[band_index]
        if edge and rng.randrange(1000) < edge:
            weight = band.low if rng.randrange(2) == 0 else band.high
        else:
            weight = rng.randrange(band.low, band.high + 1)
        priority = noisy_label(rng, band.label, labels,
                               noise_permille=noise)
        shipment_rows.append((identifier("S", number + 1, width=6), weight,
                              priority, f"R{route_index + 1:03d}"))
    db = Database("logistics")
    db.create("ROUTE",
              [("Route", char(5)), ("RouteName", char(18)),
               ("Distance", INTEGER), ("Zone", char(8))],
              rows=route_rows, key=["Route"])
    db.create("SHIPMENT",
              [("Id", char(7)), ("Weight", INTEGER),
               ("Priority", char(8)), ("Route", char(5))],
              rows=shipment_rows, key=["Id"])
    return db


# ---------------------------------------------------------------------------
# ontology (deep isa hierarchy)


ONTOLOGY_SCHEMA_DDL = """
object type ASSET
    has key: Id     domain: CHAR[7]
    has:     Code   domain: INTEGER
    has:     Tier   domain: CHAR[8]
    has:     Worth  domain: INTEGER
    with
        Code in [0..7999]

ASSET contains MOBILE, FIXED
    with
        if x isa ASSET and 0 <= x.Code <= 3999 then x isa MOBILE
        if x isa ASSET and 4000 <= x.Code <= 7999 then x isa FIXED

MOBILE isa ASSET with 0 <= Code <= 3999
FIXED isa ASSET with Tier = "FIXED"

MOBILE contains VEHICLE, VESSEL
    with
        if x isa MOBILE and 0 <= x.Code <= 1999 then x isa VEHICLE
        if x isa MOBILE and 2000 <= x.Code <= 3999 then x isa VESSEL

VEHICLE isa MOBILE with 0 <= Code <= 1999
VESSEL isa MOBILE with Tier = "VESSEL"

VEHICLE contains CAR, TRUCK
    with
        if x isa VEHICLE and 0 <= x.Code <= 999 then x isa CAR
        if x isa VEHICLE and 1000 <= x.Code <= 1999 then x isa TRUCK

CAR isa VEHICLE with 0 <= Code <= 999
TRUCK isa VEHICLE with Tier = "TRUCK"

CAR contains SPORT, SEDAN
    with
        if x isa CAR and 0 <= x.Code <= 499 then x isa SPORT
        if x isa CAR and 500 <= x.Code <= 999 then x isa SEDAN

SPORT isa CAR with Tier = "SPORT"
SEDAN isa CAR with Tier = "SEDAN"
"""

#: Tier labels track the second hierarchy level plus the leaf split of
#: CAR, so the induced Code --> Tier rules mirror the isa derivations.
_TIER_BANDS = (Band(0, 499, "SPORT"), Band(500, 999, "SEDAN"),
               Band(1000, 1999, "TRUCK"), Band(2000, 3999, "VESSEL"),
               Band(4000, 7999, "FIXED"))

#: Tier -> base worth (sport cars appraise high, fixed assets higher).
_WORTH_BASE = {"SPORT": 900, "SEDAN": 400, "TRUCK": 600, "VESSEL": 1500,
               "FIXED": 2500}


def build_ontology(seed: int = 0, scale: int = 1,
                   adversarial: bool = False) -> Database:
    """ASSET(Id, Code, Tier, Worth) under the five-level hierarchy."""
    rng = random.Random(f"ontology:{seed}:{scale}:{int(adversarial)}")
    edge = 300 if adversarial else 0
    noise = 40 if adversarial else 0
    labels = tuple(band.label for band in _TIER_BANDS)
    rows = []
    for number in range(150 * scale):
        code, label = banded_value(rng, _TIER_BANDS, skew=1,
                                   edge_permille=edge)
        tier = noisy_label(rng, label, labels, noise_permille=noise)
        worth = _WORTH_BASE[band_label(_TIER_BANDS, code)] + rng.randrange(
            0, 400)
        rows.append((identifier("A", number + 1, width=6), code, tier,
                     worth))
    db = Database("ontology")
    db.create("ASSET",
              [("Id", char(7)), ("Code", INTEGER), ("Tier", char(8)),
               ("Worth", INTEGER)],
              rows=rows, key=["Id"])
    return db


# ---------------------------------------------------------------------------
# ship (Appendix C, adapted to the same interface)


def build_ship(seed: int = 0, scale: int = 1,
               adversarial: bool = False) -> Database:
    """The Appendix C instance; *seed*/*adversarial* are accepted for
    interface uniformity (the paper's data is fixed), *scale* > 1
    clones submarines via the scaling generator."""
    from repro.testbed.generators import scaled_ship_database
    from repro.testbed.ship_db import ship_database
    if scale > 1:
        return scaled_ship_database(scale=scale, seed=seed)
    return ship_database()


# ---------------------------------------------------------------------------
# registry


@dataclass(frozen=True)
class SynthDomain:
    """One generatable domain: DDL + a deterministic instance builder."""

    name: str
    ddl: str
    relation_order: tuple[str, ...]
    build: Callable[..., Database] = field(compare=False)
    description: str = ""

    def ker_schema(self) -> KerSchema:
        return parse_ker(self.ddl, name=self.name)


def _ship_ddl() -> str:
    from repro.testbed.ship_schema import SHIP_SCHEMA_DDL
    return SHIP_SCHEMA_DDL


DOMAINS: dict[str, SynthDomain] = {}


def _register(domain: SynthDomain) -> SynthDomain:
    DOMAINS[domain.name] = domain
    return domain


HOSPITAL = _register(SynthDomain(
    "hospital", HOSPITAL_SCHEMA_DDL, ("PATIENT", "WARD"), build_hospital,
    "severity-banded triage with ward FK; skewed ages, boundary mass"))

LOGISTICS = _register(SynthDomain(
    "logistics", LOGISTICS_SCHEMA_DDL, ("SHIPMENT", "ROUTE"),
    build_logistics,
    "weight-banded priorities, distance-banded zones, hot-route skew"))

ONTOLOGY = _register(SynthDomain(
    "ontology", ONTOLOGY_SCHEMA_DDL, ("ASSET",), build_ontology,
    "one relation under a five-level isa hierarchy (deep inference)"))

SHIP = _register(SynthDomain(
    "ship", _ship_ddl(), ("SUBMARINE", "CLASS", "SONAR", "INSTALL"),
    build_ship, "the Appendix C naval instance (reference domain)"))


def get_domain(name: str) -> SynthDomain:
    try:
        return DOMAINS[name]
    except KeyError:
        raise KeyError(
            f"unknown domain {name!r}; have {sorted(DOMAINS)}") from None


# ---------------------------------------------------------------------------
# instances


@dataclass
class SynthInstance:
    """A built domain: database + bound schema + induced rule base."""

    domain: SynthDomain
    seed: int
    scale: int
    adversarial: bool
    database: Database
    schema: KerSchema
    binding: SchemaBinding
    rules: RuleSet

    def reinduce(self, n_c: float = 3) -> RuleSet:
        """Re-induce the rule base from the *current* data (the
        maintained-rule-base contract after DML)."""
        self.rules = InductiveLearningSubsystem(
            self.binding, InductionConfig(n_c=n_c),
            relation_order=list(self.domain.relation_order)).induce()
        return self.rules


def build_instance(name: str, seed: int = 0, scale: int = 1,
                   adversarial: bool = False, induce: bool = True,
                   n_c: float = 3) -> SynthInstance:
    """Build a fresh, fully bound instance of domain *name*."""
    domain = get_domain(name)
    database = domain.build(seed=seed, scale=scale,
                            adversarial=adversarial)
    schema = domain.ker_schema()
    binding = SchemaBinding(schema, database)
    rules = RuleSet()
    if induce:
        rules = InductiveLearningSubsystem(
            binding, InductionConfig(n_c=n_c),
            relation_order=list(domain.relation_order)).induce()
    return SynthInstance(domain, seed, scale, adversarial, database,
                         schema, binding, rules)
