"""Seed-deterministic mixed query/DML workloads over any bound domain.

Unlike :mod:`repro.testbed.workload` (read-only conjunctive SELECTs
over one schema), this generator is schema-driven and emits full
*programs*: point/range/join/aggregate SELECTs, ``ask()``-flavored
conjunctive queries, and INSERT/DELETE/UPDATE statements whose values
are drawn from the observed data -- the statement stream the
differential harness replays through every engine configuration.

Determinism contract: ``generate_program(instance, n, seed)`` is a pure
function of the *initial* database content and its integer arguments.
It never consults sets (string hash order is process-random), only
sorted lists and insertion-ordered rows.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import NamedTuple

from repro.induction.candidates import foreign_key_map
from repro.relational.relation import Relation
from repro.synth.domains import SynthInstance


class Statement(NamedTuple):
    """One program entry."""

    kind: str   #: "select" | "ask" | "dml"
    sql: str


def _sql_literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return str(value)


class _RelationPool:
    """Deterministic per-relation sampling state."""

    def __init__(self, relation: Relation):
        self.relation = relation
        self.name = relation.name
        self.key_columns = list(relation.schema.key or
                                (relation.schema.columns[0].name,))
        self.columns = [column.name for column in relation.schema.columns]
        #: column -> sorted distinct observed values (non-NULL).
        self.values: dict[str, list] = {}
        for column in self.columns:
            observed = [value for value
                        in relation.column_values(column)
                        if value is not None]
            try:
                distinct = sorted(set(observed))
            except TypeError:  # mixed types: keep insertion order, dedup
                seen: list = []
                for value in observed:
                    if value not in seen:
                        seen.append(value)
                distinct = seen
            self.values[column] = distinct

    def conditionable(self) -> list[str]:
        return [column for column in self.columns
                if len(self.values[column]) >= 2]

    def sample(self, rng: random.Random, column: str):
        pool = self.values[column]
        return pool[rng.randrange(len(pool))]


class ProgramGenerator:
    """Generates one deterministic statement program."""

    def __init__(self, instance: SynthInstance, seed: int = 0,
                 adversarial: bool | None = None):
        self.instance = instance
        self.rng = random.Random(
            f"program:{instance.domain.name}:{seed}")
        self.adversarial = (instance.adversarial if adversarial is None
                            else adversarial)
        database = instance.database
        names = sorted(database.catalog.names())
        self.pools = [_RelationPool(database.relation(name))
                      for name in names
                      if not name.lower().startswith(("rule_", "_"))]
        self.pools = [pool for pool in self.pools if len(pool.relation)]
        #: (source ref, target ref) foreign-key joins, sorted for
        #: determinism.
        fk = foreign_key_map(instance.binding)
        self.joins = sorted(
            ((source.relation, source.attribute,
              target.relation, target.attribute)
             for source, target in fk.items()),
            key=lambda item: (item[0].lower(), item[1].lower()))
        self._insert_serial = 0

    # -- condition building -------------------------------------------------

    def _condition(self, pool: _RelationPool, column: str) -> str:
        rng = self.rng
        ref = f"{pool.name}.{column}"
        kind = rng.randrange(5)
        if kind == 0:
            return f"{ref} = {_sql_literal(pool.sample(rng, column))}"
        if kind == 1:
            return f"{ref} >= {_sql_literal(pool.sample(rng, column))}"
        if kind == 2:
            return f"{ref} <= {_sql_literal(pool.sample(rng, column))}"
        if kind == 3:
            low = pool.sample(rng, column)
            high = pool.sample(rng, column)
            if isinstance(low, type(high)) and high < low:
                low, high = high, low
            return (f"{ref} >= {_sql_literal(low)} AND "
                    f"{ref} <= {_sql_literal(high)}")
        # out-of-domain probe: != an observed value, or a missing point
        if rng.randrange(2) == 0:
            return f"{ref} != {_sql_literal(pool.sample(rng, column))}"
        missing = "zzz-none" if isinstance(
            pool.values[column][0], str) else -987654
        return f"{ref} = {_sql_literal(missing)}"

    def _where(self, pools: list[_RelationPool],
               join_conjuncts: list[str], max_extra: int = 3) -> str:
        conjuncts = list(join_conjuncts)
        for _ in range(self.rng.randrange(max_extra + 1)):
            pool = pools[self.rng.randrange(len(pools))]
            candidates = pool.conditionable()
            if not candidates:
                continue
            column = candidates[self.rng.randrange(len(candidates))]
            conjuncts.append(self._condition(pool, column))
        return " AND ".join(conjuncts)

    # -- statements -------------------------------------------------------

    def _pool_for(self, name: str) -> _RelationPool:
        for pool in self.pools:
            if pool.name.lower() == name.lower():
                return pool
        raise KeyError(name)

    def select_statement(self) -> Statement:
        rng = self.rng
        use_join = self.joins and rng.randrange(100) < 40
        if use_join:
            src_rel, src_col, dst_rel, dst_col = self.joins[
                rng.randrange(len(self.joins))]
            pools = [self._pool_for(src_rel), self._pool_for(dst_rel)]
            join_conjuncts = [
                f"{src_rel}.{src_col} = {dst_rel}.{dst_col}"]
        else:
            pools = [self.pools[rng.randrange(len(self.pools))]]
            join_conjuncts = []

        shape = rng.randrange(10)
        tables = ", ".join(pool.name for pool in pools)
        where = self._where(pools, join_conjuncts)
        where_clause = f" WHERE {where}" if where else ""

        if shape < 2:  # aggregate
            pool = pools[0]
            numeric = [column for column in pool.conditionable()
                       if pool.values[column]
                       and isinstance(pool.values[column][0], int)]
            if shape == 0 or not numeric:
                agg = ("COUNT(*)" if rng.randrange(2) == 0 else
                       f"COUNT({pool.name}.{pool.key_columns[0]})")
            else:
                column = numeric[rng.randrange(len(numeric))]
                fn = ("MIN", "MAX", "SUM")[rng.randrange(3)]
                agg = f"{fn}({pool.name}.{column})"
            group = ""
            label_columns = [column for column in pool.conditionable()
                            if isinstance(pool.values[column][0], str)
                            and len(pool.values[column]) <= 12]
            items = agg
            if label_columns and rng.randrange(2) == 0:
                column = label_columns[rng.randrange(len(label_columns))]
                items = f"{pool.name}.{column}, {agg}"
                group = f" GROUP BY {pool.name}.{column}"
            return Statement(
                "select",
                f"SELECT {items} FROM {tables}{where_clause}{group}")

        projections = ["*"]
        for pool in pools:
            projections.extend(f"{pool.name}.{column}"
                               for column in pool.columns)
        items = projections[rng.randrange(len(projections))]
        distinct = items != "*" and rng.randrange(3) == 0
        order = (f" ORDER BY {items}"
                 if items != "*" and rng.randrange(3) == 0 else "")
        head = "SELECT " + ("DISTINCT " if distinct else "") + items
        return Statement(
            "select", f"{head} FROM {tables}{where_clause}{order}")

    def ask_statement(self) -> Statement:
        """A conjunctive SELECT shaped for intensional answering:
        key projection, interval conditions on one relation."""
        rng = self.rng
        pool = self.pools[rng.randrange(len(self.pools))]
        candidates = pool.conditionable()
        if not candidates:
            return self.select_statement()
        column = candidates[rng.randrange(len(candidates))]
        low = pool.sample(rng, column)
        high = pool.sample(rng, column)
        if isinstance(low, type(high)) and high < low:
            low, high = high, low
        key = ", ".join(f"{pool.name}.{name}"
                        for name in pool.key_columns)
        return Statement(
            "ask",
            f"SELECT {key} FROM {pool.name} "
            f"WHERE {pool.name}.{column} >= {_sql_literal(low)} "
            f"AND {pool.name}.{column} <= {_sql_literal(high)}")

    def dml_statement(self) -> Statement:
        rng = self.rng
        pool = self.pools[rng.randrange(len(self.pools))]
        op = rng.randrange(3)
        if op == 0:  # INSERT: clone an observed row under a fresh key
            self._insert_serial += 1
            row = list(pool.relation)[
                rng.randrange(len(pool.relation))]
            values = list(row)
            key_positions = {pool.relation.schema.position(name)
                             for name in pool.key_columns}
            for position in sorted(key_positions):
                if isinstance(values[position], str):
                    values[position] = f"Z{self._insert_serial % 1000:03d}"
                else:
                    values[position] = 900000 + self._insert_serial
            # adversarial inserts may break the induced band correlation
            if self.adversarial and rng.randrange(2) == 0:
                for index, value in enumerate(values):
                    if index not in key_positions and isinstance(
                            value, int):
                        values[index] = value + 1 + rng.randrange(5000)
                        break
            columns = ", ".join(pool.columns)
            rendered = ", ".join(_sql_literal(value) for value in values)
            return Statement(
                "dml",
                f"INSERT INTO {pool.name} ({columns}) "
                f"VALUES ({rendered})")
        if op == 1:  # DELETE: by key point, or a thin range
            column = pool.key_columns[0]
            value = pool.sample(rng, column)
            return Statement(
                "dml",
                f"DELETE FROM {pool.name} "
                f"WHERE {pool.name}.{column} = {_sql_literal(value)}")
        # UPDATE one non-key column behind a key-point predicate
        non_key = [column for column in pool.columns
                   if column not in pool.key_columns
                   and pool.values[column]]
        if not non_key:
            return self.dml_statement()
        column = non_key[rng.randrange(len(non_key))]
        new_value = pool.sample(rng, column)
        key_column = pool.key_columns[0]
        key_value = pool.sample(rng, key_column)
        return Statement(
            "dml",
            f"UPDATE {pool.name} SET {column} = {_sql_literal(new_value)} "
            f"WHERE {pool.name}.{key_column} = {_sql_literal(key_value)}")

    def statement(self, mix: tuple[int, int, int]) -> Statement:
        """Draw one statement; *mix* is integer weights for
        (select, ask, dml)."""
        kinds = ("select", "ask", "dml")
        total = sum(mix)
        pick = self.rng.randrange(total)
        for kind, weight in zip(kinds, mix):
            pick -= weight
            if pick < 0:
                break
        if kind == "select":
            return self.select_statement()
        if kind == "ask":
            return self.ask_statement()
        return self.dml_statement()


#: Default statement mix: mostly reads, a steady trickle of DML.
DEFAULT_MIX = (6, 2, 2)


def generate_program(instance: SynthInstance, n_statements: int = 40,
                     seed: int = 0,
                     mix: tuple[int, int, int] = DEFAULT_MIX,
                     ) -> list[Statement]:
    """Generate a deterministic *n_statements*-long program."""
    generator = ProgramGenerator(instance, seed=seed)
    return [generator.statement(mix) for _ in range(n_statements)]


# ---------------------------------------------------------------------------
# fingerprints (the determinism suite's currency)


def _canonical(payload) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _digest(payload) -> str:
    return hashlib.sha256(_canonical(payload)).hexdigest()


def schema_fingerprint(instance: SynthInstance) -> str:
    """Hash of the domain DDL + declared relation schemas."""
    relations = {}
    for name in sorted(instance.database.catalog.names()):
        relation = instance.database.relation(name)
        relations[relation.name] = {
            "columns": [[column.name, column.datatype.render()]
                        for column in relation.schema.columns],
            "key": list(relation.schema.key or ()),
        }
    return _digest({"ddl": instance.domain.ddl, "relations": relations})


def rows_fingerprint(instance: SynthInstance) -> str:
    """Hash of every relation's full row content, in row order."""
    relations = {}
    for name in sorted(instance.database.catalog.names()):
        relation = instance.database.relation(name)
        relations[relation.name] = [list(row) for row in relation]
    return _digest(relations)


def workload_fingerprint(statements: list[Statement]) -> str:
    """Hash of the rendered statement stream."""
    return _digest([[statement.kind, statement.sql]
                    for statement in statements])


def rules_fingerprint(instance: SynthInstance) -> str:
    """Hash of the induced rule base's rendering."""
    return _digest(instance.rules.render())
