"""Test-bed databases.

* :func:`ship_database` -- the exact naval ship instance of Appendix C
  (SUBMARINE / CLASS / TYPE / SONAR / INSTALL).
* :func:`ship_ker_schema` -- the Appendix B KER schema for it.
* :mod:`repro.testbed.battleships` -- Table 1 (navy battleship
  classification characteristics) and a synthetic fleet realizing it.
* :mod:`repro.testbed.generators` -- seeded synthetic databases of
  arbitrary size for scaling benchmarks.
"""

from repro.testbed.ship_db import ship_database
from repro.testbed.ship_schema import ship_ker_schema, SHIP_SCHEMA_DDL
from repro.testbed.battleships import (
    BATTLESHIP_CLASSES, battleship_database, battleship_table,
)
from repro.testbed.generators import synthetic_classified_database
from repro.testbed.harbor import (
    HARBOR_SCHEMA_DDL, harbor_database, harbor_ker_schema,
)

__all__ = [
    "HARBOR_SCHEMA_DDL",
    "harbor_database",
    "harbor_ker_schema",
    "ship_database",
    "ship_ker_schema",
    "SHIP_SCHEMA_DDL",
    "BATTLESHIP_CLASSES",
    "battleship_database",
    "battleship_table",
    "synthetic_classified_database",
]
