"""Table 1: classification characteristics of navy battleships.

The paper's Table 1 lists twelve ship types in two categories with their
displacement ranges.  The table is *metadata*; to exercise the learning
pipeline we also provide a synthetic fleet generator that realizes the
table as ship instances (each ship's displacement drawn inside its
type's range, deterministically from a seed), so that the ILS can induce
the ranges back out of the data -- which is exactly Section 3.1's point
that "these characteristics are the candidate knowledge that can be
derived from the database".
"""

from __future__ import annotations

import random
from typing import NamedTuple

from repro.relational import Database, INTEGER, char
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema


class BattleshipClass(NamedTuple):
    """One Table 1 row."""

    category: str
    type_code: str
    type_name: str
    displacement_low: int
    displacement_high: int


#: Table 1, verbatim.
BATTLESHIP_CLASSES: tuple[BattleshipClass, ...] = (
    BattleshipClass("Subsurface", "SSBN",
                    "Ballistic Nuclear Missile Submarine", 7250, 16600),
    BattleshipClass("Subsurface", "SSN", "Nuclear Submarine", 1720, 6000),
    BattleshipClass("Surface", "CVN", "Attack Aircraft Carrier",
                    75700, 81600),
    BattleshipClass("Surface", "CV", "Aircraft Carrier", 41900, 61000),
    BattleshipClass("Surface", "BB", "Battleship", 45000, 45000),
    BattleshipClass("Surface", "CGN", "Guided Nuclear Missile Crusier",
                    7600, 14200),
    BattleshipClass("Surface", "CG", "Guided Missile Crusier", 5670, 13700),
    BattleshipClass("Surface", "CA", "Gun Cruiser", 17000, 17000),
    BattleshipClass("Surface", "DDG", "Guided Missile Destroyer",
                    3370, 8300),
    BattleshipClass("Surface", "DD", "Destroyer", 2425, 7810),
    BattleshipClass("Surface", "FFG", "Guided Missile Frigate", 3605, 3605),
    BattleshipClass("Surface", "FF", "Frigate", 2360, 3011),
)


def battleship_table() -> Relation:
    """Table 1 as a relation (the paper's printed form)."""
    schema = RelationSchema("BATTLESHIP_TYPES", [
        Column("Category", char(10)),
        Column("Type", char(4)),
        Column("TypeName", char(40)),
        Column("DisplacementLow", INTEGER),
        Column("DisplacementHigh", INTEGER),
    ], key=["Type"])
    return Relation(schema, [tuple(entry) for entry in BATTLESHIP_CLASSES])


def battleship_database(ships_per_type: int = 20, seed: int = 1981,
                        include_endpoints: bool = True) -> Database:
    """A synthetic fleet realizing Table 1.

    Parameters
    ----------
    ships_per_type:
        Fleet size per ship type.
    seed:
        Seed for the deterministic displacement draws.
    include_endpoints:
        When True (default), each type's first two ships take exactly the
        low and high range bounds, so induced ranges reproduce Table 1
        exactly rather than approaching it statistically.
    """
    rng = random.Random(seed)
    ship_rows: list[tuple[str, str, str, int]] = []
    hull = 100
    for entry in BATTLESHIP_CLASSES:
        low, high = entry.displacement_low, entry.displacement_high
        for index in range(ships_per_type):
            if include_endpoints and index == 0:
                displacement = low
            elif include_endpoints and index == 1 and high > low:
                displacement = high
            else:
                displacement = rng.randint(low, high)
            ship_rows.append((
                f"{entry.type_code}{hull}",
                f"{entry.type_name} {index + 1}",
                entry.type_code,
                displacement,
            ))
            hull += 1

    db = Database("battleships")
    db.create("SHIP",
              [("Id", char(10)), ("Name", char(44)),
               ("Type", char(4)), ("Displacement", INTEGER)],
              rows=ship_rows, key=["Id"])
    db.create("SHIPTYPE",
              [("Type", char(4)), ("TypeName", char(40)),
               ("Category", char(10))],
              rows=[(e.type_code, e.type_name, e.category)
                    for e in BATTLESHIP_CLASSES],
              key=["Type"])
    return db
