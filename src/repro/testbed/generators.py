"""Seeded synthetic databases for scaling and ablation benchmarks.

All generators are deterministic functions of their parameters; no
global random state is touched.
"""

from __future__ import annotations

import random

from repro.relational import Database, INTEGER, char


def synthetic_classified_database(n_rows: int = 1000, n_classes: int = 5,
                                  seed: int = 7, noise: float = 0.0,
                                  name: str = "synth") -> Database:
    """A single-relation database whose label is range-determined.

    ``ITEM(Id, Value, Label)``: the value domain ``[0, 100 * n_classes)``
    is split into ``n_classes`` contiguous bands; each row draws a value
    and takes its band's label.  With ``noise > 0`` that fraction of rows
    is relabeled uniformly at random, which creates inconsistent (X, Y)
    pairs for step 2 of the induction algorithm to remove.

    The induced ``Value --> Label`` rule set on a noise-free instance
    recovers the bands (one rule per band, possibly split at unobserved
    values).
    """
    if n_classes < 1:
        raise ValueError("need at least one class")
    rng = random.Random(seed)
    band_width = 100
    labels = [f"L{index:03d}" for index in range(n_classes)]
    rows = []
    for identifier in range(n_rows):
        value = rng.randrange(0, band_width * n_classes)
        label = labels[value // band_width]
        if noise > 0 and rng.random() < noise:
            label = rng.choice(labels)
        rows.append((identifier, value, label))
    db = Database(name)
    db.create("ITEM",
              [("Id", INTEGER), ("Value", INTEGER), ("Label", char(8))],
              rows=rows, key=["Id"])
    return db


def synthetic_star_database(n_entities: int = 500, n_groups: int = 20,
                            seed: int = 11, name: str = "star") -> Database:
    """A two-relation database with a foreign key, for inter-object
    (relationship) rule induction.

    ``ENTITY(Id, GroupId, Size)`` references ``GROUPS(GroupId, Label,
    Weight)``; group labels partition the group-id space contiguously,
    and entity sizes are drawn around a per-group center, so both
    ``GroupId --> Label`` and the cross-relation ``Size --> Label``
    schemes carry signal.
    """
    rng = random.Random(seed)
    group_rows = []
    label_count = max(2, n_groups // 5)
    for group_id in range(n_groups):
        label = f"G{group_id * label_count // n_groups:02d}"
        group_rows.append((group_id, label, (group_id + 1) * 10))
    entity_rows = []
    for identifier in range(n_entities):
        group_id = rng.randrange(n_groups)
        size = group_id * 100 + rng.randrange(0, 100)
        entity_rows.append((identifier, group_id, size))
    db = Database(name)
    db.create("GROUPS",
              [("GroupId", INTEGER), ("Label", char(4)),
               ("Weight", INTEGER)],
              rows=group_rows, key=["GroupId"])
    db.create("ENTITY",
              [("Id", INTEGER), ("GroupId", INTEGER), ("Size", INTEGER)],
              rows=entity_rows, key=["Id"])
    return db


def scaled_ship_database(scale: int = 10, seed: int = 3,
                         name: str = "ships_scaled") -> Database:
    """The ship database grown by *scale*: every submarine is cloned
    ``scale`` times with fresh hull numbers (same class and sonar
    distribution), which preserves the induced CLASS/SONAR rules while
    growing SUBMARINE and INSTALL linearly -- the shape used by the
    induction scaling benchmark."""
    from repro.testbed.ship_db import (
        CLASS_ROWS, INSTALL_ROWS, SONAR_ROWS, SUBMARINE_ROWS, TYPE_ROWS,
        ship_database,
    )
    if scale <= 1:
        return ship_database()
    sonar_by_ship = dict(INSTALL_ROWS)
    submarine_rows = list(SUBMARINE_ROWS)
    install_rows = list(INSTALL_ROWS)
    serial = 800
    for _copy in range(scale - 1):
        for ship_id, ship_name, ship_class in SUBMARINE_ROWS:
            prefix = "SSBN" if ship_id.startswith("SSBN") else "SSN"
            new_id = f"{prefix}{serial}"
            serial += 1
            submarine_rows.append((new_id, f"{ship_name} {serial}",
                                   ship_class))
            install_rows.append((new_id, sonar_by_ship[ship_id]))
    db = Database(name)
    from repro.relational import char as _char
    db.create("SUBMARINE",
              [("Id", _char(8)), ("Name", _char(26)), ("Class", _char(4))],
              rows=submarine_rows, key=["Id"])
    db.create("CLASS",
              [("Class", _char(4)), ("ClassName", _char(20)),
               ("Type", _char(4)), ("Displacement", INTEGER)],
              rows=CLASS_ROWS, key=["Class"])
    db.create("TYPE", [("Type", _char(4)), ("TypeName", _char(30))],
              rows=TYPE_ROWS, key=["Type"])
    db.create("SONAR", [("Sonar", _char(8)), ("SonarType", _char(8))],
              rows=SONAR_ROWS, key=["Sonar"])
    db.create("INSTALL", [("Ship", _char(8)), ("Sonar", _char(8))],
              rows=install_rows, key=["Ship"])
    return db
