"""The harbor test bed: ships, ports, and visits.

Section 3.1's inter-object knowledge example: "the relationship VISIT
involves entities of SHIP and PORT and satisfies the constraint that the
draft of the ship must be less than the depth of the port".  The ship
database of Appendix C has no such relationship, so this companion test
bed realizes it: small ships (drafts 5-8, Size "small") and large ships
(drafts 10-12, Size "large") visiting ports of various depths, every
visit respecting draft < depth.

Used by the comparison-constraint induction tests and by
``examples/harbor_visits.py``.
"""

from __future__ import annotations

from repro.ker import KerSchema, parse_ker
from repro.relational import Database, INTEGER, char

HARBOR_SCHEMA_DDL = """
object type SHIP
    has key: Id      domain: CHAR[6]
    has:     Name    domain: CHAR[16]
    has:     Draft   domain: INTEGER
    has:     Size    domain: CHAR[6]
    with
        Draft in [5..12]

SHIP contains SMALL, LARGE
SMALL isa SHIP with Size = "small"
LARGE isa SHIP with Size = "large"

object type PORT
    has key: Port      domain: CHAR[4]
    has:     PortName  domain: CHAR[16]
    has:     Depth     domain: INTEGER
    with
        Depth in [7..15]

object type VISIT
    has: Ship  domain: SHIP
    has: Port  domain: PORT
"""

#: (Id, Name, Draft, Size).
SHIP_ROWS: tuple[tuple[str, str, int, str], ...] = (
    ("SH01", "Curlew", 5, "small"),
    ("SH02", "Dunlin", 6, "small"),
    ("SH03", "Avocet", 7, "small"),
    ("SH04", "Godwit", 8, "small"),
    ("SH05", "Albatross", 10, "large"),
    ("SH06", "Pelican", 11, "large"),
    ("SH07", "Cormorant", 12, "large"),
)

#: (Port, PortName, Depth).
PORT_ROWS: tuple[tuple[str, str, int], ...] = (
    ("P01", "Reedham", 7),
    ("P02", "Saltmarsh", 9),
    ("P03", "Greywater", 11),
    ("P04", "Deephaven", 13),
    ("P05", "Fathomside", 15),
)

#: (Ship, Port) -- every visit satisfies draft < depth.
VISIT_ROWS: tuple[tuple[str, str], ...] = (
    ("SH01", "P01"), ("SH01", "P02"), ("SH01", "P05"),
    ("SH02", "P01"), ("SH02", "P03"),
    ("SH03", "P02"), ("SH03", "P04"),
    ("SH04", "P02"), ("SH04", "P03"), ("SH04", "P05"),
    ("SH05", "P03"), ("SH05", "P04"),
    ("SH06", "P04"), ("SH06", "P05"),
    ("SH07", "P04"), ("SH07", "P05"),
)


def harbor_database() -> Database:
    """Build a fresh harbor database."""
    db = Database("harbor")
    db.create("SHIP",
              [("Id", char(6)), ("Name", char(16)), ("Draft", INTEGER),
               ("Size", char(6))],
              rows=SHIP_ROWS, key=["Id"])
    db.create("PORT",
              [("Port", char(4)), ("PortName", char(16)),
               ("Depth", INTEGER)],
              rows=PORT_ROWS, key=["Port"])
    db.create("VISIT", [("Ship", char(6)), ("Port", char(4))],
              rows=VISIT_ROWS)
    return db


def harbor_ker_schema() -> KerSchema:
    """Parse a fresh copy of the harbor KER schema."""
    return parse_ker(HARBOR_SCHEMA_DDL, name="harbor")
