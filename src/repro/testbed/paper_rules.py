"""The paper's printed rule list R1..R17 and comparison utilities.

Section 6 prints seventeen induced rules.  This module transcribes them
literally (including the paper's own corrections: R1 ranges over
``SSBN623..SSBN635`` -- the printed ``SSN623`` is a typo, as the
Appendix C instance shows those hulls are SSBN boats) and provides the
machinery the E2 benchmark uses to diff a freshly induced rule set
against the printed list.

Known editorial inconsistencies in the printed list (see DESIGN.md
section 5):

* R14 has support 1 yet survives, while the support-1 rule
  ``Class = 1301 -> SSBN`` is explicitly dropped for having support 1;
* the Id->SonarType scheme over the full INSTALL join also yields
  ``SSBN130..SSBN629 -> BQQ`` (support 3), which the list omits;
* R17 is printed as the point rule ``Sonar = BQS-04 -> SSN`` although
  the algorithm's value ranges extend it to ``BQQ-8..BQS-04``.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.rules.clause import Clause
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet


def _rule(x_attr: str, low, high, y_attr: str, y_value,
          subtype: str | None = None, support: int = 0) -> Rule:
    return Rule([Clause.between(x_attr, low, high)],
                Clause.equals(y_attr, y_value),
                rhs_subtype=subtype, support=support, source="paper")


def paper_rule_set() -> RuleSet:
    """R1..R17 exactly as Section 6 prints them (typo-corrected ids)."""
    rules = RuleSet()
    # (1) SUBMARINE -- Id -> Class
    rules.add(_rule("SUBMARINE.Id", "SSBN623", "SSBN635",
                    "SUBMARINE.Class", "0103", "C0103", support=3))   # R1
    rules.add(_rule("SUBMARINE.Id", "SSN648", "SSN666",
                    "SUBMARINE.Class", "0204", "C0204", support=3))   # R2
    rules.add(_rule("SUBMARINE.Id", "SSN673", "SSN686",
                    "SUBMARINE.Class", "0204", "C0204", support=3))   # R3
    rules.add(_rule("SUBMARINE.Id", "SSN692", "SSN704",
                    "SUBMARINE.Class", "0201", "C0201", support=3))   # R4
    # (2) CLASS
    rules.add(_rule("CLASS.Class", "0101", "0103",
                    "CLASS.Type", "SSBN", "SSBN", support=3))         # R5
    rules.add(_rule("CLASS.Class", "0201", "0215",
                    "CLASS.Type", "SSN", "SSN", support=9))           # R6
    rules.add(_rule("CLASS.ClassName", "Skate", "Thresher",
                    "CLASS.Type", "SSN", "SSN", support=4))           # R7
    rules.add(_rule("CLASS.Displacement", 2145, 6955,
                    "CLASS.Type", "SSN", "SSN", support=9))           # R8
    rules.add(_rule("CLASS.Displacement", 7250, 30000,
                    "CLASS.Type", "SSBN", "SSBN", support=4))         # R9
    # (3) SONAR
    rules.add(_rule("SONAR.Sonar", "BQQ-2", "BQQ-8",
                    "SONAR.SonarType", "BQQ", "BQQ", support=3))      # R10
    rules.add(_rule("SONAR.Sonar", "BQS-04", "BQS-15",
                    "SONAR.SonarType", "BQS", "BQS", support=4))      # R11
    # (4) INSTALL (x isa SUBMARINE, y isa SONAR)
    rules.add(_rule("SUBMARINE.Id", "SSN582", "SSN601",
                    "SONAR.SonarType", "BQS", "BQS", support=4))      # R12
    rules.add(_rule("SUBMARINE.Id", "SSN604", "SSN671",
                    "SONAR.SonarType", "BQQ", "BQQ", support=7))      # R13
    rules.add(_rule("SUBMARINE.Class", "0203", "0203",
                    "SONAR.SonarType", "BQQ", "BQQ", support=1))      # R14
    rules.add(_rule("SUBMARINE.Class", "0205", "0207",
                    "SONAR.SonarType", "BQQ", "BQQ", support=3))      # R15
    rules.add(_rule("SUBMARINE.Class", "0208", "0215",
                    "SONAR.SonarType", "BQS", "BQS", support=4))      # R16
    rules.add(_rule("SONAR.Sonar", "BQS-04", "BQS-04",
                    "CLASS.Type", "SSN", "SSN", support=4))           # R17
    return rules


class RuleMatch(NamedTuple):
    """How one printed rule relates to the induced set."""

    paper_rule: Rule
    status: str           #: "exact", "implied", or "missing"
    induced_rule: Rule | None


class RuleComparison(NamedTuple):
    """Diff between the printed list and an induced rule set."""

    matches: list[RuleMatch]
    extras: list[Rule]     #: induced rules matching no printed rule

    @property
    def exact(self) -> int:
        return sum(1 for match in self.matches if match.status == "exact")

    @property
    def implied(self) -> int:
        return sum(1 for match in self.matches if match.status == "implied")

    @property
    def missing(self) -> int:
        return sum(1 for match in self.matches if match.status == "missing")

    def render(self) -> str:
        lines = []
        for match in self.matches:
            tag = {"exact": "=", "implied": "~", "missing": "x"}[match.status]
            line = f"  [{tag}] {match.paper_rule.render(isa_style=True)}"
            if match.status == "implied" and match.induced_rule is not None:
                line += ("  <- " +
                         match.induced_rule.render(isa_style=True))
            lines.append(line)
        for rule in self.extras:
            lines.append(f"  [+] {rule.render(isa_style=True)}")
        lines.append(
            f"exact: {self.exact}/17, implied: {self.implied}, "
            f"missing: {self.missing}, extra induced: {len(self.extras)}")
        return "\n".join(lines)


def compare_with_paper(induced: RuleSet) -> RuleComparison:
    """Match each printed rule against *induced*.

    ``exact``   -- an induced rule with identical premise and consequence;
    ``implied`` -- an induced rule that *implies* the printed rule (its
                   premise contains the printed premise, same
                   consequence), e.g. our widened R17;
    ``missing`` -- no induced rule covers it (the paper's R14 at N_c=3).
    """
    paper = paper_rule_set()
    matched_induced: set[int] = set()
    matches: list[RuleMatch] = []
    for printed in paper:
        exact = next(
            (rule for rule in induced
             if rule.lhs == printed.lhs and rule.rhs == printed.rhs), None)
        if exact is not None:
            matched_induced.add(id(exact))
            matches.append(RuleMatch(printed, "exact", exact))
            continue
        implied = next(
            (rule for rule in induced
             if rule.rhs == printed.rhs and len(rule.lhs) == 1
             and len(printed.lhs) == 1
             and rule.lhs[0].attribute == printed.lhs[0].attribute
             and rule.lhs[0].interval.contains(printed.lhs[0].interval)),
            None)
        if implied is not None:
            matched_induced.add(id(implied))
            matches.append(RuleMatch(printed, "implied", implied))
            continue
        matches.append(RuleMatch(printed, "missing", None))
    extras = [rule for rule in induced if id(rule) not in matched_induced]
    return RuleComparison(matches, extras)
