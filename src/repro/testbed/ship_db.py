"""The naval ship database of Appendix C, transcribed verbatim.

The database was originally created by the System Development Corporation
(later UNISYS) from Jane's Fighting Ships (1981) and hosted on INGRES;
the paper prints the full nuclear-submarine portion, which is what the
worked examples and the 17 induced rules are computed from.

Relations::

    SUBMARINE(Id, Name, Class)
    CLASS(Class, ClassName, Type, Displacement)
    TYPE(Type, TypeName)
    SONAR(Sonar, SonarType)
    INSTALL(Ship, Sonar)
"""

from __future__ import annotations

from repro.relational import Database, INTEGER, char

#: (Id, Name, Class) -- 24 submarines.
SUBMARINE_ROWS: tuple[tuple[str, str, str], ...] = (
    ("SSBN130", "Typhoon", "1301"),
    ("SSBN623", "Nathaniel Hale", "0103"),
    ("SSBN629", "Daniel Boone", "0103"),
    ("SSBN635", "Sam Rayburn", "0103"),
    ("SSBN644", "Lewis and Clark", "0102"),
    ("SSBN658", "Mariano G. Vallejo", "0102"),
    ("SSBN730", "Rhode Island", "0101"),
    ("SSN582", "Bonefish", "0215"),
    ("SSN584", "Seadragon", "0212"),
    ("SSN592", "Snook", "0209"),
    ("SSN601", "Robert E. Lee", "0208"),
    ("SSN604", "Haddo", "0205"),
    ("SSN610", "Thomas A. Edison", "0207"),
    ("SSN614", "Greenling", "0205"),
    ("SSN648", "Aspro", "0204"),
    ("SSN660", "Sand Lance", "0204"),
    ("SSN666", "Hawkbill", "0204"),
    ("SSN671", "Narwhal", "0203"),
    ("SSN673", "Flying Fish", "0204"),
    ("SSN679", "Silversides", "0204"),
    ("SSN686", "L. Mendel Rivers", "0204"),
    ("SSN692", "Omaha", "0201"),
    ("SSN698", "Bremerton", "0201"),
    ("SSN704", "Baltimore", "0201"),
)

#: (Class, ClassName, Type, Displacement) -- 13 ship classes.
CLASS_ROWS: tuple[tuple[str, str, str, int], ...] = (
    ("0101", "Ohio", "SSBN", 16600),
    ("0102", "Benjamin Franklin", "SSBN", 7250),
    ("0103", "Lafayette", "SSBN", 7250),
    ("0201", "LosAngeles", "SSN", 6000),
    ("0203", "Narwhal", "SSN", 4450),
    ("0204", "Sturgeon", "SSN", 3640),
    ("0205", "Thresher", "SSN", 3750),
    ("0207", "Ethan Allen", "SSN", 6955),
    ("0208", "George Washington", "SSN", 6019),
    ("0209", "Skipjack", "SSN", 3075),
    ("0212", "Skate", "SSN", 2360),
    ("0215", "Barbel", "SSN", 2145),
    ("1301", "Typhoon", "SSBN", 30000),
)

#: (Type, TypeName).
TYPE_ROWS: tuple[tuple[str, str], ...] = (
    ("SSBN", "ballistic nuclear missile sub"),
    ("SSN", "nuclear submarine"),
)

#: (Sonar, SonarType).
SONAR_ROWS: tuple[tuple[str, str], ...] = (
    ("BQQ-2", "BQQ"),
    ("BQQ-5", "BQQ"),
    ("BQQ-8", "BQQ"),
    ("BQS-04", "BQS"),
    ("BQS-12", "BQS"),
    ("BQS-13", "BQS"),
    ("BQS-15", "BQS"),
    ("TACTAS", "TACTAS"),
)

#: (Ship, Sonar) -- one sonar installation per ship.
INSTALL_ROWS: tuple[tuple[str, str], ...] = (
    ("SSBN130", "BQQ-2"),
    ("SSBN623", "BQQ-5"),
    ("SSBN629", "BQQ-5"),
    ("SSBN635", "BQS-12"),
    ("SSBN644", "BQQ-5"),
    ("SSBN658", "BQS-12"),
    ("SSBN730", "BQQ-5"),
    ("SSN582", "BQS-04"),
    ("SSN584", "BQS-04"),
    ("SSN592", "BQS-04"),
    ("SSN601", "BQS-04"),
    ("SSN604", "BQQ-2"),
    ("SSN610", "BQQ-5"),
    ("SSN614", "BQQ-2"),
    ("SSN648", "BQQ-2"),
    ("SSN660", "BQQ-5"),
    ("SSN666", "BQQ-8"),
    ("SSN671", "BQQ-2"),
    ("SSN673", "BQS-12"),
    ("SSN679", "BQS-13"),
    ("SSN686", "BQQ-2"),
    ("SSN692", "BQS-15"),
    ("SSN698", "TACTAS"),
    ("SSN704", "BQQ-5"),
)


def ship_database() -> Database:
    """Build a fresh copy of the Appendix C ship database."""
    db = Database("ships")
    db.create("SUBMARINE",
              [("Id", char(7)), ("Name", char(20)), ("Class", char(4))],
              rows=SUBMARINE_ROWS, key=["Id"])
    db.create("CLASS",
              [("Class", char(4)), ("ClassName", char(20)),
               ("Type", char(4)), ("Displacement", INTEGER)],
              rows=CLASS_ROWS, key=["Class"])
    db.create("TYPE",
              [("Type", char(4)), ("TypeName", char(30))],
              rows=TYPE_ROWS, key=["Type"])
    db.create("SONAR",
              [("Sonar", char(8)), ("SonarType", char(8))],
              rows=SONAR_ROWS, key=["Sonar"])
    db.create("INSTALL",
              [("Ship", char(7)), ("Sonar", char(8))],
              rows=INSTALL_ROWS, key=["Ship"])
    return db
