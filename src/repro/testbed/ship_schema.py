"""The Appendix B KER schema of the naval ship database.

The DDL below follows Appendix B with three deliberate clarifications,
each noted in DESIGN.md:

* role declarations appear in rule premises (the Appendix A.5 structure-
  rule form) instead of inside comments, since comments are skipped;
* the subtype lists are written out in full (Appendix B abbreviates
  ``SUBMARINE contains C0101, ..., C1301``);
* every subtype carries an explicit derivation specification
  (``SSBN isa CLASS with Type = "SSBN"``), the Section 2 form, so that
  rule conclusions of the shape ``x isa SSBN`` are grounded.
"""

from __future__ import annotations

from repro.ker import KerSchema, parse_ker

#: The ship schema in KER DDL (Appendix A syntax).
SHIP_SCHEMA_DDL = """
/* B.1 Domain definitions */
domain: NAME isa CHAR[20]
domain: CLASS_NAME isa NAME
domain: SHIP_NAME isa NAME
domain: TYPE_NAME isa CHAR[30]
domain: SONAR_NAME isa CHAR[8]

/* B.2 Object type definitions */
object type TYPE
    has key: Type       domain: CHAR[4]
    has:     TypeName   domain: TYPE_NAME

object type CLASS
    has key: Class          domain: CHAR[4]
    has:     ClassName      domain: CLASS_NAME
    has:     Type           domain: TYPE
    has:     Displacement   domain: INTEGER
    with
        Displacement in [2000..30000]
        if "0101" <= Class <= "0103" then Type = "SSBN"
        if "0201" <= Class <= "0216" then Type = "SSN"

CLASS contains SSBN, SSN
    with
        if x isa CLASS and 2145 <= x.Displacement <= 6955 then x isa SSN
        if x isa CLASS and 7250 <= x.Displacement <= 30000 then x isa SSBN

SSBN isa CLASS with Type = "SSBN"
SSN isa CLASS with Type = "SSN"

object type SUBMARINE
    has key: Id      domain: CHAR[7]
    has:     Name    domain: SHIP_NAME
    has:     Class   domain: CLASS

SUBMARINE contains C0101, C0102, C0103, C0201, C0203, C0204,
    C0205, C0207, C0208, C0209, C0212, C0215, C1301

C0101 isa SUBMARINE with Class = "0101"
C0102 isa SUBMARINE with Class = "0102"
C0103 isa SUBMARINE with Class = "0103"
C0201 isa SUBMARINE with Class = "0201"
C0203 isa SUBMARINE with Class = "0203"
C0204 isa SUBMARINE with Class = "0204"
C0205 isa SUBMARINE with Class = "0205"
C0207 isa SUBMARINE with Class = "0207"
C0208 isa SUBMARINE with Class = "0208"
C0209 isa SUBMARINE with Class = "0209"
C0212 isa SUBMARINE with Class = "0212"
C0215 isa SUBMARINE with Class = "0215"
C1301 isa SUBMARINE with Class = "1301"

object type SONAR
    has key: Sonar       domain: SONAR_NAME
    has:     SonarType   domain: CHAR[8]

SONAR contains BQQ, BQS, TACTAS
    with
        if x isa SONAR and BQQ-2 <= x.Sonar <= BQQ-8 then x isa BQQ
        if x isa SONAR and BQS-04 <= x.Sonar <= BQS-15 then x isa BQS
        if x isa SONAR and x.Sonar = "TACTAS" then x isa TACTAS

BQQ isa SONAR with SonarType = "BQQ"
BQS isa SONAR with SonarType = "BQS"
TACTAS isa SONAR with SonarType = "TACTAS"

object type INSTALL
    has key: Ship    domain: SUBMARINE
    has:     Sonar   domain: SONAR
    with
        if x isa SUBMARINE and y isa SONAR and x.Class = "0203"
            then y isa BQQ
        if x isa SUBMARINE and y isa SONAR
            and "0205" <= x.Class <= "0207" then y isa BQQ
        if x isa SUBMARINE and y isa SONAR
            and "0208" <= x.Class <= "0215" then y isa BQS
        if x isa SUBMARINE and y isa SONAR and y.Sonar = "BQS-04"
            then x isa SSN
"""


def ship_ker_schema() -> KerSchema:
    """Parse a fresh copy of the ship KER schema."""
    return parse_ker(SHIP_SCHEMA_DDL, name="ships")
