"""Seeded random query workloads over a bound schema.

The paper demonstrates three hand-picked queries; to characterize the
system beyond them (benchmark E16) we generate random conjunctive
SELECTs whose conditions are drawn from the actual data distribution:

* pick a backed relation and one of its attributes;
* draw an interval condition (point, one-sided, or two-sided) whose
  bounds are sampled from the attribute's observed values -- so the
  conditions are neither vacuous nor unsatisfiable by construction;
* optionally join along a foreign key and condition the joined side.

The generator is a deterministic function of its seed.
"""

from __future__ import annotations

import random
from typing import NamedTuple

from repro.induction.candidates import foreign_key_map
from repro.ker.binding import SchemaBinding
from repro.rules.clause import AttributeRef


class GeneratedQuery(NamedTuple):
    """One workload entry."""

    sql: str
    condition_attribute: AttributeRef
    kind: str          #: "point" | "lower" | "upper" | "range"


def _conditionable_attributes(binding: SchemaBinding
                              ) -> list[AttributeRef]:
    out = []
    for object_type in binding.schema.object_types.values():
        if not binding.is_backed(object_type.name):
            continue
        relation = binding.database.relation(object_type.name)
        for column in relation.schema.columns:
            values = [value for value
                      in relation.column_values(column.name)
                      if value is not None]
            if len(set(values)) >= 2:
                out.append(AttributeRef(relation.name, column.name))
    return out


def _render_value(value) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return str(value)


def generate_workload(binding: SchemaBinding, n_queries: int = 50,
                      seed: int = 42,
                      join_probability: float = 0.5
                      ) -> list[GeneratedQuery]:
    """Generate *n_queries* conjunctive SELECTs."""
    rng = random.Random(seed)
    attributes = _conditionable_attributes(binding)
    if not attributes:
        raise ValueError("no conditionable attributes in the binding")
    fk = foreign_key_map(binding)
    reverse_fk: dict[str, list[tuple[AttributeRef, AttributeRef]]] = {}
    for source, target in fk.items():
        reverse_fk.setdefault(target.relation.lower(), []).append(
            (source, target))

    queries: list[GeneratedQuery] = []
    for _index in range(n_queries):
        attribute = rng.choice(attributes)
        relation = binding.database.relation(attribute.relation)
        values = sorted({
            value for value in relation.column_values(attribute.attribute)
            if value is not None})
        kind = rng.choice(["point", "lower", "upper", "range"])
        if kind == "point":
            condition = (f"{attribute.render()} = "
                         f"{_render_value(rng.choice(values))}")
        elif kind == "lower":
            condition = (f"{attribute.render()} >= "
                         f"{_render_value(rng.choice(values))}")
        elif kind == "upper":
            condition = (f"{attribute.render()} <= "
                         f"{_render_value(rng.choice(values))}")
        else:
            low, high = sorted(rng.sample(values, 2)) if len(
                values) >= 2 else (values[0], values[0])
            condition = (
                f"{attribute.render()} >= {_render_value(low)} AND "
                f"{attribute.render()} <= {_render_value(high)}")

        tables = [relation.name]
        join_conditions = []
        joinable = reverse_fk.get(relation.name.lower(), [])
        if joinable and rng.random() < join_probability:
            source, target = rng.choice(joinable)
            tables.append(source.relation)
            join_conditions.append(
                f"{source.render()} = {target.render()}")

        key_columns = relation.schema.key or (
            relation.schema.columns[0].name,)
        select_list = ", ".join(
            f"{relation.name}.{name}" for name in key_columns)
        where = " AND ".join(join_conditions + [condition])
        sql = (f"SELECT {select_list} FROM {', '.join(tables)} "
               f"WHERE {where}")
        queries.append(GeneratedQuery(sql, attribute, kind))
    return queries


class WorkloadStats(NamedTuple):
    """Aggregate answerability over a workload."""

    queries: int
    with_forward: int
    with_backward: int
    with_any: int
    unsatisfiable: int
    empty_extension: int

    def render(self) -> str:
        return "\n".join([
            f"queries:                {self.queries}",
            f"with forward answers:   {self.with_forward}",
            f"with backward answers:  {self.with_backward}",
            f"with any answer:        {self.with_any}",
            f"unsatisfiable:          {self.unsatisfiable}",
            f"empty extension:        {self.empty_extension}",
        ])


def run_workload(system, queries: list[GeneratedQuery]) -> WorkloadStats:
    """Ask every query; tally answerability."""
    with_forward = with_backward = with_any = 0
    unsatisfiable = empty = 0
    for query in queries:
        result = system.ask(query.sql)
        if result.inference.unsatisfiable:
            unsatisfiable += 1
        if result.inference.forward:
            with_forward += 1
        if result.inference.backward:
            with_backward += 1
        if result.intensional or result.inference.unsatisfiable:
            with_any += 1
        if not result.extensional:
            empty += 1
    return WorkloadStats(len(queries), with_forward, with_backward,
                         with_any, unsatisfiable, empty)
