"""Package version, kept in a standalone module so that no heavyweight
imports are needed to inspect it."""

__version__ = "1.0.0"
