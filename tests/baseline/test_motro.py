"""Unit tests for the integrity-constraint-only baseline."""

import pytest

from repro.baseline import ConstraintOnlyAnswerer, compare_systems
from tests.conftest import EXAMPLE_1, EXAMPLE_2, EXAMPLE_3

#: Queries exercising knowledge only induction discovers (hull-number
#: ranges are not declared anywhere in the schema constraints).
INDUCTION_ONLY_QUERIES = [
    ("SELECT Name FROM SUBMARINE "
     "WHERE Id >= 'SSBN623' AND Id <= 'SSBN635'"),
    ("SELECT SUBMARINE.Name FROM SUBMARINE, INSTALL "
     "WHERE SUBMARINE.Id = INSTALL.Ship "
     "AND SUBMARINE.Id >= 'SSN604' AND SUBMARINE.Id <= 'SSN671'"),
]


@pytest.fixture()
def baseline(ship_binding):
    return ConstraintOnlyAnswerer.from_binding(ship_binding)


class TestBaselineAlone:
    def test_uses_only_schema_rules(self, baseline):
        assert all(rule.source == "schema" for rule in baseline.rules)

    def test_answers_displacement_query(self, baseline):
        result = baseline.ask(EXAMPLE_1)
        assert "SSBN" in [d.rule.rhs_subtype
                          for d in result.inference.forward]

    def test_cannot_answer_hull_range_query(self, baseline):
        result = baseline.ask(INDUCTION_ONLY_QUERIES[0])
        assert not result.inference.forward
        assert not result.inference.backward


class TestComparison:
    def test_report_counts(self, ship_system, baseline):
        queries = [EXAMPLE_1, EXAMPLE_2, EXAMPLE_3,
                   *INDUCTION_ONLY_QUERIES]
        report = compare_systems(ship_system, baseline, queries)
        assert report.queries == 5
        assert report.induced_answered >= report.baseline_answered
        assert report.induced_only >= 1

    def test_paper_claim_on_induction_only_workload(self, ship_system,
                                                    baseline):
        """The conclusion's claim: induced rules answer queries
        integrity constraints cannot."""
        report = compare_systems(ship_system, baseline,
                                 INDUCTION_ONLY_QUERIES)
        assert report.induced_answered == 2
        assert report.baseline_answered == 0

    def test_render(self, ship_system, baseline):
        report = compare_systems(ship_system, baseline, [EXAMPLE_1])
        text = report.render()
        assert "queries:" in text
        assert "induced" in text
