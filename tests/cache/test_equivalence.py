"""Property-based cache correctness: under any interleaving of queries
and DML, a SELECT answered through the plan+result cache must return
the same bag of rows as the uncached legacy executor would compute on
the database's *current* state -- at every step, at every batch size.

If invalidation ever misses a dependency (or invents one), some
interleaving here serves a stale relation and the bag comparison fails.
"""

from hypothesis import given, settings, strategies as st

from repro.cache import query_cache
from repro.sql.executor import execute_select_legacy, execute_statement
from repro.sql.parser import parse_select
from repro.testbed import ship_database

#: SELECTs spanning single tables, joins, filters and projections, so
#: the dependency sets overlap but differ across pool entries.
QUERIES = [
    "SELECT * FROM SUBMARINE",
    "SELECT * FROM SONAR",
    "SELECT Class, Displacement FROM CLASS WHERE Displacement > 6000",
    "SELECT * FROM SUBMARINE WHERE SUBMARINE.Class = '0101'",
    ("SELECT SUBMARINE.Name, CLASS.Type FROM SUBMARINE, CLASS "
     "WHERE SUBMARINE.Class = CLASS.Class AND CLASS.Displacement > 2000"),
    ("SELECT SUBMARINE.Name, SONAR.SonarType "
     "FROM SUBMARINE, INSTALL, SONAR "
     "WHERE SUBMARINE.Id = INSTALL.Ship "
     "AND INSTALL.Sonar = SONAR.Sonar"),
]

#: DML templates; ``{i}`` is the op index, so repeated inserts create
#: distinct rows and repeated deletes eventually become no-ops -- both
#: legal, both must invalidate (or not) identically.
MUTATIONS = [
    "INSERT INTO SUBMARINE (Id, Name, Class) "
    "VALUES ('SSN9{i}', 'Phantom {i}', '0101')",
    "INSERT INTO SONAR (Sonar, SonarType) VALUES ('XX-{i}', 'XX')",
    "INSERT INTO CLASS (Class, ClassName, Type, Displacement) "
    "VALUES ('09{i}', 'Ghost {i}', 'SSN', 7000)",
    "INSERT INTO INSTALL (Ship, Sonar) VALUES ('SSN594', 'BQS-04')",
    "DELETE FROM INSTALL WHERE INSTALL.Ship = 'SSN637'",
    "DELETE FROM SUBMARINE WHERE SUBMARINE.Class = '0103'",
    "UPDATE CLASS SET Displacement = 9000 WHERE CLASS.Class = '0102'",
]

OPS = st.one_of(
    st.tuples(st.just("query"),
              st.integers(min_value=0, max_value=len(QUERIES) - 1),
              st.sampled_from([1, None])),
    st.tuples(st.just("mutate"),
              st.integers(min_value=0, max_value=len(MUTATIONS) - 1),
              st.none()),
)


@settings(max_examples=40, deadline=None)
@given(st.lists(OPS, min_size=1, max_size=12))
def test_cached_answers_track_every_interleaving(ops):
    database = ship_database()
    cache = query_cache(database)
    cache.enabled = True  # even on the REPRO_CACHE=off CI leg
    cache.floor_s = 0.0  # admit everything: maximum staleness exposure
    for index, (kind, choice, batch_size) in enumerate(ops):
        if kind == "mutate":
            execute_statement(database,
                              MUTATIONS[choice].format(i=index))
            continue
        statement = parse_select(QUERIES[choice])
        cached = cache.execute_select(statement, batch_size=batch_size)
        fresh = execute_select_legacy(database, statement)
        assert cached == fresh, (
            f"op {index}: cached answer diverged for {QUERIES[choice]!r} "
            f"at batch_size={batch_size}")


@settings(max_examples=15, deadline=None)
@given(st.lists(OPS, min_size=1, max_size=10))
def test_disabled_cache_is_a_pure_passthrough(ops):
    """The same interleavings with the cache off: results still match,
    and nothing is ever retained."""
    database = ship_database()
    cache = query_cache(database)
    cache.enabled = False
    for index, (kind, choice, batch_size) in enumerate(ops):
        if kind == "mutate":
            execute_statement(database,
                              MUTATIONS[choice].format(i=index))
            continue
        statement = parse_select(QUERIES[choice])
        cached = cache.execute_select(statement, batch_size=batch_size)
        assert cached == execute_select_legacy(database, statement)
    assert cache.entry_counts() == {"plan": 0, "result": 0, "ask": 0}
    assert cache.bytes_used == 0
