"""Property-based cache correctness: under any interleaving of queries
and DML, a SELECT answered through the plan+result cache must return
the same bag of rows as the uncached legacy executor would compute on
the database's *current* state -- at every step, at every batch size,
over every domain in the equivalence matrix (ship plus synthetic; see
``tests/domain_fixtures.py``).

If invalidation ever misses a dependency (or invents one), some
interleaving here serves a stale relation and the bag comparison fails.
"""

from hypothesis import given, settings, strategies as st

from repro.cache import query_cache
from repro.sql.executor import execute_select_legacy, execute_statement
from repro.sql.parser import parse_select
from tests.domain_fixtures import EQUIVALENCE_FIXTURES

FIXTURES = EQUIVALENCE_FIXTURES


@st.composite
def interleavings(draw, max_size=12):
    """Draw ``(fixture, ops)``: a domain plus a query/DML interleaving
    whose indices are bounded by that domain's pools."""
    fixture = draw(st.sampled_from(FIXTURES))
    op = st.one_of(
        st.tuples(st.just("query"),
                  st.integers(0, len(fixture.queries) - 1),
                  st.sampled_from([1, None])),
        st.tuples(st.just("mutate"),
                  st.integers(0, len(fixture.mutations) - 1),
                  st.none()),
    )
    ops = draw(st.lists(op, min_size=1, max_size=max_size))
    return fixture, ops


@settings(max_examples=40, deadline=None)
@given(interleavings())
def test_cached_answers_track_every_interleaving(case):
    fixture, ops = case
    database = fixture.fresh_database()
    cache = query_cache(database)
    cache.enabled = True  # even on the REPRO_CACHE=off CI leg
    cache.floor_s = 0.0  # admit everything: maximum staleness exposure
    for index, (kind, choice, batch_size) in enumerate(ops):
        if kind == "mutate":
            execute_statement(database,
                              fixture.mutations[choice].format(i=index))
            continue
        statement = parse_select(fixture.queries[choice])
        cached = cache.execute_select(statement, batch_size=batch_size)
        fresh = execute_select_legacy(database, statement)
        assert cached == fresh, (
            f"op {index} [{fixture.name}]: cached answer diverged for "
            f"{fixture.queries[choice]!r} at batch_size={batch_size}")


@settings(max_examples=15, deadline=None)
@given(interleavings(max_size=10))
def test_disabled_cache_is_a_pure_passthrough(case):
    """The same interleavings with the cache off: results still match,
    and nothing is ever retained."""
    fixture, ops = case
    database = fixture.fresh_database()
    cache = query_cache(database)
    cache.enabled = False
    for index, (kind, choice, batch_size) in enumerate(ops):
        if kind == "mutate":
            execute_statement(database,
                              fixture.mutations[choice].format(i=index))
            continue
        statement = parse_select(fixture.queries[choice])
        cached = cache.execute_select(statement, batch_size=batch_size)
        assert cached == execute_select_legacy(database, statement)
    assert cache.entry_counts() == {"plan": 0, "result": 0, "ask": 0}
    assert cache.bytes_used == 0
