"""Unit tests for the normalized SQL fingerprint."""

from repro.sql import normalize_sql


class TestNormalizeSql:
    def test_case_folds_keywords_and_identifiers(self):
        assert (normalize_sql("SELECT Name FROM SUBMARINE")
                == normalize_sql("select name from submarine"))

    def test_collapses_whitespace(self):
        assert (normalize_sql("SELECT  Name\n\tFROM   SUBMARINE")
                == normalize_sql("SELECT Name FROM SUBMARINE"))

    def test_strips_trailing_semicolon(self):
        assert (normalize_sql("SELECT Name FROM S;")
                == normalize_sql("SELECT Name FROM S"))
        assert (normalize_sql("SELECT Name FROM S ; ")
                == normalize_sql("SELECT Name FROM S"))

    def test_literals_preserved_verbatim(self):
        # Different literal case = different query = different key.
        a = normalize_sql("SELECT * FROM T WHERE Label = 'G01'")
        b = normalize_sql("SELECT * FROM T WHERE Label = 'g01'")
        assert a != b
        assert "'G01'" in a and "'g01'" in b

    def test_whitespace_inside_literals_preserved(self):
        fp = normalize_sql("SELECT * FROM T WHERE Name = 'A  B'")
        assert "'A  B'" in fp

    def test_doubled_quote_escapes(self):
        fp = normalize_sql("SELECT * FROM T WHERE Name = 'it''s  OK'")
        assert "'it''s  OK'" in fp

    def test_double_quoted_literals(self):
        fp = normalize_sql('SELECT * FROM T WHERE Type = "SSBN"')
        assert '"SSBN"' in fp

    def test_unterminated_literal_does_not_crash(self):
        assert normalize_sql("SELECT 'oops") == "select 'oops"
