"""The version-aware query cache: hits, exact invalidation, transaction
privacy, recovery replay, rule staleness, eviction, and the off switch.

Every test asserts through the cache's always-on internal counters (the
same numbers ``\\cache`` prints), so "invalidated exactly the dependent
entries" is a counted fact, not an inference from timing.
"""

import pytest

from repro import obs
from repro.cache import QueryCache, query_cache
from repro.cache.core import estimate_relation_bytes
from repro.induction import InductionConfig, InductiveLearningSubsystem
from repro.ker import SchemaBinding
from repro.query import IntensionalQueryProcessor
from repro.sql.executor import (
    execute_select, execute_select_legacy, execute_statement,
)
from repro.sql.parser import parse_select
from repro.storage import StorageEngine
from repro.testbed import ship_database, ship_ker_schema

SUB_SQL = "SELECT * FROM SUBMARINE WHERE SUBMARINE.Class = '0101'"
SONAR_SQL = "SELECT * FROM SONAR"
INSERT_SONAR = ("INSERT INTO SONAR (Sonar, SonarType) "
                "VALUES ('XX-1', 'XX')")
INSERT_SUB = ("INSERT INTO SUBMARINE (Id, Name, Class) "
              "VALUES ('SSN999', 'Phantom', '0101')")
ASK_SQL = ("SELECT SUBMARINE.Name FROM SUBMARINE, CLASS "
           "WHERE SUBMARINE.Class = CLASS.Class "
           "AND CLASS.Displacement > 8000")


def eager_cache(database) -> QueryCache:
    """The database's cache, force-enabled (these tests assert hit
    behaviour even on the CI leg that exports ``REPRO_CACHE=off``)
    and with the admission floor removed, so every admission is
    deterministic regardless of machine speed."""
    cache = query_cache(database)
    cache.enabled = True
    cache.floor_s = 0.0
    return cache


def run(database, sql):
    return execute_select(database, parse_select(sql), use_planner=True)


class TestPlanAndResultCache:
    def test_repeat_is_a_hit_and_shares_the_result(self):
        database = ship_database()
        cache = eager_cache(database)
        first = run(database, SUB_SQL)
        second = run(database, SUB_SQL)
        assert second is first, "hit must serve the cached relation"
        assert cache.counters["plan.hit"] >= 1
        assert cache.counters["result.hit"] == 1
        assert cache.counters["result.miss"] == 1

    def test_fingerprint_spelling_matters_but_plan_key_is_canonical(self):
        # execute_select keys on the *parsed* statement's canonical
        # rendering, so spelling differences in the raw text collapse.
        database = ship_database()
        cache = eager_cache(database)
        run(database, SUB_SQL)
        run(database, SUB_SQL.replace("SELECT", "select  "))
        assert cache.counters["result.hit"] == 1

    def test_dml_invalidates_and_the_rerun_sees_new_rows(self):
        database = ship_database()
        cache = eager_cache(database)
        before = run(database, SUB_SQL)
        execute_statement(database, INSERT_SUB)
        assert cache.counters.get("invalidate.dml", 0) >= 1
        after = run(database, SUB_SQL)
        assert len(after) == len(before) + 1
        assert after == execute_select_legacy(database,
                                              parse_select(SUB_SQL))

    def test_invalidation_is_exact(self):
        """A SONAR insert must kill the SONAR-dependent entry and ONLY
        that entry: the SUBMARINE query keeps hitting."""
        database = ship_database()
        cache = eager_cache(database)
        run(database, SUB_SQL)
        run(database, SONAR_SQL)
        execute_statement(database, INSERT_SONAR)
        assert cache.counters["invalidate.dml"] == 1
        hits_before = cache.counters.get("result.hit", 0)
        assert run(database, SUB_SQL) is not None
        assert cache.counters["result.hit"] == hits_before + 1
        misses_before = cache.counters["result.miss"]
        run(database, SONAR_SQL)
        assert cache.counters["result.miss"] == misses_before + 1

    def test_stale_plan_is_replanned_after_dependency_change(self):
        database = ship_database()
        cache = eager_cache(database)
        statement = parse_select(SUB_SQL)
        planned, status = cache.plan_for(statement)
        assert status == "miss"
        _, status = cache.plan_for(statement)
        assert status == "hit"
        execute_statement(database, INSERT_SUB)
        replanned, status = cache.plan_for(statement)
        assert status == "miss"
        assert replanned is not planned
        assert cache.counters.get("invalidate.stale", 0) >= 1

    def test_unrelated_mutation_revalidates_the_plan(self):
        # The stats-catalog idiom: a SONAR insert bumps the global
        # version, but the SUBMARINE plan's dependencies are unchanged
        # and must revalidate to a hit, not a replan.
        database = ship_database()
        cache = eager_cache(database)
        statement = parse_select(SUB_SQL)
        planned, _ = cache.plan_for(statement)
        execute_statement(database, INSERT_SONAR)
        again, status = cache.plan_for(statement)
        assert status == "hit"
        assert again is planned


class TestAskCache:
    def test_repeated_ask_hits_and_matches(self, ship_system):
        cache = eager_cache(ship_system.database)
        first = ship_system.ask(ASK_SQL)
        second = ship_system.ask(ASK_SQL)
        assert second is first
        assert cache.counters["ask.hit"] == 1
        # Spelling differences collapse onto one fingerprint.
        third = ship_system.ask("  " + ASK_SQL.lower().replace(
            "where", "  WHERE "))
        assert third is first
        assert cache.counters["ask.hit"] == 2

    def test_direction_flags_are_part_of_the_key(self, ship_system):
        cache = eager_cache(ship_system.database)
        ship_system.ask(ASK_SQL)
        ship_system.ask(ASK_SQL, forward=False)
        assert cache.counters["ask.miss"] == 2

    def test_dml_drops_the_dependent_answer(self, ship_system):
        cache = eager_cache(ship_system.database)
        before = ship_system.ask(ASK_SQL)
        execute_statement(ship_system.database, INSERT_SUB)
        after = ship_system.ask(ASK_SQL)
        assert after is not before
        assert len(after.extensional) == len(before.extensional) + 1
        assert cache.counters.get("invalidate.dml", 0) >= 1


class TestTransactions:
    @pytest.fixture()
    def durable(self, tmp_path):
        database = ship_database()
        engine = StorageEngine(database, str(tmp_path / "data"))
        yield database, engine
        engine.wal.close()

    def test_rollback_discards_private_entries(self, durable):
        database, engine = durable
        cache = eager_cache(database)
        engine.begin()
        run(database, SUB_SQL)
        assert cache.entry_counts()["result"] == 1
        engine.rollback()
        assert cache.counters["invalidate.rollback"] == 1
        assert cache.entry_counts()["result"] == 0
        misses = cache.counters["result.miss"]
        run(database, SUB_SQL)
        assert cache.counters["result.miss"] == misses + 1

    def test_commit_publishes_private_entries(self, durable):
        database, engine = durable
        cache = eager_cache(database)
        engine.begin()
        first = run(database, SUB_SQL)
        engine.commit()
        assert run(database, SUB_SQL) is first
        assert cache.counters["result.hit"] == 1
        assert cache.counters.get("invalidate.rollback", 0) == 0

    def test_rolled_back_mutation_restores_the_old_answer(self, durable):
        """An entry cached *before* the transaction is dropped by the
        in-transaction DML; the re-execution inside the transaction
        sees the new row; the rollback undo (a mutation like any other)
        drops that entry in turn, so the post-rollback run returns the
        original rows again."""
        database, engine = durable
        cache = eager_cache(database)
        before = run(database, SUB_SQL)
        engine.begin()
        execute_statement(database, INSERT_SUB)
        inside = run(database, SUB_SQL)
        assert len(inside) == len(before) + 1
        engine.rollback()
        after = run(database, SUB_SQL)
        assert after == before
        assert after == execute_select_legacy(database,
                                              parse_select(SUB_SQL))
        assert cache.counters["invalidate.dml"] >= 2


class TestOwnerScoping:
    """Session-tagged private entries (the server sets
    ``current_owner`` around every statement it executes)."""

    @pytest.fixture()
    def durable(self, tmp_path):
        database = ship_database()
        engine = StorageEngine(database, str(tmp_path / "data"))
        yield database, engine
        engine.wal.close()

    def test_private_entry_invisible_to_other_owner(self, durable):
        database, engine = durable
        cache = eager_cache(database)
        engine.begin()
        cache.current_owner = "s1"
        first = run(database, SUB_SQL)
        # Another session probing the same statement mid-transaction
        # must miss -- and the miss must not evict the owner's entry.
        cache.current_owner = "s2"
        misses = cache.counters["result.miss"]
        assert run(database, SUB_SQL) is not first
        assert cache.counters["result.miss"] == misses + 1
        cache.current_owner = "s1"
        assert run(database, SUB_SQL) is first
        engine.rollback()
        cache.current_owner = None

    def test_commit_publishes_to_every_owner(self, durable):
        database, engine = durable
        cache = eager_cache(database)
        engine.begin()
        cache.current_owner = "s1"
        first = run(database, SUB_SQL)
        engine.commit()
        cache.current_owner = "s2"
        assert run(database, SUB_SQL) is first
        cache.current_owner = None

    def test_anonymous_transaction_stays_session_local(self, durable):
        """In-process callers (no server) have ``current_owner=None``;
        private entries still behave exactly as before the owner tag
        existed."""
        database, engine = durable
        cache = eager_cache(database)
        engine.begin()
        first = run(database, SUB_SQL)
        assert run(database, SUB_SQL) is first
        engine.rollback()
        assert cache.entry_counts()["result"] == 0


class TestRecoveryReplay:
    def test_replay_invalidates_like_live_dml(self, tmp_path):
        database = ship_database()
        engine = StorageEngine(database, str(tmp_path / "data"))
        engine.checkpoint()
        engine.wal.close()

        standby, _ = StorageEngine.recover(str(tmp_path / "data"))
        cache = eager_cache(standby.database)
        before = run(standby.database, SUB_SQL)
        assert cache.entry_counts()["result"] == 1

        primary, _ = StorageEngine.recover(str(tmp_path / "data"))
        execute_statement(primary.database, INSERT_SUB)
        primary.wal.close()

        report = standby.replay_tail()
        assert report.replayed_records >= 1
        assert cache.counters["invalidate.dml"] >= 1
        after = run(standby.database, SUB_SQL)
        assert len(after) == len(before) + 1
        assert any(row[0] == "SSN999" for row in after)
        standby.wal.close()


class TestRuleBase:
    @pytest.fixture()
    def durable_system(self, tmp_path):
        database = ship_database()
        engine = StorageEngine(database, str(tmp_path / "data"))
        binding = SchemaBinding(ship_ker_schema(), database)
        ils = InductiveLearningSubsystem(
            binding, InductionConfig(n_c=3),
            relation_order=["SUBMARINE", "CLASS", "SONAR", "INSTALL"])
        rules = ils.induce_and_store()
        system = IntensionalQueryProcessor(database, rules,
                                           binding=binding)
        yield system
        engine.wal.close()

    def test_stale_rule_base_suppresses_the_cached_answer(
            self, durable_system):
        system = durable_system
        cache = eager_cache(system.database)
        fresh = system.ask(ASK_SQL)
        assert fresh.intensional and not fresh.warnings
        # Staling DML on a relation the query does NOT touch: the
        # version vector alone would still match, so only the degraded
        # flag in the entry can (and must) block the stale answer.
        execute_statement(system.database, INSERT_SONAR)
        assert system.storage.rules_stale
        degraded = system.ask(ASK_SQL)
        assert degraded is not fresh
        assert degraded.warnings and degraded.intensional == []
        assert cache.counters["invalidate.stale_rules"] >= 1

    def test_reinduction_flushes_and_restores(self, durable_system):
        system = durable_system
        cache = eager_cache(system.database)
        fresh = system.ask(ASK_SQL)
        execute_statement(system.database, INSERT_SONAR)
        system.ask(ASK_SQL)  # degraded, cached under the stale flag
        system.refresh_rules()
        assert cache.counters.get("invalidate.reinduction", 0) >= 1
        restored = system.ask(ASK_SQL)
        assert not restored.warnings
        assert (restored.inference.forward_subtypes()
                == fresh.inference.forward_subtypes())
        # And the restored answer is served from cache on repeat.
        assert system.ask(ASK_SQL) is restored


class TestEvictionAndBudget:
    def test_lru_eviction_respects_the_byte_budget(self):
        database = ship_database()
        cache = eager_cache(database)
        run(database, SUB_SQL)
        # Room for the SONAR result only if something else goes: one
        # byte short of fitting both forces exactly the LRU eviction.
        incoming = estimate_relation_bytes(
            execute_select_legacy(database, parse_select(SONAR_SQL)))
        cache.byte_budget = cache.bytes_used + incoming - 1
        run(database, SONAR_SQL)
        assert cache.counters["evictions"] >= 1
        assert cache.bytes_used <= cache.byte_budget
        # The evicted (least recently used) entry was SUB_SQL's.
        misses = cache.counters["result.miss"]
        run(database, SUB_SQL)
        assert cache.counters["result.miss"] == misses + 1

    def test_oversized_result_is_never_admitted(self):
        database = ship_database()
        cache = eager_cache(database)
        cache.byte_budget = 1
        run(database, SUB_SQL)
        assert cache.entry_counts()["result"] == 0
        assert cache.counters["admit.skipped"] >= 1

    def test_admission_floor_keeps_cheap_results_out(self):
        database = ship_database()
        cache = eager_cache(database)
        cache.floor_s = 3600.0  # nothing is ever that slow
        run(database, SUB_SQL)
        assert cache.entry_counts()["result"] == 0
        assert cache.counters["admit.skipped"] >= 1

    def test_clear_drops_everything(self):
        database = ship_database()
        cache = eager_cache(database)
        run(database, SUB_SQL)
        run(database, SONAR_SQL)
        dropped = cache.clear()
        assert dropped >= 4  # two plans + two results
        assert cache.bytes_used == 0
        assert cache.entry_counts() == {"plan": 0, "result": 0, "ask": 0}


class TestDisabling:
    def test_repro_cache_off_bypasses_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        database = ship_database()
        cache = query_cache(database)
        assert not cache.enabled
        first = run(database, SUB_SQL)
        second = run(database, SUB_SQL)
        assert second is not first
        assert second == first
        assert cache.counters["result.bypass"] == 2
        assert "result.hit" not in cache.counters

    def test_runtime_toggle(self):
        database = ship_database()
        cache = eager_cache(database)
        run(database, SUB_SQL)
        cache.enabled = False
        run(database, SUB_SQL)
        assert cache.counters["result.bypass"] == 1
        cache.enabled = True
        run(database, SUB_SQL)
        assert cache.counters["result.hit"] == 1

    def test_off_disables_the_inference_memo(self, monkeypatch,
                                             ship_system):
        monkeypatch.setenv("REPRO_CACHE", "0")
        query_cache(ship_system.database).enabled = False
        for _ in range(2):
            ship_system.ask(ASK_SQL)
        assert ship_system.engine.memo_hits == 0
        assert ship_system.engine.memo_misses == 0


class TestInferenceMemo:
    def test_memo_hits_on_repeat_and_respects_rule_version(
            self, ship_system, monkeypatch):
        from repro.query.conditions import extract_conditions
        from repro.rules.rule import Rule

        # The memo gates on the env default per call; neutralize the
        # CI leg that exports REPRO_CACHE=off.
        monkeypatch.delenv("REPRO_CACHE", raising=False)

        # Bypass the ask cache so infer() itself runs twice.
        conditions = extract_conditions(ship_system.database,
                                        parse_select(ASK_SQL))
        engine = ship_system.engine
        first = engine.infer(conditions.clauses,
                             equivalences=conditions.equivalences)
        again = engine.infer(conditions.clauses,
                             equivalences=conditions.equivalences)
        assert again is first
        assert engine.memo_hits == 1

        # Mutating the rule base changes its version: old memo entries
        # can never satisfy the new key.
        template = next(iter(ship_system.rules))
        ship_system.rules.add(Rule(template.lhs, template.rhs,
                                   support=template.support))
        recomputed = engine.infer(conditions.clauses,
                                  equivalences=conditions.equivalences)
        assert recomputed is not first


class TestObsMetrics:
    def test_cache_counters_surface_in_metrics(self):
        obs.reset()
        obs.enable()
        try:
            database = ship_database()
            eager_cache(database)
            run(database, SUB_SQL)
            run(database, SUB_SQL)
            execute_statement(database, INSERT_SUB)
            snapshot = obs.metrics().snapshot()
            assert snapshot[
                'query_cache_requests_total{level="result",'
                'result="hit"}'] == 1
            assert snapshot[
                'query_cache_invalidations_total{level="result",'
                'reason="dml"}'] == 1
            assert "query_cache_bytes" in snapshot
        finally:
            obs.disable()
            obs.reset()
