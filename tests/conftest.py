"""Shared fixtures: the ship test bed, its schema binding, and the
induced knowledge base (session-scoped where the object is read-only)."""

from __future__ import annotations

import pytest

from repro.induction import InductionConfig, InductiveLearningSubsystem
from repro.ker import SchemaBinding
from repro.query import IntensionalQueryProcessor
from repro.testbed import ship_database, ship_ker_schema

#: The paper's relation ordering (gives R1..R18 numbering used in tests).
SHIP_ORDER = ["SUBMARINE", "CLASS", "SONAR", "INSTALL"]

#: The three worked example queries of Section 6.
EXAMPLE_1 = (
    "SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE "
    "FROM SUBMARINE, CLASS "
    "WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000")
EXAMPLE_2 = (
    "SELECT SUBMARINE.NAME, SUBMARINE.CLASS FROM SUBMARINE, CLASS "
    'WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = "SSBN"')
EXAMPLE_3 = (
    "SELECT SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE "
    "FROM SUBMARINE, CLASS, INSTALL "
    "WHERE SUBMARINE.CLASS = CLASS.CLASS AND SUBMARINE.ID = INSTALL.SHIP "
    'AND INSTALL.SONAR = "BQS-04"')


@pytest.fixture()
def ship_db():
    """A fresh, mutable copy of the Appendix C database."""
    return ship_database()


@pytest.fixture()
def ship_schema():
    return ship_ker_schema()


@pytest.fixture()
def ship_binding(ship_db, ship_schema):
    return SchemaBinding(ship_schema, ship_db)


@pytest.fixture()
def ship_rules(ship_binding):
    ils = InductiveLearningSubsystem(
        ship_binding, InductionConfig(n_c=3), relation_order=SHIP_ORDER)
    return ils.induce()


@pytest.fixture()
def ship_system(ship_db, ship_schema):
    return IntensionalQueryProcessor.from_database(
        ship_db, ker_schema=ship_schema, relation_order=SHIP_ORDER)
