"""Unit tests for the frame system."""

import pytest

from repro.dictionary import FrameSystem
from repro.errors import KerError
from repro.relational.datatypes import INTEGER, char
from repro.rules.clause import Interval


@pytest.fixture()
def frames(ship_schema):
    return FrameSystem.from_ker(ship_schema)


class TestConstruction:
    def test_every_type_gets_a_frame(self, frames, ship_schema):
        assert len(frames) == len(ship_schema.object_types)

    def test_parents_linked(self, frames):
        assert frames.frame("SSBN").parent is frames.frame("CLASS")
        assert frames.frame("SUBMARINE").parent is None

    def test_unknown_frame(self, frames):
        with pytest.raises(KerError, match="no frame"):
            frames.frame("GHOST")

    def test_contains(self, frames):
        assert "class" in frames
        assert "ghost" not in frames


class TestSlots:
    def test_own_slots(self, frames):
        names = [slot.name for slot in frames.frame("CLASS").own_slots()]
        assert names == ["Class", "ClassName", "Type", "Displacement"]

    def test_key_facet(self, frames):
        assert frames.frame("CLASS").slot("Class").is_key
        assert not frames.frame("CLASS").slot("Type").is_key

    def test_datatype_resolved(self, frames):
        assert frames.frame("CLASS").slot("Displacement").datatype == (
            INTEGER)
        assert frames.frame("SUBMARINE").slot("Name").datatype == char(20)

    def test_value_range_from_with_constraint(self, frames):
        slot = frames.frame("CLASS").slot("Displacement")
        assert slot.value_range == Interval.closed(2000, 30000)

    def test_inheritance(self, frames):
        ssbn = frames.frame("SSBN")
        assert ssbn.slot("Displacement") is not None
        assert [slot.name for slot in ssbn.slots()] == [
            "Class", "ClassName", "Type", "Displacement"]

    def test_missing_slot(self, frames):
        assert frames.frame("CLASS").slot("Bogus") is None


class TestHierarchyQueries:
    def test_isa(self, frames):
        assert frames.frame("SSBN").isa("CLASS")
        assert frames.frame("SSBN").isa("SSBN")
        assert not frames.frame("CLASS").isa("SSBN")

    def test_ancestors(self, frames):
        assert [frame.name for frame
                in frames.frame("C0101").ancestors()] == ["SUBMARINE"]

    def test_classify_value(self, frames):
        assert frames.classify_value("SONAR", "SonarType", "BQS") == "BQS"
        assert frames.classify_value("CLASS", "Type", "SSBN") == "SSBN"
        assert frames.classify_value("CLASS", "Type", "XXXX") is None

    def test_membership_recorded(self, frames):
        (clause,) = frames.frame("BQS").membership
        assert clause.render() == "SONAR.SonarType = BQS"
