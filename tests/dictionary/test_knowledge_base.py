"""Unit tests for the intelligent data dictionary."""

from repro.dictionary import IntelligentDataDictionary
from repro.relational.textio import dumps_database, loads_database


class TestBuild:
    def test_build_with_schema_rules(self, ship_binding, ship_rules):
        dictionary = IntelligentDataDictionary.build(
            ship_binding, ship_rules, include_schema_rules=True)
        assert len(dictionary.rules) == 18 + 11

    def test_build_without_schema_rules(self, ship_binding, ship_rules):
        dictionary = IntelligentDataDictionary.build(
            ship_binding, ship_rules, include_schema_rules=False)
        assert len(dictionary.rules) == 18


class TestRelocation:
    def test_store_and_load(self, ship_binding, ship_rules, ship_db,
                            ship_schema):
        dictionary = IntelligentDataDictionary.build(
            ship_binding, ship_rules, include_schema_rules=False)
        assert not IntelligentDataDictionary.has_knowledge(ship_db)
        dictionary.store_into(ship_db)
        assert IntelligentDataDictionary.has_knowledge(ship_db)
        loaded = IntelligentDataDictionary.load_from(ship_db, ship_schema)
        assert len(loaded.rules) == len(dictionary.rules)

    def test_full_relocation_pipeline(self, ship_binding, ship_rules,
                                      ship_db, ship_schema):
        """Database + rules dumped to text, reloaded elsewhere, and the
        dictionary rebuilt -- the Section 5.2.2 scenario."""
        dictionary = IntelligentDataDictionary.build(
            ship_binding, ship_rules, include_schema_rules=False)
        dictionary.store_into(ship_db)
        remote = loads_database(dumps_database(ship_db))
        rebuilt = IntelligentDataDictionary.load_from(remote, ship_schema)
        assert rebuilt.rules.render() == dictionary.rules.render()


class TestRendering:
    def test_render_includes_frames_and_rules(self, ship_binding,
                                              ship_rules):
        dictionary = IntelligentDataDictionary.build(
            ship_binding, ship_rules)
        text = dictionary.render()
        assert "frame SSBN isa CLASS" in text
        assert "R1:" in text
        assert "(key)" in text
