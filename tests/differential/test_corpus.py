"""Pinned counterexample corpus: every case in ``corpus/`` was once a
real cross-engine divergence, got minimized, and the underlying bug
fixed -- replaying it must stay divergence-free forever.
"""

from __future__ import annotations

import glob
import json
import os

import pytest

from repro.synth import load_case, replay_case

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CASES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def _case_id(path):
    return os.path.splitext(os.path.basename(path))[0]


class TestCorpus:
    def test_corpus_not_empty(self):
        assert CASES, "the counterexample corpus must hold >= 1 case"

    @pytest.mark.parametrize("path", CASES, ids=_case_id)
    def test_case_well_formed(self, path):
        payload = load_case(path)
        for field in ("domain", "seed", "configs", "statements", "note"):
            assert field in payload, f"{path} missing {field!r}"
        assert len(payload["configs"]) >= 2
        assert payload["statements"]
        assert payload["note"], "a case must explain the original bug"

    @pytest.mark.parametrize("path", CASES, ids=_case_id)
    def test_case_replays_clean(self, path):
        report = replay_case(load_case(path))
        assert report.ok, "\n" + report.render()


class TestStaleRulesPin:
    """The founding corpus entry: the rule-base freshness guard.

    Before the guard, INSERTing a CLASS row that violates an induced
    Displacement->Type interval rule left the planner free to
    short-circuit a matching SELECT to empty while the legacy executor
    returned the new row.  The case must diverge again the moment the
    guard is bypassed -- proving the pin is load-bearing, not vacuous.
    """

    PATH = os.path.join(CORPUS_DIR, "stale_rules_class_insert.json")

    def test_pin_exists(self):
        assert os.path.exists(self.PATH)
        payload = json.load(open(self.PATH))
        assert payload["configs"] == ["legacy", "planner-rules"]

    def test_diverges_without_freshness_guard(self, monkeypatch):
        from repro.rules.ruleset import RuleSet
        monkeypatch.setattr(RuleSet, "fresh_for",
                            lambda self, relation: True)
        report = replay_case(load_case(self.PATH))
        assert not report.ok, (
            "corpus case no longer reproduces with the guard disabled; "
            "the pin has gone vacuous")
