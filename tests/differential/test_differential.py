"""Cross-engine differential tests over the synthetic domains.

Each cell replays one generated program through every engine
configuration in the matrix; any outcome or final-state disagreement
is a real engine bug (the kind that produced the pinned corpus cases).
"""

from __future__ import annotations

import pytest

from repro.synth import (
    CONFIGS, DEFAULT_CONFIGS, build_instance, check_conjunct_commutativity,
    check_insert_delete_roundtrip, check_intensional_consistency,
    generate_program, run_differential,
)

#: domain x seed cells; every domain appears, ontology carries the
#: >= 4-level isa hierarchy.
CELLS = [
    ("hospital", 0), ("hospital", 1),
    ("logistics", 0), ("logistics", 2),
    ("ontology", 0), ("ontology", 1),
    ("ship", 0),
]

#: direct-path configs (fast); the wire path gets its own smaller cell.
DIRECT_CONFIGS = ("legacy", "planner", "planner-rules", "interpreted",
                  "batch-1", "batch-7", "unbounded", "cached")


class TestMatrix:
    @pytest.mark.parametrize("domain,seed", CELLS)
    def test_direct_configs_agree(self, domain, seed):
        report = run_differential(domain, seed, n_statements=25,
                                  configs=DIRECT_CONFIGS)
        assert report.ok, "\n" + report.render()

    @pytest.mark.parametrize("domain,seed",
                             [("hospital", 0), ("ontology", 0)])
    def test_server_wire_path_agrees(self, domain, seed):
        report = run_differential(domain, seed, n_statements=15,
                                  configs=("legacy", "server"))
        assert report.ok, "\n" + report.render()

    @pytest.mark.parametrize("domain", ["hospital", "logistics"])
    def test_adversarial_distributions_agree(self, domain):
        """Band-edge mass and label noise stress induced-rule edges."""
        report = run_differential(domain, 5, n_statements=20,
                                  adversarial=True,
                                  configs=("legacy", "planner-rules",
                                           "planner-reinduce", "cached"))
        assert report.ok, "\n" + report.render()

    def test_matrix_breadth(self):
        """ISSUE floor: >= 5 engine configurations, >= 3 domains."""
        assert len(CONFIGS) >= 5
        assert len(DEFAULT_CONFIGS) >= 5
        assert len({domain for domain, _ in CELLS}) >= 3


class TestMetamorphic:
    @pytest.mark.parametrize("domain,seed", [("hospital", 0),
                                             ("ontology", 0),
                                             ("ship", 0)])
    def test_intensional_superset_consistency(self, domain, seed):
        """Every forward intensional answer must hold extensionally
        for every ask-shaped statement of the generated program."""
        instance = build_instance(domain, seed=seed)
        asks = [statement
                for statement in generate_program(instance, 40, seed=seed)
                if statement.kind == "ask"]
        assert asks, "workload generated no ask statements"
        for statement in asks:
            violations = check_intensional_consistency(
                domain, seed, statement.sql)
            assert not violations, "\n".join(violations)

    @pytest.mark.parametrize("domain", ["hospital", "logistics",
                                        "ontology"])
    def test_conjunct_commutativity(self, domain):
        instance = build_instance(domain, seed=0)
        selects = [statement
                   for statement in generate_program(instance, 40, seed=1)
                   if statement.kind in ("select", "ask")
                   and " AND " in statement.sql]
        assert selects
        for statement in selects[:6]:
            assert check_conjunct_commutativity(domain, 0, statement.sql), \
                statement.sql

    @pytest.mark.parametrize("domain", ["hospital", "logistics",
                                        "ontology", "ship"])
    def test_insert_delete_roundtrip(self, domain):
        assert check_insert_delete_roundtrip(domain, 0)


class TestHierarchyDepth:
    def test_ontology_isa_depth(self):
        """The ontology domain carries the >= 4-level isa chain the
        deep-inference paths need."""
        instance = build_instance("ontology", seed=0)
        chain = instance.schema.ancestor_names("SPORT")
        assert chain == ["CAR", "VEHICLE", "MOBILE", "ASSET"]
