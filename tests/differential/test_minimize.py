"""The ddmin statement-list minimizer."""

from __future__ import annotations

from repro.synth import Statement, minimize
from repro.synth.differential import _split_conjuncts


def _statements(n):
    return [Statement("select", f"SELECT * FROM T{i}") for i in range(n)]


class TestDdmin:
    def test_single_culprit(self):
        """A fault triggered by one statement minimizes to exactly it."""
        statements = _statements(16)
        culprit = statements[11]

        def predicate(subset):
            return culprit in subset

        core = minimize("hospital", 0, statements,
                        configs=("legacy",), predicate=predicate)
        assert core == [culprit]

    def test_interacting_pair(self):
        """A fault needing two statements keeps both and only both."""
        statements = _statements(20)
        first, second = statements[3], statements[17]

        def predicate(subset):
            return first in subset and second in subset

        core = minimize("hospital", 0, statements,
                        configs=("legacy",), predicate=predicate)
        assert core == [first, second]

    def test_order_preserved(self):
        statements = _statements(12)
        needed = {statements[2], statements[5], statements[9]}

        def predicate(subset):
            return needed <= set(subset)

        core = minimize("hospital", 0, statements,
                        configs=("legacy",), predicate=predicate)
        assert core == [statements[2], statements[5], statements[9]]

    def test_non_diverging_program_returned_whole(self):
        statements = _statements(5)
        core = minimize("hospital", 0, statements,
                        configs=("legacy",),
                        predicate=lambda subset: False)
        assert core == statements

    def test_real_divergence_minimizes(self):
        """An injected engine fault (a predicate that flags any DELETE)
        drives the real ddmin loop down to one statement."""
        statements = [
            Statement("select", "SELECT * FROM A"),
            Statement("dml", "INSERT INTO A (X) VALUES (1)"),
            Statement("dml", "DELETE FROM A WHERE A.X = 1"),
            Statement("select", "SELECT * FROM B"),
        ]

        def predicate(subset):
            return any(s.sql.startswith("DELETE") for s in subset)

        core = minimize("hospital", 0, statements,
                        configs=("legacy",), predicate=predicate)
        assert core == [statements[2]]


class TestSplitConjuncts:
    def test_plain(self):
        head, conjuncts, tail = _split_conjuncts(
            "SELECT * FROM T WHERE T.A = 1 AND T.B >= 2")
        assert head == "SELECT * FROM T"
        assert conjuncts == ["T.A = 1", "T.B >= 2"]
        assert tail == ""

    def test_tail_preserved(self):
        head, conjuncts, tail = _split_conjuncts(
            "SELECT T.A FROM T WHERE T.A = 1 AND T.B = 2 ORDER BY T.A")
        assert conjuncts == ["T.A = 1", "T.B = 2"]
        assert tail == " ORDER BY T.A"

    def test_no_where(self):
        head, conjuncts, tail = _split_conjuncts("SELECT * FROM T")
        assert conjuncts == []
