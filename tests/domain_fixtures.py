"""Domain fixtures for the property-based equivalence suites.

The planner- and cache-equivalence properties are universal ("any
engine path returns the legacy bag of rows"), so they should hold over
*any* domain, not just the paper's ship test bed.  This module packages
a domain as the inputs those suites need -- FROM scenarios with their
natural join conditions, per-column literal pools (in-domain, boundary
and out-of-domain values), a query/mutation pool for cache
interleavings -- and derives them generically from a
:class:`repro.synth.domains.SynthInstance`, so new synthetic domains
join the matrix by being added to one list.
"""

from __future__ import annotations

from typing import Callable, NamedTuple

from repro.induction import InductionConfig, InductiveLearningSubsystem
from repro.induction.candidates import foreign_key_map
from repro.ker import SchemaBinding
from repro.synth import build_instance
from repro.testbed import ship_database, ship_ker_schema


class DomainFixture(NamedTuple):
    """Everything the equivalence properties need from one domain."""

    name: str
    database: object                    #: shared read-only instance
    rules: object                       #: rule base induced over it
    scenarios: list                     #: (tables, join conjuncts)
    columns: dict                       #: table -> [(column, literals)]
    agg_column: str                     #: column for COUNT(<col>)
    agg_tables: tuple                   #: tables carrying agg_column
    queries: list                       #: cache-interleaving SELECTs
    mutations: list                     #: DML templates with ``{i}``
    fresh_database: Callable            #: new mutable copy per example


def _quote(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


def derive_column_pools(database, table: str) -> list:
    """Literal pools per column: low/median/high observed values plus
    an out-of-domain probe (and off-by-one boundaries for integers)."""
    relation = database.relation(table)
    pools = []
    for column in relation.schema.columns:
        observed = sorted({value
                           for value in relation.column_values(column.name)
                           if value is not None})
        if not observed:
            continue
        if isinstance(observed[0], int):
            picks = sorted({observed[0], observed[len(observed) // 2],
                            observed[-1], observed[0] - 1,
                            observed[-1] + 1, 999999})
            pool = [str(value) for value in picks]
        else:
            picks = list(dict.fromkeys(
                [observed[0], observed[len(observed) // 2],
                 observed[-1], "zzz-none"]))
            pool = [_quote(value) for value in picks]
        pools.append((column.name, pool))
    return pools


def derive_scenarios(instance) -> list:
    """Single-table scenarios for every relation, one join scenario per
    foreign key, and one cartesian product."""
    tables = [name for name in instance.domain.relation_order]
    scenarios = [([table], []) for table in tables]
    for source, target in sorted(
            foreign_key_map(instance.binding).items(),
            key=lambda item: (item[0].relation, item[0].attribute)):
        scenarios.append((
            [source.relation, target.relation],
            [f"{source.relation}.{source.attribute} = "
             f"{target.relation}.{target.attribute}"]))
    if len(tables) >= 2:
        scenarios.append(([tables[0], tables[1]], []))  # cartesian
    return scenarios


def ship_fixture() -> DomainFixture:
    database = ship_database()
    rules = InductiveLearningSubsystem(
        SchemaBinding(ship_ker_schema(), database), InductionConfig(n_c=3),
        relation_order=["SUBMARINE", "CLASS", "SONAR", "INSTALL"]).induce()
    scenarios = [
        (["SUBMARINE"], []),
        (["CLASS"], []),
        (["SONAR"], []),
        (["SUBMARINE", "CLASS"], ["SUBMARINE.Class = CLASS.Class"]),
        (["SUBMARINE", "INSTALL"], ["SUBMARINE.Id = INSTALL.Ship"]),
        (["INSTALL", "SONAR"], ["INSTALL.Sonar = SONAR.Sonar"]),
        (["SUBMARINE", "INSTALL", "SONAR"],
         ["SUBMARINE.Id = INSTALL.Ship", "INSTALL.Sonar = SONAR.Sonar"]),
        (["SUBMARINE", "CLASS", "INSTALL"],
         ["SUBMARINE.Class = CLASS.Class", "SUBMARINE.Id = INSTALL.Ship"]),
        (["SUBMARINE", "TYPE"], []),  # cartesian product
    ]
    columns = {
        "SUBMARINE": [
            ("Id", ["'SSBN623'", "'SSN648'", "'SSN700'", "'XXX'"]),
            ("Class", ["'0101'", "'0103'", "'0204'", "'9999'"]),
        ],
        "CLASS": [
            ("Class", ["'0101'", "'0103'", "'0215'", "'9999'"]),
            ("Type", ["'SSN'", "'SSBN'", "'ZZZ'"]),
            ("Displacement",
             ["0", "2145", "6955", "8000", "30000", "99999"]),
        ],
        "SONAR": [
            ("Sonar", ["'BQQ-2'", "'BQS-04'", "'NONE'"]),
            ("SonarType", ["'BQQ'", "'BQS'", "'ZZZ'"]),
        ],
        "INSTALL": [
            ("Ship", ["'SSBN623'", "'SSN648'", "'XXX'"]),
            ("Sonar", ["'BQQ-2'", "'BQS-04'", "'NONE'"]),
        ],
        "TYPE": [
            ("Type", ["'SSN'", "'SSBN'", "'ZZZ'"]),
        ],
    }
    queries = [
        "SELECT * FROM SUBMARINE",
        "SELECT * FROM SONAR",
        "SELECT Class, Displacement FROM CLASS WHERE Displacement > 6000",
        "SELECT * FROM SUBMARINE WHERE SUBMARINE.Class = '0101'",
        ("SELECT SUBMARINE.Name, CLASS.Type FROM SUBMARINE, CLASS "
         "WHERE SUBMARINE.Class = CLASS.Class "
         "AND CLASS.Displacement > 2000"),
        ("SELECT SUBMARINE.Name, SONAR.SonarType "
         "FROM SUBMARINE, INSTALL, SONAR "
         "WHERE SUBMARINE.Id = INSTALL.Ship "
         "AND INSTALL.Sonar = SONAR.Sonar"),
    ]
    mutations = [
        "INSERT INTO SUBMARINE (Id, Name, Class) "
        "VALUES ('SSN9{i}', 'Phantom {i}', '0101')",
        "INSERT INTO SONAR (Sonar, SonarType) VALUES ('XX-{i}', 'XX')",
        "INSERT INTO CLASS (Class, ClassName, Type, Displacement) "
        "VALUES ('09{i}', 'Ghost {i}', 'SSN', 7000)",
        "INSERT INTO INSTALL (Ship, Sonar) VALUES ('SSN594', 'BQS-04')",
        "DELETE FROM INSTALL WHERE INSTALL.Ship = 'SSN637'",
        "DELETE FROM SUBMARINE WHERE SUBMARINE.Class = '0103'",
        "UPDATE CLASS SET Displacement = 9000 WHERE CLASS.Class = '0102'",
    ]
    return DomainFixture(
        name="ship", database=database, rules=rules, scenarios=scenarios,
        columns=columns, agg_column="Type", agg_tables=("CLASS", "TYPE"),
        queries=queries, mutations=mutations,
        fresh_database=ship_database)


def synth_fixture(domain: str, seed: int = 0, *,
                  agg_column: str, agg_tables: tuple,
                  queries: list, mutations: list) -> DomainFixture:
    instance = build_instance(domain, seed=seed)
    scenarios = derive_scenarios(instance)
    columns = {table: derive_column_pools(instance.database, table)
               for table in instance.domain.relation_order}

    def fresh_database():
        return build_instance(domain, seed=seed, induce=False).database

    return DomainFixture(
        name=domain, database=instance.database, rules=instance.rules,
        scenarios=scenarios, columns=columns, agg_column=agg_column,
        agg_tables=agg_tables, queries=queries, mutations=mutations,
        fresh_database=fresh_database)


def hospital_fixture() -> DomainFixture:
    queries = [
        "SELECT * FROM PATIENT",
        "SELECT * FROM WARD",
        "SELECT Id, Severity FROM PATIENT WHERE Severity >= 70",
        "SELECT * FROM PATIENT WHERE PATIENT.Triage = 'RED'",
        ("SELECT PATIENT.Id, WARD.WardName FROM PATIENT, WARD "
         "WHERE PATIENT.Ward = WARD.Ward AND WARD.Floor >= 2"),
        ("SELECT PATIENT.Triage, COUNT(*) FROM PATIENT "
         "GROUP BY PATIENT.Triage"),
    ]
    mutations = [
        "INSERT INTO PATIENT (Id, Age, Severity, Triage, Ward) "
        "VALUES ('Z9{i}', 40, 80, 'RED', 'W01')",
        "INSERT INTO WARD (Ward, WardName, Floor, Beds) "
        "VALUES ('X{i}', 'Annex {i}', 4, 10)",
        "DELETE FROM PATIENT WHERE PATIENT.Triage = 'GREEN'",
        "DELETE FROM WARD WHERE WARD.Ward = 'W05'",
        "UPDATE PATIENT SET Severity = 95 "
        "WHERE PATIENT.Triage = 'AMBER'",
        "UPDATE WARD SET Floor = 1 WHERE WARD.Ward = 'W02'",
    ]
    return synth_fixture("hospital", agg_column="Triage",
                         agg_tables=("PATIENT",), queries=queries,
                         mutations=mutations)


#: The equivalence-suite matrix: the paper's test bed plus at least one
#: synthetic domain (ISSUE 7 satellite).
EQUIVALENCE_FIXTURES = [ship_fixture(), hospital_fixture()]
