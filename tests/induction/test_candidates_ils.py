"""Unit tests for candidate selection and the ILS facade."""

import pytest

from repro.induction import (
    InductionConfig, InductiveLearningSubsystem, candidate_schemes,
)
from repro.induction.candidates import (
    classification_attributes, side_closure,
)
from repro.induction.ils import JoinExpander
from repro.rules.clause import AttributeRef
from tests.conftest import SHIP_ORDER


class TestClassificationAttributes:
    def test_ship_schema(self, ship_binding):
        refs = {ref.render()
                for ref in classification_attributes(ship_binding)}
        assert refs == {"CLASS.Type", "SUBMARINE.Class",
                        "SONAR.SonarType"}


class TestSideClosure:
    def test_ship_side_reaches_class_and_type(self, ship_binding):
        closure = [name.upper()
                   for name in side_closure(ship_binding, "SUBMARINE")]
        assert closure == ["SUBMARINE", "CLASS", "TYPE"]

    def test_sonar_side(self, ship_binding):
        assert [name.upper()
                for name in side_closure(ship_binding, "SONAR")] == [
            "SONAR"]


class TestCandidateSchemes:
    def test_intra_schemes(self, ship_binding):
        schemes = candidate_schemes(ship_binding,
                                    relation_order=SHIP_ORDER)
        intra = [s.render() for s in schemes if s.kind == "intra"]
        assert "SUBMARINE.Id --> SUBMARINE.Class" in intra
        assert "CLASS.Displacement --> CLASS.Type" in intra
        assert "SONAR.Sonar --> SONAR.SonarType" in intra
        # The classification attribute itself is never its own X.
        assert "CLASS.Type --> CLASS.Type" not in intra

    def test_inter_schemes_cross_sides_only(self, ship_binding):
        schemes = candidate_schemes(ship_binding)
        inter = [s.render() for s in schemes if s.kind == "inter"]
        assert ("SUBMARINE.Id --> SONAR.SonarType via INSTALL") in inter
        assert ("SONAR.Sonar --> CLASS.Type via INSTALL") in inter
        # Same-side pairs are not inter-object candidates.
        assert not any("SUBMARINE.Id --> CLASS.Type" in item
                       for item in inter)

    def test_relation_order_respected(self, ship_binding):
        schemes = candidate_schemes(ship_binding,
                                    relation_order=SHIP_ORDER)
        first_relations = [s.x_ref.relation for s in schemes[:2]]
        assert first_relations == ["SUBMARINE", "SUBMARINE"]


class TestJoinExpander:
    def test_expansion_covers_all_sides(self, ship_binding):
        expander = JoinExpander(ship_binding)
        records = expander.expand("INSTALL")
        assert len(records) == 24
        record = next(r for r in records
                      if r[AttributeRef("INSTALL", "Ship")] == "SSN582")
        assert record[AttributeRef("SUBMARINE", "Name")] == "Bonefish"
        assert record[AttributeRef("CLASS", "Type")] == "SSN"
        assert record[AttributeRef("SONAR", "SonarType")] == "BQS"
        assert record[AttributeRef("TYPE", "TypeName")] == (
            "nuclear submarine")


class TestILS:
    def test_induces_18_rules_at_nc3(self, ship_rules):
        assert len(ship_rules) == 18

    def test_rules_tagged_with_subtypes(self, ship_rules):
        tagged = [rule.rhs_subtype for rule in ship_rules]
        assert "SSBN" in tagged and "C0103" in tagged and "BQS" in tagged

    def test_nc1_superset_of_nc3(self, ship_binding):
        loose = InductiveLearningSubsystem(
            ship_binding, InductionConfig(n_c=1),
            relation_order=SHIP_ORDER).induce()
        tight_keys = {(rule.lhs, rule.rhs)
                      for rule in InductiveLearningSubsystem(
                          ship_binding, InductionConfig(n_c=3),
                          relation_order=SHIP_ORDER).induce()}
        loose_keys = {(rule.lhs, rule.rhs) for rule in loose}
        assert tight_keys <= loose_keys
        assert len(loose) > 18

    def test_rnew_appears_at_nc1(self, ship_binding):
        """Example 2's R_new (Class = 1301 -> SSBN) exists at N_c=1."""
        loose = InductiveLearningSubsystem(
            ship_binding, InductionConfig(n_c=1),
            relation_order=SHIP_ORDER).induce()
        rendered = loose.render()
        assert "CLASS.Class = 1301 then CLASS.Type = SSBN" in rendered

    def test_quel_path_matches_native_on_ship_db(self, ship_binding):
        native = InductiveLearningSubsystem(
            ship_binding, InductionConfig(n_c=3),
            relation_order=SHIP_ORDER).induce()
        quel = InductiveLearningSubsystem(
            ship_binding, InductionConfig(n_c=3, use_quel=True),
            relation_order=SHIP_ORDER).induce()
        assert [(r.lhs, r.rhs, r.support) for r in native] == [
            (r.lhs, r.rhs, r.support) for r in quel]

    def test_induced_rules_sound_on_training_data(self, ship_binding,
                                                  ship_rules):
        expander = JoinExpander(ship_binding)
        records = expander.expand("INSTALL")
        for rule in ship_rules:
            # Inter-object rules check against the joined records; intra
            # rules against their own relation (joined records include
            # those attributes too, for submarines present in INSTALL).
            assert rule.sound_on(records), rule.render()

    def test_break_on_removed_ablation(self, ship_binding):
        merged = InductiveLearningSubsystem(
            ship_binding,
            InductionConfig(n_c=3, break_on_removed=False),
            relation_order=SHIP_ORDER).induce()
        # Without breaking, the INSTALL class rules fuse across removed
        # values: 0205..0207 and 0208..0215 stay separate (different Y),
        # but 0101 and 0203 join the 0205..0207 run.
        rendered = merged.render()
        assert "0101 <= SUBMARINE.Class <= 0207" in rendered
