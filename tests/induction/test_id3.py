"""Unit tests for the ID3-style decision-tree learner."""

import pytest

from repro.errors import InductionError
from repro.induction import DecisionTree, id3_induce, tree_to_rules
from repro.induction.id3 import accuracy
from repro.rules.clause import AttributeRef

TONS = AttributeRef("SHIP", "Tons")
HULL = AttributeRef("SHIP", "Hull")
KIND = AttributeRef("SHIP", "Kind")


def record(tons, hull, kind):
    return {TONS: tons, HULL: hull, KIND: kind}


@pytest.fixture()
def fleet():
    return [
        record(1000, "steel", "light"),
        record(2000, "steel", "light"),
        record(3000, "steel", "light"),
        record(8000, "steel", "heavy"),
        record(9000, "titanium", "heavy"),
        record(12000, "titanium", "heavy"),
    ]


class TestNumericSplits:
    def test_learns_threshold(self, fleet):
        tree = id3_induce(fleet, [TONS], KIND)
        assert not tree.is_leaf()
        assert tree.attribute == TONS
        assert 3000 <= tree.threshold < 8000

    def test_perfect_accuracy_on_training(self, fleet):
        tree = id3_induce(fleet, [TONS], KIND)
        assert accuracy(tree, fleet, KIND) == 1.0

    def test_classify_unseen(self, fleet):
        tree = id3_induce(fleet, [TONS], KIND)
        assert tree.classify({TONS: 500}) == "light"
        assert tree.classify({TONS: 50000}) == "heavy"


class TestCategoricalSplits:
    def test_categorical_feature(self):
        rows = [record(1, "steel", "cheap"), record(1, "steel", "cheap"),
                record(1, "titanium", "dear"),
                record(1, "titanium", "dear")]
        tree = id3_induce(rows, [HULL], KIND)
        assert tree.branches is not None
        assert tree.classify({HULL: "steel"}) == "cheap"

    def test_unseen_category_falls_back_to_majority(self):
        rows = [record(1, "steel", "cheap")] * 3 + [
            record(1, "titanium", "dear")]
        tree = id3_induce(rows, [HULL], KIND)
        assert tree.classify({HULL: "wood"}) == "cheap"


class TestStoppingRules:
    def test_pure_node_is_leaf(self):
        rows = [record(1, "steel", "same")] * 5
        tree = id3_induce(rows, [TONS, HULL], KIND)
        assert tree.is_leaf()
        assert tree.label == "same"

    def test_max_depth(self, fleet):
        tree = id3_induce(fleet, [TONS], KIND, max_depth=0)
        assert tree.is_leaf()

    def test_no_features_majority(self, fleet):
        tree = id3_induce(fleet, [], KIND)
        assert tree.is_leaf()
        # 3-3 tie: max() keeps the first-encountered label.
        assert tree.label == "light"

    def test_no_labeled_records(self):
        with pytest.raises(InductionError):
            id3_induce([{TONS: 1}], [TONS], KIND)

    def test_useless_feature_yields_leaf(self):
        rows = [record(5, "steel", "a"), record(5, "steel", "b")]
        tree = id3_induce(rows, [TONS, HULL], KIND)
        assert tree.is_leaf()


class TestTreeShape:
    def test_depth_and_leaf_count(self, fleet):
        tree = id3_induce(fleet, [TONS], KIND)
        assert tree.depth() == 1
        assert tree.leaf_count() == 2

    def test_render(self, fleet):
        text = id3_induce(fleet, [TONS], KIND).render()
        assert "SHIP.Tons <=" in text
        assert "-> light" in text


class TestTreeToRules:
    def test_path_rules(self, fleet):
        tree = id3_induce(fleet, [TONS], KIND)
        rules = tree_to_rules(tree, KIND)
        assert len(rules) == 2
        for rule in rules:
            assert rule.rhs.attribute == KIND
            assert rule.source == "id3"

    def test_rules_classify_training_data(self, fleet):
        tree = id3_induce(fleet, [TONS], KIND)
        rules = tree_to_rules(tree, KIND)
        for row in fleet:
            fired = [rule for rule in rules
                     if rule.premise_satisfied_by(row)]
            assert len(fired) == 1
            assert fired[0].rhs.satisfied_by(row[KIND])

    def test_multi_feature_paths(self):
        rows = [
            record(1000, "steel", "a"), record(1000, "titanium", "b"),
            record(9000, "steel", "c"), record(9000, "titanium", "c"),
        ]
        tree = id3_induce(rows, [TONS, HULL], KIND)
        rules = tree_to_rules(tree, KIND)
        assert any(len(rule.lhs) == 2 for rule in rules)
