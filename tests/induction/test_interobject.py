"""Unit tests for comparison-constraint induction (the draft < depth
knowledge of Section 3.1)."""

import pytest

from repro.induction.interobject import (
    comparison_candidates, induce_comparison_constraints,
)
from repro.ker import SchemaBinding
from repro.testbed import harbor_database, harbor_ker_schema


@pytest.fixture()
def harbor_binding():
    return SchemaBinding(harbor_ker_schema(), harbor_database())


class TestCandidates:
    def test_cross_side_numeric_pairs(self, harbor_binding):
        pairs = comparison_candidates(harbor_binding, "VISIT")
        rendered = {(a.render(), b.render()) for a, b in pairs}
        assert rendered == {("SHIP.Draft", "PORT.Depth")}

    def test_ship_install_has_one_sided_numerics_only(self, ship_binding):
        # CLASS.Displacement is on the submarine side; the sonar side
        # has no numeric attribute, so no candidates exist.
        pairs = comparison_candidates(ship_binding, "INSTALL")
        assert pairs == []


class TestInduction:
    def test_draft_depth_constraint(self, harbor_binding):
        (constraint,) = induce_comparison_constraints(
            harbor_binding, "VISIT")
        assert constraint.render() == "SHIP.Draft < PORT.Depth"
        assert constraint.op == "<"
        assert constraint.support == 16

    def test_tie_weakens_to_le(self, harbor_binding):
        # Add a visit where draft equals depth: the constraint weakens
        # from < to <=.
        harbor_binding.database.insert("VISIT", [("SH03", "P01")])
        (constraint,) = induce_comparison_constraints(
            harbor_binding, "VISIT")
        assert constraint.op == "<="

    def test_violation_kills_constraint(self, harbor_binding):
        # A large ship in the shallowest port violates draft < depth.
        harbor_binding.database.insert("VISIT", [("SH07", "P01")])
        assert induce_comparison_constraints(
            harbor_binding, "VISIT") == []

    def test_min_support(self, harbor_binding):
        assert induce_comparison_constraints(
            harbor_binding, "VISIT", min_support=100) == []

    def test_constraint_holds_on_every_record(self, harbor_binding):
        from repro.induction.ils import JoinExpander
        (constraint,) = induce_comparison_constraints(
            harbor_binding, "VISIT")
        for record in JoinExpander(harbor_binding).expand("VISIT"):
            assert constraint.holds_for(record)


class TestConstraintSemantics:
    def test_holds_for_null_vacuous(self, harbor_binding):
        (constraint,) = induce_comparison_constraints(
            harbor_binding, "VISIT")
        assert constraint.holds_for({})

    def test_invalid_operator_rejected(self):
        from repro.errors import RuleError
        from repro.rules.clause import AttributeRef
        from repro.rules.comparisons import ComparisonConstraint
        with pytest.raises(RuleError):
            ComparisonConstraint(AttributeRef("A", "x"), ">",
                                 AttributeRef("B", "y"))
