"""Unit tests for knowledge maintenance (verify/refresh)."""

import pytest

from repro.induction import InductionConfig
from repro.induction.maintenance import refresh_rules, verify_rules
from repro.ker import SchemaBinding
from tests.conftest import SHIP_ORDER


class TestVerify:
    def test_clean_data_has_no_violations(self, ship_binding, ship_rules):
        assert verify_rules(ship_binding, ship_rules) == []

    def test_intra_object_violation_detected(self, ship_db, ship_schema,
                                             ship_rules):
        # A light SSBN contradicts R8 (2145..6955 -> SSN).
        ship_db.insert("CLASS", [("0299", "Oddball", "SSBN", 5000)])
        binding = SchemaBinding(ship_schema, ship_db)
        violations = verify_rules(binding, ship_rules)
        assert any("2145 <= CLASS.Displacement <= 6955"
                   in violation.rule.render()
                   for violation in violations)
        assert all(violation.observed == "SSBN"
                   for violation in violations)

    def test_inter_object_violation_detected(self, ship_db, ship_schema,
                                             ship_rules):
        # A BQQ sonar on a class-0208 boat contradicts R16
        # (0208..0215 -> BQS).
        ship_db.insert("SUBMARINE", [("SSN777", "Contrary", "0208")])
        ship_db.insert("INSTALL", [("SSN777", "BQQ-5")])
        binding = SchemaBinding(ship_schema, ship_db)
        violations = verify_rules(binding, ship_rules)
        assert any("0208 <= SUBMARINE.Class <= 0215"
                   in violation.rule.render()
                   for violation in violations)

    def test_null_values_do_not_violate(self, ship_db, ship_schema,
                                        ship_rules):
        ship_db.insert("CLASS", [("0350", "Mystery", None, 5000)])
        binding = SchemaBinding(ship_schema, ship_db)
        displacement_violations = [
            violation for violation in verify_rules(binding, ship_rules)
            if violation.rule.lhs[0].attribute.attribute == "Displacement"]
        assert displacement_violations == []


class TestRefresh:
    def test_no_change_on_unchanged_data(self, ship_binding, ship_rules):
        report = refresh_rules(ship_binding, ship_rules,
                               InductionConfig(n_c=3),
                               relation_order=SHIP_ORDER)
        assert not report.added and not report.removed
        assert report.kept == len(ship_rules)

    def test_contradicting_insert_splits_rule(self, ship_db, ship_schema,
                                              ship_rules):
        ship_db.insert("CLASS", [("0216", "Splitter", "SSBN", 5000)])
        binding = SchemaBinding(ship_schema, ship_db)
        report = refresh_rules(binding, ship_rules,
                               InductionConfig(n_c=3),
                               relation_order=SHIP_ORDER)
        removed = [rule.render() for rule in report.removed]
        added = [rule.render() for rule in report.added]
        assert any("2145 <= CLASS.Displacement <= 6955" in text
                   for text in removed)
        assert any("2145 <= CLASS.Displacement <= 4450" in text
                   for text in added)
        assert any("6000 <= CLASS.Displacement <= 6955" in text
                   for text in added)

    def test_supporting_insert_extends_coverage(self, ship_db,
                                                ship_schema, ship_rules):
        # A second Typhoon-class boat resurrects R_new territory at
        # N_c=2 via refresh.
        ship_db.insert("CLASS", [("1302", "Typhoon II", "SSBN", 29500)])
        binding = SchemaBinding(ship_schema, ship_db)
        report = refresh_rules(binding, ship_rules,
                               InductionConfig(n_c=2),
                               relation_order=SHIP_ORDER)
        assert any("1301" in rule.render() for rule in report.added)

    def test_render(self, ship_binding, ship_rules):
        report = refresh_rules(ship_binding, ship_rules,
                               InductionConfig(n_c=3),
                               relation_order=SHIP_ORDER)
        assert "kept 18, added 0, removed 0" in report.render()
