"""Unit tests for the four-step induction algorithm."""

import pytest

from repro.errors import InductionError
from repro.induction import (
    InductionConfig, extract_pairs_native, extract_pairs_quel,
    induce_from_pairs, induce_scheme,
)
from repro.relational import Database, INTEGER, char
from repro.rules.clause import AttributeRef


@pytest.fixture()
def db():
    database = Database()
    database.create("R", [("X", INTEGER), ("Y", char(4))],
                    rows=[(1, "a"), (2, "a"), (3, "b"), (3, "c"),
                          (4, "b"), (5, None), (None, "a"), (6, "b")])
    return database


class TestExtractNative:
    def test_mapping_and_removed(self, db):
        extraction = extract_pairs_native(
            (row[0], row[1]) for row in db.relation("R"))
        assert extraction.mapping == {1: "a", 2: "a", 4: "b", 6: "b"}
        assert extraction.removed == frozenset({3})

    def test_null_x_skipped(self, db):
        extraction = extract_pairs_native(
            (row[0], row[1]) for row in db.relation("R"))
        assert None not in extraction.occurring_x
        assert extraction.source_size == 7  # 8 rows minus the NULL X

    def test_null_y_occurs_but_unmapped(self, db):
        extraction = extract_pairs_native(
            (row[0], row[1]) for row in db.relation("R"))
        assert 5 in extraction.occurring_x
        assert 5 not in extraction.mapping

    def test_counts_only_consistent(self, db):
        extraction = extract_pairs_native(
            (row[0], row[1]) for row in db.relation("R"))
        assert 3 not in extraction.counts
        assert extraction.counts[1] == 1

    def test_duplicate_rows_counted(self):
        extraction = extract_pairs_native([(1, "a"), (1, "a"), (2, "a")])
        assert extraction.counts == {1: 2, 2: 1}


class TestExtractQuel:
    def test_equivalent_to_native(self, db):
        native = extract_pairs_native(
            (row[0], row[1]) for row in db.relation("R"))
        quel = extract_pairs_quel(db, "R", "X", "Y")
        assert quel.occurring_x == native.occurring_x
        assert quel.mapping == native.mapping
        assert quel.removed == native.removed
        assert quel.counts == native.counts
        assert quel.source_size == native.source_size

    def test_temp_relations_dropped(self, db):
        extract_pairs_quel(db, "R", "X", "Y")
        assert "_ILS_S" not in db
        assert "_ILS_T" not in db


class TestInduceFromPairs:
    def test_rules_built_and_pruned(self, db):
        extraction = extract_pairs_native(
            (row[0], row[1]) for row in db.relation("R"))
        x_ref = AttributeRef("R", "X")
        y_ref = AttributeRef("R", "Y")
        all_rules = induce_from_pairs(
            extraction, x_ref, y_ref, InductionConfig(n_c=1))
        assert {rule.rhs.interval.low for rule in all_rules} == {"a", "b"}
        pruned = induce_from_pairs(
            extraction, x_ref, y_ref, InductionConfig(n_c=2))
        assert all(rule.support >= 2 for rule in pruned)

    def test_point_rule_reduces_to_equality(self):
        extraction = extract_pairs_native([(1, "a"), (1, "a")])
        (rule,) = induce_from_pairs(
            extraction, AttributeRef("R", "X"), AttributeRef("R", "Y"),
            InductionConfig(n_c=1))
        assert rule.lhs[0].is_equality()
        assert rule.support == 2

    def test_fractional_threshold(self):
        extraction = extract_pairs_native(
            [(i, "a") for i in range(10)] + [(20, "b")])
        rules = induce_from_pairs(
            extraction, AttributeRef("R", "X"), AttributeRef("R", "Y"),
            InductionConfig(n_c=0.5, n_c_fraction=True))
        assert len(rules) == 1
        assert rules[0].rhs.interval.low == "a"

    def test_pairs_support_metric(self):
        extraction = extract_pairs_native(
            [(1, "a"), (1, "a"), (1, "a")])
        rules = induce_from_pairs(
            extraction, AttributeRef("R", "X"), AttributeRef("R", "Y"),
            InductionConfig(n_c=2, support_metric="pairs"))
        assert rules == []  # 1 distinct pair < 2


class TestInduceScheme:
    def test_native_path(self, db):
        rules = induce_scheme(db.relation("R"), "X", "Y",
                              InductionConfig(n_c=2))
        assert all(rule.rhs.attribute == AttributeRef("R", "Y")
                   for rule in rules)

    def test_quel_path_matches_native(self, db):
        native = induce_scheme(db.relation("R"), "X", "Y",
                               InductionConfig(n_c=1))
        quel = induce_scheme(db.relation("R"), "X", "Y",
                             InductionConfig(n_c=1, use_quel=True),
                             database=db)
        assert [(r.lhs, r.rhs, r.support) for r in native] == [
            (r.lhs, r.rhs, r.support) for r in quel]

    def test_quel_path_requires_database(self, db):
        with pytest.raises(InductionError, match="database"):
            induce_scheme(db.relation("R"), "X", "Y",
                          InductionConfig(use_quel=True))

    def test_soundness_invariant(self, db):
        """Every induced rule must hold on its own training data."""
        relation = db.relation("R")
        rules = induce_scheme(relation, "X", "Y", InductionConfig(n_c=1))
        records = []
        for row in relation:
            records.append({
                AttributeRef("R", "X"): relation.value(row, "X"),
                AttributeRef("R", "Y"): relation.value(row, "Y")})
        for rule in rules:
            assert rule.sound_on(records), rule.render()


class TestConfig:
    def test_bad_support_metric(self):
        with pytest.raises(InductionError):
            InductionConfig(support_metric="bogus")

    def test_bad_fraction(self):
        with pytest.raises(InductionError):
            InductionConfig(n_c=3, n_c_fraction=True)

    def test_negative_nc(self):
        with pytest.raises(InductionError):
            InductionConfig(n_c=-1)

    def test_threshold_for(self):
        assert InductionConfig(n_c=3).threshold_for(100) == 3
        assert InductionConfig(
            n_c=0.1, n_c_fraction=True).threshold_for(50) == 5

    def test_with_n_c(self):
        config = InductionConfig(n_c=3).with_n_c(0.2, fraction=True)
        assert config.n_c == 0.2 and config.n_c_fraction
