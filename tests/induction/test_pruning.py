"""Unit tests for pruning utilities."""

from repro.induction.pruning import nc_sweep, prune_by_support
from repro.rules.clause import Clause
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet


def ruleset_with_supports(*supports):
    rules = RuleSet()
    for index, support in enumerate(supports):
        rules.add(Rule([Clause.between("T.X", index, index)],
                       Clause.equals("T.Y", f"y{index}"),
                       support=support))
    return rules


class TestPruneBySupport:
    def test_keeps_at_or_above(self):
        pruned = prune_by_support(ruleset_with_supports(1, 3, 5), 3)
        assert len(pruned) == 2
        assert all(rule.support >= 3 for rule in pruned)

    def test_renumbers(self):
        pruned = prune_by_support(ruleset_with_supports(1, 5), 2)
        assert pruned[1].support == 5

    def test_zero_keeps_all(self):
        assert len(prune_by_support(ruleset_with_supports(0, 1), 0)) == 2


class TestNcSweep:
    def test_monotone_rule_counts(self):
        base = ruleset_with_supports(1, 2, 3, 4, 5)
        points = nc_sweep(lambda t: prune_by_support(base, t),
                          [1, 2, 3, 4, 5, 6])
        counts = [point.rules_kept for point in points]
        assert counts == [5, 4, 3, 2, 1, 0]

    def test_support_bounds(self):
        base = ruleset_with_supports(2, 7)
        (point,) = nc_sweep(lambda t: prune_by_support(base, t), [1])
        assert point.support_min == 2
        assert point.support_max == 7

    def test_empty_set_bounds_none(self):
        base = ruleset_with_supports(1)
        (point,) = nc_sweep(lambda t: prune_by_support(base, t), [99])
        assert point.support_min is None and point.support_max is None

    def test_ship_db_sweep(self, ship_binding):
        from repro.induction import (
            InductionConfig, InductiveLearningSubsystem)
        from tests.conftest import SHIP_ORDER

        def induce_at(threshold):
            return InductiveLearningSubsystem(
                ship_binding, InductionConfig(n_c=threshold),
                relation_order=SHIP_ORDER).induce()

        points = nc_sweep(induce_at, [1, 3, 5])
        counts = [point.rules_kept for point in points]
        assert counts[0] > counts[1] > counts[2]
        assert counts[1] == 18
