"""Unit tests for rule-quality metrics."""

import pytest

from repro.induction.quality import classification_metrics, predict
from repro.rules.clause import AttributeRef, Clause
from repro.rules.rule import Rule

X = AttributeRef("T", "X")
Y = AttributeRef("T", "Y")


def rule(low, high, label, support=1):
    return Rule([Clause.between("T.X", low, high)],
                Clause.equals("T.Y", label), support=support)


def record(x, y):
    return {X: x, Y: y}


RULES = [rule(0, 9, "a", support=5), rule(10, 19, "b", support=3)]


class TestPredict:
    def test_fired_rule_wins(self):
        assert predict(RULES, record(5, None), Y) == "a"
        assert predict(RULES, record(15, None), Y) == "b"

    def test_no_rule_fires(self):
        assert predict(RULES, record(99, None), Y) is None

    def test_highest_support_breaks_overlap(self):
        overlapping = RULES + [rule(5, 15, "c", support=99)]
        assert predict(overlapping, record(7, None), Y) == "c"

    def test_only_target_rules_considered(self):
        other = Rule([Clause.between("T.X", 0, 9)],
                     Clause.equals("T.Z", "zzz"), support=50)
        assert predict(RULES + [other], record(5, None), Y) == "a"


class TestMetrics:
    def test_perfect(self):
        records = [record(1, "a"), record(5, "a"), record(12, "b")]
        metrics = classification_metrics(RULES, records, Y)
        assert metrics.coverage == 1.0
        assert metrics.precision == 1.0
        assert metrics.accuracy == 1.0

    def test_uncovered_records_hurt_accuracy_not_precision(self):
        records = [record(1, "a"), record(50, "a")]
        metrics = classification_metrics(RULES, records, Y)
        assert metrics.coverage == 0.5
        assert metrics.precision == 1.0
        assert metrics.accuracy == 0.5

    def test_wrong_rule_hurts_precision(self):
        records = [record(1, "b")]
        metrics = classification_metrics(RULES, records, Y)
        assert metrics.precision == 0.0
        assert metrics.accuracy == 0.0

    def test_null_targets_skipped(self):
        records = [record(1, None), record(2, "a")]
        metrics = classification_metrics(RULES, records, Y)
        assert metrics.records == 1

    def test_empty(self):
        metrics = classification_metrics(RULES, [], Y)
        assert metrics.coverage == 0.0
        assert metrics.render().startswith("coverage")

    def test_accuracy_bounded_by_coverage(self):
        records = [record(1, "a"), record(11, "a"), record(99, "a")]
        metrics = classification_metrics(RULES, records, Y)
        assert metrics.accuracy <= metrics.coverage

    def test_ship_rules_perfect_on_training_data(self, ship_rules,
                                                 ship_binding):
        from repro.induction.ils import JoinExpander
        records = JoinExpander(ship_binding).expand("INSTALL")
        target = AttributeRef("CLASS", "Type")
        metrics = classification_metrics(ship_rules, records, target)
        assert metrics.precision == 1.0
        assert metrics.coverage > 0.9
