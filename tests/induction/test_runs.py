"""Unit tests for value-range (run) construction."""

from repro.induction.runs import ValueRun, build_runs


def runs(occurring, mapping, removed=(), counts=None, **kwargs):
    counts = counts if counts is not None else {
        x: 1 for x in mapping}
    return build_runs(occurring, mapping, frozenset(removed), counts,
                      **kwargs)


class TestBasicRuns:
    def test_single_run(self):
        out = runs([1, 2, 3], {1: "a", 2: "a", 3: "a"})
        assert out == [ValueRun("a", 1, 3, (1, 2, 3), 3, 3)]

    def test_label_change_breaks(self):
        out = runs([1, 2, 3, 4], {1: "a", 2: "a", 3: "b", 4: "b"})
        assert [(r.y, r.low, r.high) for r in out] == [
            ("a", 1, 2), ("b", 3, 4)]

    def test_alternating_labels(self):
        out = runs([1, 2, 3], {1: "a", 2: "b", 3: "a"})
        assert len(out) == 3
        assert all(run.pairs == 1 for run in out)

    def test_point_run(self):
        out = runs([5], {5: "a"})
        assert out[0].low == out[0].high == 5

    def test_empty(self):
        assert runs([], {}) == []


class TestRemovedValues:
    def test_removed_breaks_run(self):
        out = runs([1, 2, 3], {1: "a", 3: "a"}, removed={2})
        assert [(r.low, r.high) for r in out] == [(1, 1), (3, 3)]

    def test_removed_no_break_mode(self):
        out = runs([1, 2, 3], {1: "a", 3: "a"}, removed={2},
                   break_on_removed=False)
        assert [(r.low, r.high) for r in out] == [(1, 3)]

    def test_paper_install_classes(self):
        """The Class->SonarType scheme of Section 6: removed classes
        separate R14 (0203), R15 (0205..0207) and R16 (0208..0215)."""
        occurring = ["0101", "0102", "0103", "0201", "0203", "0204",
                     "0205", "0207", "0208", "0209", "0212", "0215",
                     "1301"]
        mapping = {"0101": "BQQ", "0203": "BQQ", "0205": "BQQ",
                   "0207": "BQQ", "0208": "BQS", "0209": "BQS",
                   "0212": "BQS", "0215": "BQS", "1301": "BQQ"}
        removed = {"0102", "0103", "0201", "0204"}
        counts = {"0101": 1, "0203": 1, "0205": 2, "0207": 1,
                  "0208": 1, "0209": 1, "0212": 1, "0215": 1, "1301": 1}
        out = build_runs(occurring, mapping, frozenset(removed), counts)
        spans = [(r.y, r.low, r.high, r.instances) for r in out]
        assert ("BQQ", "0203", "0203", 1) in spans        # paper R14
        assert ("BQQ", "0205", "0207", 3) in spans        # paper R15
        assert ("BQS", "0208", "0215", 4) in spans        # paper R16


class TestNullsAndCounts:
    def test_unmapped_occurring_value_breaks(self):
        # X occurs but its Y was NULL: never in a run, breaks runs.
        out = runs([1, 2, 3], {1: "a", 3: "a"})
        assert [(r.low, r.high) for r in out] == [(1, 1), (3, 3)]

    def test_instance_counts_summed(self):
        out = runs([1, 2], {1: "a", 2: "a"}, counts={1: 3, 2: 4})
        assert out[0].instances == 7
        assert out[0].pairs == 2

    def test_support_metric_selector(self):
        out = runs([1, 2], {1: "a", 2: "a"}, counts={1: 3, 2: 4})
        assert out[0].support("instances") == 7
        assert out[0].support("pairs") == 2

    def test_string_values(self):
        out = runs(["BQQ-2", "BQQ-5", "BQQ-8"],
                   {"BQQ-2": "BQQ", "BQQ-5": "BQQ", "BQQ-8": "BQQ"})
        assert out[0].low == "BQQ-2" and out[0].high == "BQQ-8"
