"""Unit tests for multi-clause (ID3 path) rules in the ILS.

The construction: a grid domain where the label depends on *two*
attributes jointly (pos iff A >= 5 and B >= 5).  Single-attribute
pairwise induction cannot express this (every A value maps to both
labels, so step 2 removes everything); the tree learner recovers it as
multi-clause rules, and multi-premise forward inference uses them.
"""

import pytest

from repro.induction import InductionConfig, InductiveLearningSubsystem
from repro.inference import TypeInferenceEngine
from repro.ker import SchemaBinding, parse_ker
from repro.relational import Database, INTEGER, char
from repro.rules.clause import Clause, Interval

GRID_DDL = """
object type CELL
    has key: Id     domain: INTEGER
    has:     A      domain: INTEGER
    has:     B      domain: INTEGER
    has:     Label  domain: CHAR[3]
    with
        A in [0..9]
        B in [0..9]

CELL contains POS, NEG
POS isa CELL with Label = "pos"
NEG isa CELL with Label = "neg"
"""


@pytest.fixture()
def grid_binding():
    rows = []
    identifier = 0
    for a in range(10):
        for b in range(10):
            label = "pos" if (a >= 5 and b >= 5) else "neg"
            rows.append((identifier, a, b, label))
            identifier += 1
    db = Database("grid")
    db.create("CELL", [("Id", INTEGER), ("A", INTEGER), ("B", INTEGER),
                       ("Label", char(3))], rows=rows, key=["Id"])
    return SchemaBinding(parse_ker(GRID_DDL), db)


class TestGridDomain:
    def test_pairwise_alone_cannot_express_the_conjunction(
            self, grid_binding):
        rules = InductiveLearningSubsystem(
            grid_binding, InductionConfig(n_c=3)).induce()
        # The one-sided "neg" bands (A <= 4, B <= 4) are pairwise-
        # expressible; the "pos" corner needs A and B jointly, so no
        # single-premise A/B rule can conclude it.
        pos_rules = [rule for rule in rules
                     if rule.rhs.interval.low == "pos"
                     and rule.lhs[0].attribute.attribute in ("A", "B")]
        assert pos_rules == []

    def test_tree_rules_recover_the_conjunction(self, grid_binding):
        rules = InductiveLearningSubsystem(
            grid_binding, InductionConfig(n_c=3)).induce(
            include_tree_rules=True)
        tree_rules = [rule for rule in rules if rule.source == "id3"]
        assert tree_rules
        assert all(len(rule.lhs) >= 2 for rule in tree_rules)
        pos_rules = [rule for rule in tree_rules
                     if rule.rhs.interval.low == "pos"]
        assert pos_rules
        assert all(rule.rhs_subtype == "POS" for rule in pos_rules)

    def test_tree_rules_sound(self, grid_binding):
        from repro.rules.clause import AttributeRef
        rules = InductiveLearningSubsystem(
            grid_binding, InductionConfig(n_c=3)).induce(
            include_tree_rules=True)
        relation = grid_binding.database.relation("CELL")
        records = [{AttributeRef("CELL", column.name):
                    row[relation.schema.position(column.name)]
                    for column in relation.schema.columns}
                   for row in relation]
        for rule in rules:
            assert rule.sound_on(records), rule.render()

    def test_multi_premise_forward_inference(self, grid_binding):
        rules = InductiveLearningSubsystem(
            grid_binding, InductionConfig(n_c=3)).induce(
            include_tree_rules=True)
        engine = TypeInferenceEngine(rules, binding=grid_binding)
        result = engine.infer([
            Clause.between("CELL.A", 6, 9),
            Clause.between("CELL.B", 6, 9)])
        assert "POS" in result.forward_subtypes()

    def test_one_condition_is_not_enough(self, grid_binding):
        rules = InductiveLearningSubsystem(
            grid_binding, InductionConfig(n_c=3)).induce(
            include_tree_rules=True)
        engine = TypeInferenceEngine(rules, binding=grid_binding)
        result = engine.infer([Clause.between("CELL.A", 6, 9)])
        assert "POS" not in result.forward_subtypes()

    def test_pruning_applies_to_tree_rules(self, grid_binding):
        loose = InductiveLearningSubsystem(
            grid_binding, InductionConfig(n_c=1)).induce(
            include_tree_rules=True)
        tight = InductiveLearningSubsystem(
            grid_binding, InductionConfig(n_c=30)).induce(
            include_tree_rules=True)
        loose_tree = [r for r in loose if r.source == "id3"]
        tight_tree = [r for r in tight if r.source == "id3"]
        assert len(tight_tree) <= len(loose_tree)
        assert all(rule.support >= 30 for rule in tight_tree)


class TestShipDatabaseTreeRules:
    def test_ship_rules_unchanged_by_default(self, ship_binding):
        default = InductiveLearningSubsystem(
            ship_binding, InductionConfig(n_c=3)).induce()
        assert all(rule.source == "induced" for rule in default)

    def test_ship_tree_rules_are_sound_additions(self, ship_binding,
                                                 ship_rules):
        with_trees = InductiveLearningSubsystem(
            ship_binding, InductionConfig(n_c=3)).induce(
            include_tree_rules=True)
        pairwise_keys = {(r.lhs, r.rhs) for r in ship_rules}
        extras = [r for r in with_trees
                  if (r.lhs, r.rhs) not in pairwise_keys]
        assert all(rule.source == "id3" for rule in extras)
