"""Unit tests for forward chaining and backward matching."""

from repro.inference.backward import backward_match
from repro.inference.facts import FactBase
from repro.inference.forward import forward_chain, rule_fires
from repro.rules.clause import AttributeRef, Clause, Interval
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet

A = AttributeRef("T", "A")
B = AttributeRef("T", "B")
C = AttributeRef("T", "C")


def make_rules(*rules):
    ruleset = RuleSet()
    for rule in rules:
        ruleset.add(rule)
    return ruleset


class TestForward:
    def test_single_step(self):
        rules = make_rules(Rule([Clause(A, Interval.closed(1, 10))],
                                Clause(B, Interval.point("yes"))))
        facts = FactBase()
        facts.add_condition(Clause(A, Interval.closed(3, 5)))
        derivations = forward_chain(facts, rules)
        assert len(derivations) == 1
        assert facts.interval_for(B) == Interval.point("yes")

    def test_chaining_to_fixpoint(self):
        rules = make_rules(
            Rule([Clause(A, Interval.closed(1, 10))],
                 Clause(B, Interval.point("mid"))),
            Rule([Clause(B, Interval.point("mid"))],
                 Clause(C, Interval.point("far"))))
        facts = FactBase()
        facts.add_condition(Clause(A, Interval.point(5)))
        derivations = forward_chain(facts, rules)
        assert [d.rule.number for d in derivations] == [1, 2]
        assert facts.interval_for(C) == Interval.point("far")

    def test_rule_fires_each_once(self):
        rules = make_rules(Rule([Clause(A, Interval.closed(1, 10))],
                                Clause(B, Interval.point("yes"))))
        facts = FactBase()
        facts.add_condition(Clause(A, Interval.point(2)))
        assert len(forward_chain(facts, rules)) == 1

    def test_wider_condition_blocks(self):
        rule = Rule([Clause(A, Interval.closed(5, 10))],
                    Clause(B, Interval.point("yes")))
        facts = FactBase()
        facts.add_condition(Clause(A, Interval.closed(1, 10)))
        assert not rule_fires(rule, facts)

    def test_derived_facts_narrow(self):
        rules = make_rules(
            Rule([Clause(A, Interval.closed(1, 10))],
                 Clause(B, Interval.closed(0, 50))),
            Rule([Clause(A, Interval.closed(0, 20))],
                 Clause(B, Interval.closed(25, 100))))
        facts = FactBase()
        facts.add_condition(Clause(A, Interval.point(5)))
        forward_chain(facts, rules)
        assert facts.interval_for(B) == Interval.closed(25, 50)


class TestBackward:
    def test_match_on_query_fact(self):
        rules = make_rules(Rule([Clause(A, Interval.closed(1, 3))],
                                Clause(B, Interval.point("x"))))
        facts = FactBase()
        facts.add_condition(Clause(B, Interval.point("x")))
        (description,) = backward_match(facts, rules)
        assert not description.via_derived_fact

    def test_match_on_derived_fact_flagged(self):
        rules = make_rules(
            Rule([Clause(A, Interval.closed(1, 10))],
                 Clause(B, Interval.point("x"))),
            Rule([Clause(C, Interval.closed(7, 9))],
                 Clause(B, Interval.point("x"))))
        facts = FactBase()
        facts.add_condition(Clause(A, Interval.point(5)))
        derivations = forward_chain(facts, rules)
        fired = {id(d.rule) for d in derivations}
        (description,) = backward_match(facts, rules, exclude=fired)
        assert description.rule.number == 2
        assert description.via_derived_fact

    def test_no_match_without_fact(self):
        rules = make_rules(Rule([Clause(A, Interval.closed(1, 3))],
                                Clause(B, Interval.point("x"))))
        assert backward_match(FactBase(), rules) == []

    def test_consequence_must_lie_inside_fact(self):
        rules = make_rules(Rule([Clause(A, Interval.closed(1, 3))],
                                Clause(B, Interval.closed(0, 100))))
        facts = FactBase()
        facts.add_condition(Clause(B, Interval.point(5)))
        assert backward_match(facts, rules) == []

    def test_trivial_premise_skipped(self):
        # The premise restates the established fact: uninformative.
        rules = make_rules(Rule([Clause(B, Interval.closed(0, 10))],
                                Clause(B, Interval.closed(0, 10))))
        facts = FactBase()
        facts.add_condition(Clause(B, Interval.closed(2, 3)))
        assert backward_match(facts, rules) == []

    def test_sorted_by_support(self):
        rules = make_rules(
            Rule([Clause(A, Interval.closed(1, 2))],
                 Clause(B, Interval.point("x")), support=1),
            Rule([Clause(C, Interval.closed(1, 2))],
                 Clause(B, Interval.point("x")), support=9))
        facts = FactBase()
        facts.add_condition(Clause(B, Interval.point("x")))
        descriptions = backward_match(facts, rules)
        assert [d.rule.support for d in descriptions] == [9, 1]
