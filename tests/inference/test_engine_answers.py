"""Unit tests for the inference engine facade and answer rendering,
driven by the ship knowledge base."""

import pytest

from repro.inference import TypeInferenceEngine
from repro.rules.clause import AttributeRef, Clause, Interval

JOIN_SUB_CLASS = (AttributeRef("SUBMARINE", "Class"),
                  AttributeRef("CLASS", "Class"))
JOIN_SUB_INSTALL = (AttributeRef("SUBMARINE", "Id"),
                    AttributeRef("INSTALL", "Ship"))


@pytest.fixture()
def engine(ship_rules, ship_binding):
    return TypeInferenceEngine(ship_rules, binding=ship_binding)


class TestExample1Forward:
    def test_forward_answer(self, engine):
        result = engine.infer(
            [Clause(AttributeRef("CLASS", "Displacement"),
                    Interval.at_least(8000, strict=True))],
            equivalences=[JOIN_SUB_CLASS])
        assert result.forward_subtypes() == ["SSBN"]
        (answer,) = result.forward_answers()
        assert "SSBN" in answer.render()

    def test_domain_widening_is_essential(self, ship_rules):
        # Without the KER binding (no declared domain), Displacement >
        # 8000 has no upper bound and R9 cannot fire.
        bare = TypeInferenceEngine(ship_rules, binding=None)
        result = bare.infer(
            [Clause(AttributeRef("CLASS", "Displacement"),
                    Interval.at_least(8000, strict=True))])
        assert result.forward_subtypes() == []

    def test_condition_below_rule_range_no_fire(self, engine):
        result = engine.infer(
            [Clause(AttributeRef("CLASS", "Displacement"),
                    Interval.at_least(5000, strict=True))])
        assert result.forward_subtypes() == []


class TestExample2Backward:
    def test_partial_descriptions(self, engine):
        result = engine.infer(
            [Clause.equals("CLASS.Type", "SSBN")],
            equivalences=[JOIN_SUB_CLASS])
        assert not result.forward
        rendered = [a.render() for a in result.backward_answers()]
        assert any("0101 <= CLASS.Class <= 0103" in text
                   for text in rendered)
        assert all("partial" in text for text in rendered)

    def test_combined_prefers_classification_attribute(self, engine):
        result = engine.infer([Clause.equals("CLASS.Type", "SSBN")],
                              equivalences=[JOIN_SUB_CLASS])
        best = result.best_backward_description()
        assert best["attribute"].attribute.lower() == "class"

    def test_incompleteness_documented(self, engine):
        # Class 1301 is an SSBN but no surviving rule covers it: the
        # backward description must not include it.
        result = engine.infer([Clause.equals("CLASS.Type", "SSBN")])
        best = result.best_backward_description()
        assert not best["interval"].contains_value("1301")


class TestExample3Combined:
    @pytest.fixture()
    def result(self, engine):
        return engine.infer(
            [Clause.equals("INSTALL.Sonar", "BQS-04")],
            equivalences=[JOIN_SUB_CLASS, JOIN_SUB_INSTALL])

    def test_forward_derives_both_types(self, result):
        assert set(result.forward_subtypes()) == {"BQS", "SSN"}

    def test_backward_descriptions_intersected(self, result):
        best = result.best_backward_description()
        assert best["interval"] == Interval.closed("0208", "0215")
        assert len(best["rules"]) == 2  # R6 and R16 corroborate

    def test_combined_sentence(self, result):
        sentence = result.combined_answer()
        assert "SSN" in sentence
        assert "0208" in sentence and "0215" in sentence

    def test_backward_flags_derived_facts(self, result):
        assert all(answer.approximate
                   for answer in result.backward_answers())


class TestDirectionToggles:
    def test_forward_only(self, engine):
        result = engine.infer(
            [Clause.equals("INSTALL.Sonar", "BQS-04")],
            backward=False)
        assert result.forward and not result.backward

    def test_backward_only(self, engine):
        result = engine.infer(
            [Clause.equals("CLASS.Type", "SSBN")], forward=False)
        assert not result.forward and result.backward

    def test_no_conditions_no_answers(self, engine):
        result = engine.infer([])
        assert result.combined_answer() is None
        assert "No intensional answer" in result.summary()


class TestSummary:
    def test_summary_sections(self, engine):
        result = engine.infer(
            [Clause.equals("INSTALL.Sonar", "BQS-04")],
            equivalences=[JOIN_SUB_CLASS, JOIN_SUB_INSTALL])
        summary = result.summary()
        assert "Query conditions:" in summary
        assert "Forward inference" in summary
        assert "Backward inference" in summary
        assert "Combined:" in summary
