"""Unit tests for derivation traces."""

from repro.inference import explain_inference
from tests.conftest import EXAMPLE_1, EXAMPLE_2, EXAMPLE_3


class TestExplainForward:
    def test_example1_trace(self, ship_system):
        result = ship_system.ask(EXAMPLE_1)
        trace = explain_inference(result.inference)
        assert "Established from the query:" in trace
        assert "R9 fires" in trace
        assert "is subsumed by premise" in trace
        assert "(x isa SSBN)" in trace
        assert "[domain 2000 <= CLASS.Displacement <= 30000]" in trace

    def test_chained_firing_order(self, ship_system):
        result = ship_system.ask(EXAMPLE_3)
        trace = explain_inference(result.inference)
        assert trace.index("step 1:") < trace.index("step 2:")
        assert "R11 fires" in trace
        assert "R17 fires" in trace

    def test_triggers_recorded(self, ship_system):
        result = ship_system.ask(EXAMPLE_1)
        (derivation,) = result.inference.forward
        (trigger,) = derivation.triggers
        assert trigger.attribute == derivation.rule.lhs[0].attribute
        assert trigger.interval.low == 8000


class TestExplainBackward:
    def test_example2_trace(self, ship_system):
        result = ship_system.ask(EXAMPLE_2)
        trace = explain_inference(result.inference)
        assert "Backward matches:" in trace
        assert "lies inside the query condition" in trace
        assert "0101 <= CLASS.Class <= 0103" in trace

    def test_derived_origin_labeled(self, ship_system):
        result = ship_system.ask(EXAMPLE_3)
        trace = explain_inference(result.inference)
        assert "lies inside a derived fact" in trace


class TestExplainEmpty:
    def test_no_rules_applicable(self, ship_system):
        result = ship_system.ask(
            "SELECT Class FROM CLASS WHERE Displacement > 100")
        trace = explain_inference(result.inference)
        assert "No rule was applicable." in trace

    def test_no_conditions(self, ship_system):
        result = ship_system.ask("SELECT Class FROM CLASS")
        trace = explain_inference(result.inference)
        assert "(no interval conditions)" in trace
