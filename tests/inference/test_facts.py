"""Unit tests for the fact base and canonicalizer."""

import pytest

from repro.errors import InferenceError
from repro.inference.facts import Canonicalizer, FactBase
from repro.rules.clause import AttributeRef, Clause, Interval

A = AttributeRef("T", "A")
B = AttributeRef("U", "B")
C = AttributeRef("V", "C")


class TestCanonicalizer:
    def test_identity_without_pairs(self):
        canon = Canonicalizer()
        assert canon.canon(A) == A

    def test_union(self):
        canon = Canonicalizer([(A, B)])
        assert canon.equivalent(A, B)
        assert canon.canon(A) == canon.canon(B)

    def test_referenced_side_wins(self):
        canon = Canonicalizer([(A, B)])
        assert canon.canon(A) == B

    def test_transitive(self):
        canon = Canonicalizer([(A, B), (B, C)])
        assert canon.equivalent(A, C)

    def test_case_insensitive(self):
        canon = Canonicalizer([(A, B)])
        assert canon.equivalent(AttributeRef("t", "a"), B)

    def test_copy_isolated(self):
        canon = Canonicalizer([(A, B)])
        clone = canon.copy()
        clone.unite(B, C)
        assert not canon.equivalent(A, C)
        assert clone.equivalent(A, C)


class TestFactBase:
    def test_condition_and_lookup(self):
        facts = FactBase()
        facts.add_condition(Clause(A, Interval.closed(1, 5)))
        assert facts.interval_for(A) == Interval.closed(1, 5)
        assert facts.sources_for(A) == ("query",)

    def test_lookup_through_equivalence(self):
        facts = FactBase(Canonicalizer([(A, B)]))
        facts.add_condition(Clause(A, Interval.point(3)))
        assert facts.interval_for(B) == Interval.point(3)

    def test_assertions_intersect(self):
        facts = FactBase()
        facts.assert_interval(A, Interval.closed(1, 10), "query")
        narrowed = facts.assert_interval(A, Interval.closed(5, 20), "rule")
        assert narrowed
        assert facts.interval_for(A) == Interval.closed(5, 10)
        assert facts.sources_for(A) == ("query", "rule")

    def test_redundant_assertion_not_narrowing(self):
        facts = FactBase()
        facts.assert_interval(A, Interval.closed(5, 10), "query")
        assert not facts.assert_interval(A, Interval.closed(0, 100), "r")

    def test_contradiction_raises(self):
        facts = FactBase()
        facts.assert_interval(A, Interval.closed(1, 2), "query")
        with pytest.raises(InferenceError, match="contradictory"):
            facts.assert_interval(A, Interval.closed(5, 6), "rule")

    def test_domain_lookup_canonicalized(self):
        canon = Canonicalizer([(A, B)])
        facts = FactBase(canon, domains={A: Interval.closed(0, 100)})
        assert facts.domain_for(B) == Interval.closed(0, 100)

    def test_facts_listing(self):
        facts = FactBase()
        facts.add_condition(Clause(A, Interval.point(1)))
        facts.add_condition(Clause(B, Interval.point(2)))
        assert len(facts) == 2
        listed = facts.facts()
        assert [entry[0] for entry in listed] == [A, B]
