"""Unit tests for bound propagation through comparison constraints."""

import pytest

from repro.inference import TypeInferenceEngine
from repro.inference.facts import FactBase
from repro.ker import SchemaBinding
from repro.query import IntensionalQueryProcessor
from repro.rules.clause import AttributeRef, Clause, Interval
from repro.rules.comparisons import ComparisonConstraint, propagate_bounds
from repro.rules.ruleset import RuleSet
from repro.testbed import harbor_database, harbor_ker_schema

DRAFT = AttributeRef("SHIP", "Draft")
DEPTH = AttributeRef("PORT", "Depth")


@pytest.fixture()
def constraint():
    return ComparisonConstraint(DRAFT, "<", DEPTH)


class TestBoundTransfer:
    def test_upper_bound_moves_left(self, constraint):
        bound = constraint.bound_for_left(Interval.at_most(9))
        assert bound == Interval.at_most(9, strict=True)

    def test_lower_bound_moves_right(self, constraint):
        bound = constraint.bound_for_right(Interval.at_least(10))
        assert bound == Interval.at_least(10, strict=True)

    def test_le_keeps_closed_bounds(self):
        le = ComparisonConstraint(DRAFT, "<=", DEPTH)
        assert le.bound_for_left(Interval.at_most(9)) == Interval.at_most(9)

    def test_open_facts_stay_open(self, constraint):
        bound = constraint.bound_for_left(Interval.at_most(9, strict=True))
        assert bound.high_open

    def test_unbounded_side_gives_nothing(self, constraint):
        assert constraint.bound_for_left(Interval.at_least(5)) is None
        assert constraint.bound_for_right(Interval.at_most(5)) is None


class TestPropagateBounds:
    def test_single_step(self, constraint):
        facts = FactBase()
        facts.add_condition(Clause(DEPTH, Interval.at_most(8)))
        steps = propagate_bounds(facts, [constraint])
        assert len(steps) == 1
        assert facts.interval_for(DRAFT) == Interval.at_most(
            8, strict=True)

    def test_bidirectional(self, constraint):
        facts = FactBase()
        facts.add_condition(Clause(DRAFT, Interval.at_least(10)))
        propagate_bounds(facts, [constraint])
        assert facts.interval_for(DEPTH) == Interval.at_least(
            10, strict=True)

    def test_chained_constraints(self):
        a, b, c = (AttributeRef("T", name) for name in "ABC")
        chain = [ComparisonConstraint(a, "<", b),
                 ComparisonConstraint(b, "<", c)]
        facts = FactBase()
        facts.add_condition(Clause(a, Interval.at_least(5)))
        propagate_bounds(facts, chain)
        assert facts.interval_for(c) == Interval.at_least(5, strict=True)

    def test_fixpoint_terminates(self, constraint):
        facts = FactBase()
        facts.add_condition(Clause(DEPTH, Interval.closed(7, 9)))
        first = propagate_bounds(facts, [constraint])
        second = propagate_bounds(facts, [constraint])
        assert first and not second


class TestEngineIntegration:
    @pytest.fixture()
    def harbor_system(self):
        return IntensionalQueryProcessor.from_database(
            harbor_database(), ker_schema=harbor_ker_schema(),
            relation_order=["SHIP", "PORT", "VISIT"],
            induce_comparisons=True)

    def test_depth_condition_classifies_ships(self, harbor_system):
        result = harbor_system.ask(
            "SELECT SHIP.Name, SHIP.Size FROM SHIP, PORT, VISIT "
            "WHERE SHIP.Id = VISIT.Ship AND PORT.Port = VISIT.Port "
            "AND PORT.Depth <= 8")
        assert result.inference.forward_subtypes() == ["SMALL"]
        assert result.inference.propagations
        assert {row[1] for row in result.extensional} == {"small"}

    def test_draft_condition_bounds_depth(self, harbor_system):
        result = harbor_system.ask(
            "SELECT PORT.PortName FROM SHIP, PORT, VISIT "
            "WHERE SHIP.Id = VISIT.Ship AND PORT.Port = VISIT.Port "
            "AND SHIP.Draft >= 12")
        depth_fact = result.inference.facts.interval_for(DEPTH)
        assert depth_fact == Interval.at_least(12, strict=True)

    def test_without_constraints_no_propagation(self):
        system = IntensionalQueryProcessor.from_database(
            harbor_database(), ker_schema=harbor_ker_schema(),
            relation_order=["SHIP", "PORT", "VISIT"],
            induce_comparisons=False)
        result = system.ask(
            "SELECT SHIP.Name FROM SHIP, PORT, VISIT "
            "WHERE SHIP.Id = VISIT.Ship AND PORT.Port = VISIT.Port "
            "AND PORT.Depth <= 8")
        assert not result.inference.propagations
        assert result.inference.forward_subtypes() == []

    def test_summary_shows_propagation(self, harbor_system):
        result = harbor_system.ask(
            "SELECT SHIP.Name FROM SHIP, PORT, VISIT "
            "WHERE SHIP.Id = VISIT.Ship AND PORT.Port = VISIT.Port "
            "AND PORT.Depth <= 8")
        assert "Propagated bounds" in result.inference.summary()
        assert "SHIP.Draft < 8" in result.inference.summary()

    def test_standalone_engine_with_constraints(self, constraint):
        rules = RuleSet()
        engine = TypeInferenceEngine(rules, constraints=[constraint])
        result = engine.infer(
            [Clause(DEPTH, Interval.at_most(8))])
        assert result.facts.interval_for(DRAFT) is not None
