"""Unit tests for contradictory-condition handling."""

from repro.inference import TypeInferenceEngine
from repro.rules.clause import Clause


class TestUnsatisfiableQueries:
    def test_contradictory_conditions_flagged(self, ship_system):
        result = ship_system.ask(
            "SELECT Class FROM CLASS "
            "WHERE Displacement > 8000 AND Displacement < 5000")
        assert result.extensional.rows == []
        assert result.inference.unsatisfiable
        assert "contradictory" in result.inference.combined_answer()

    def test_summary_notes_unsatisfiability(self, ship_system):
        result = ship_system.ask(
            "SELECT Class FROM CLASS "
            "WHERE Type = 'SSBN' AND Type = 'SSN'")
        assert result.inference.unsatisfiable
        assert "contradictory" in result.inference.summary()

    def test_no_rules_fire(self, ship_system):
        result = ship_system.ask(
            "SELECT Class FROM CLASS "
            "WHERE Displacement > 8000 AND Displacement < 5000")
        assert not result.inference.forward
        assert not result.inference.backward

    def test_engine_level(self, ship_rules, ship_binding):
        engine = TypeInferenceEngine(ship_rules, binding=ship_binding)
        result = engine.infer([
            Clause.equals("CLASS.Type", "SSBN"),
            Clause.equals("CLASS.Type", "SSN")])
        assert result.unsatisfiable

    def test_satisfiable_conjunction_not_flagged(self, ship_system):
        result = ship_system.ask(
            "SELECT Class FROM CLASS "
            "WHERE Displacement > 8000 AND Displacement < 20000")
        assert not result.inference.unsatisfiable
        assert result.inference.forward_subtypes() == ["SSBN"]

    def test_contradiction_through_equivalence(self, ship_system):
        # The contradiction only appears after canonicalizing the two
        # attribute spellings through the join.
        result = ship_system.ask(
            "SELECT SUBMARINE.Name FROM SUBMARINE, CLASS "
            "WHERE SUBMARINE.Class = CLASS.Class "
            "AND SUBMARINE.Class = '0101' AND CLASS.Class = '0215'")
        assert result.inference.unsatisfiable
