"""Unit tests for empirical answer verification."""

from repro.inference.verification import (
    verify_answers, verify_backward_answers, verify_forward_answers,
)
from tests.conftest import EXAMPLE_1, EXAMPLE_2, EXAMPLE_3


class TestForwardVerification:
    def test_example1_forward_holds(self, ship_system):
        result = ship_system.ask(EXAMPLE_1)
        checks = verify_forward_answers(result)
        assert checks
        assert all(check.holds for check in checks)
        assert any("2/2 tuples" in check.detail for check in checks)

    def test_unchecked_when_attribute_not_in_output(self, ship_system):
        result = ship_system.ask(
            "SELECT Name FROM SUBMARINE, CLASS "
            "WHERE SUBMARINE.Class = CLASS.Class "
            "AND CLASS.Displacement > 8000")
        checks = verify_forward_answers(result)
        assert all(check.holds for check in checks)
        assert any("not checkable" in check.detail for check in checks)


class TestBackwardVerification:
    def test_example2_backward_holds(self, ship_system):
        result = ship_system.ask(EXAMPLE_2)
        checks = verify_backward_answers(result)
        assert checks
        assert all(check.holds for check in checks)
        # R5's description covers 6 of the 7 SSBN ships (classes
        # 0101-0103 inclusive); only the class-1301 Typhoon is outside
        # the described range -- a proper subset, as the paper notes.
        class_check = next(
            check for check in checks
            if "CLASS.Class" in check.description
            and "0101" in check.description)
        assert "6/7" in class_check.detail

    def test_derived_fact_descriptions_flagged(self, ship_system):
        result = ship_system.ask(EXAMPLE_3)
        checks = verify_backward_answers(result)
        assert all("approximate" in check.detail for check in checks)


class TestReport:
    def test_report_over_all_examples(self, ship_system):
        for sql in (EXAMPLE_1, EXAMPLE_2, EXAMPLE_3):
            report = verify_answers(ship_system.ask(sql))
            assert report.all_hold, report.render()

    def test_render(self, ship_system):
        report = verify_answers(ship_system.ask(EXAMPLE_1))
        text = report.render()
        assert "[ok ]" in text
        assert "all guarantees hold" in text
