"""Smoke tests: every example script runs and prints its key artifacts.

These keep the runnable examples from rotting as the library evolves.
"""

import contextlib
import io
import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        try:
            runpy.run_path(str(EXAMPLES / name), run_name="__main__")
        except SystemExit as stop:  # scripts that exit with a status
            assert not stop.code, buffer.getvalue()
    return buffer.getvalue()


class TestExamplesRun:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "then x isa SSBN" in output
        assert "Every answer is of type SSBN" in output

    def test_ship_database_tour(self):
        output = run_example("ship_database_tour.py")
        assert "exact: 15/17" in output
        assert "Example 3 (combined inference)" in output
        assert "identical: True" in output

    def test_employee_database(self):
        output = run_example("employee_database.py")
        assert "Every answer is of type PRINCIPAL" in output
        assert "Every answer is of type JUNIOR" in output

    def test_battleship_fleet(self):
        output = run_example("battleship_fleet.py")
        assert "7250" in output and "16600" in output
        assert "ID3 over (Category, Displacement)" in output

    def test_quel_session(self):
        output = run_example("quel_session.py")
        assert "if 0101 <= Class <= 0103 then Type = SSBN" in output
        assert "R_new" in output

    def test_harbor_visits(self):
        output = run_example("harbor_visits.py")
        assert "SHIP.Draft < PORT.Depth" in output
        assert "Every answer is of type SMALL" in output

    def test_server_smoke(self):
        output = run_example("server_smoke.py")
        assert "intensional: Every answer is of type SSBN" in output
        assert "server smoke test passed" in output

    def test_every_example_is_covered(self):
        scripts = {path.name for path in EXAMPLES.glob("*.py")}
        covered = {"quickstart.py", "ship_database_tour.py",
                   "employee_database.py", "battleship_fleet.py",
                   "quel_session.py", "harbor_visits.py",
                   "server_smoke.py"}
        assert scripts == covered
