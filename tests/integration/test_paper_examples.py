"""End-to-end reproduction of the paper's Section 6 examples.

Each test pins both the extensional answer (the exact tuples the paper
prints) and the intensional answer (the characterization the paper
derives), through the full pipeline: SQL text -> executor + condition
extraction -> induced knowledge base -> type inference.
"""

from repro.rules.clause import Interval
from tests.conftest import EXAMPLE_1, EXAMPLE_2, EXAMPLE_3


class TestExample1:
    """Forward inference: submarines with displacement > 8000."""

    def test_extensional_answer(self, ship_system):
        result = ship_system.ask(EXAMPLE_1)
        assert sorted(result.extensional.rows) == [
            ("SSBN130", "Typhoon", "1301", "SSBN"),
            ("SSBN730", "Rhode Island", "0101", "SSBN")]

    def test_intensional_answer_is_ssbn(self, ship_system):
        result = ship_system.ask(EXAMPLE_1)
        forward = result.inference.forward
        assert len(forward) == 1
        assert forward[0].rule.rhs_subtype == "SSBN"
        # Derived via R9 (Displacement in [7250, 30000] -> SSBN).
        assert forward[0].rule.lhs[0].interval == Interval.closed(
            7250, 30000)

    def test_answer_contains_extension(self, ship_system):
        """Forward answers characterize a superset: every extensional
        tuple satisfies the derived fact."""
        result = ship_system.ask(EXAMPLE_1)
        type_column = result.extensional.schema.position("TYPE")
        for row in result.extensional:
            assert row[type_column] == "SSBN"


class TestExample2:
    """Backward inference: names and classes of the SSBN ships."""

    def test_extensional_answer(self, ship_system):
        result = ship_system.ask(EXAMPLE_2)
        assert sorted(result.extensional.rows) == sorted([
            ("Nathaniel Hale", "0103"), ("Daniel Boone", "0103"),
            ("Sam Rayburn", "0103"), ("Lewis and Clark", "0102"),
            ("Mariano G. Vallejo", "0102"), ("Rhode Island", "0101"),
            ("Typhoon", "1301")])

    def test_backward_description_via_r5(self, ship_system):
        result = ship_system.ask(EXAMPLE_2)
        best = result.inference.best_backward_description()
        assert best["interval"] == Interval.closed("0101", "0103")

    def test_answer_contained_in_extension(self, ship_system):
        """Backward answers characterize a subset: every ship whose
        class lies in the described range is in the extension."""
        result = ship_system.ask(EXAMPLE_2)
        best = result.inference.best_backward_description()
        described = {row for row in result.extensional
                     if best["interval"].contains_value(row[1])}
        assert described < set(result.extensional.rows)

    def test_incompleteness_class_1301(self, ship_system):
        """The paper's point: class 1301 is an SSBN yet absent from the
        description because R_new was pruned."""
        result = ship_system.ask(EXAMPLE_2)
        best = result.inference.best_backward_description()
        assert not best["interval"].contains_value("1301")
        assert ("Typhoon", "1301") in result.extensional.rows


class TestExample3:
    """Combined inference: submarines equipped with sonar BQS-04."""

    def test_extensional_answer(self, ship_system):
        result = ship_system.ask(EXAMPLE_3)
        assert sorted(result.extensional.rows) == [
            ("Bonefish", "0215", "SSN"),
            ("Robert E. Lee", "0208", "SSN"),
            ("Seadragon", "0212", "SSN"),
            ("Snook", "0209", "SSN")]

    def test_forward_types(self, ship_system):
        result = ship_system.ask(EXAMPLE_3)
        assert set(result.inference.forward_subtypes()) == {"BQS", "SSN"}

    def test_combined_class_range(self, ship_system):
        result = ship_system.ask(EXAMPLE_3)
        best = result.inference.best_backward_description()
        assert best["interval"] == Interval.closed("0208", "0215")
        sentence = result.combined_answer()
        assert "SSN" in sentence and "0208" in sentence

    def test_combined_range_covers_extension(self, ship_system):
        result = ship_system.ask(EXAMPLE_3)
        best = result.inference.best_backward_description()
        class_column = result.extensional.schema.position("CLASS")
        for row in result.extensional:
            assert best["interval"].contains_value(row[class_column])


class TestDirectionalSemantics:
    def test_forward_soundness_over_many_queries(self, ship_system,
                                                 ship_db):
        """For a sweep of displacement thresholds: whenever forward
        inference concludes a type, every extensional answer has it."""
        for threshold in (7000, 7250, 8000, 10000, 16600, 20000):
            sql = (
                "SELECT SUBMARINE.Name, CLASS.Type FROM SUBMARINE, CLASS "
                "WHERE SUBMARINE.Class = CLASS.Class "
                f"AND CLASS.DISPLACEMENT > {threshold}")
            result = ship_system.ask(sql)
            for subtype in result.inference.forward_subtypes():
                if subtype not in ("SSBN", "SSN"):
                    continue
                for row in result.extensional:
                    assert row[1] == subtype

    def test_backward_soundness_over_type_queries(self, ship_system):
        """Backward descriptions on the queried fact always denote
        subsets of the extension."""
        for ship_type in ("SSBN", "SSN"):
            sql = (
                "SELECT SUBMARINE.Name, SUBMARINE.Class "
                "FROM SUBMARINE, CLASS "
                "WHERE SUBMARINE.Class = CLASS.Class "
                f"AND CLASS.TYPE = '{ship_type}'")
            result = ship_system.ask(sql)
            extension_classes = {row[1] for row in result.extensional}
            for description in result.inference.backward:
                if description.via_derived_fact:
                    continue
                (clause,) = description.rule.lhs
                if clause.attribute.attribute.lower() != "class":
                    continue
                described = {
                    value for value in extension_classes
                    if clause.interval.contains_value(value)}
                assert described <= extension_classes
