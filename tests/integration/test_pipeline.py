"""Cross-module integration tests beyond the worked examples."""

import pytest

from repro.baseline import ConstraintOnlyAnswerer
from repro.dictionary import IntelligentDataDictionary
from repro.induction import InductionConfig, InductiveLearningSubsystem
from repro.ker import SchemaBinding
from repro.query import IntensionalQueryProcessor
from repro.relational.textio import dumps_database, loads_database
from repro.testbed import ship_ker_schema
from repro.testbed.generators import scaled_ship_database
from tests.conftest import EXAMPLE_1, EXAMPLE_3, SHIP_ORDER


class TestRelocationScenario:
    def test_knowledge_travels_with_database(self, ship_binding,
                                             ship_rules, ship_db):
        """Section 5.2.2's scenario end-to-end: induce at the source,
        relocate database+rules as text, answer queries at the remote
        site without re-running the ILS."""
        dictionary = IntelligentDataDictionary.build(
            ship_binding, ship_rules, include_schema_rules=False)
        dictionary.store_into(ship_db)
        wire = dumps_database(ship_db)

        remote_db = loads_database(wire)
        remote_dictionary = IntelligentDataDictionary.load_from(
            remote_db, ship_ker_schema())
        remote_binding = SchemaBinding(ship_ker_schema(), remote_db)
        system = IntensionalQueryProcessor(
            remote_db, remote_dictionary.rules, binding=remote_binding)

        result = system.ask(EXAMPLE_1)
        assert len(result.extensional) == 2
        assert result.inference.forward_subtypes() == ["SSBN"]


class TestScaledDatabase:
    def test_scaling_preserves_class_rules(self):
        db = scaled_ship_database(scale=5)
        binding = SchemaBinding(ship_ker_schema(), db)
        rules = InductiveLearningSubsystem(
            binding, InductionConfig(n_c=3),
            relation_order=SHIP_ORDER).induce()
        rendered = rules.render(isa_style=True)
        # CLASS-level knowledge is scale-invariant.
        assert "7250 <= CLASS.Displacement <= 30000 then x isa SSBN" in (
            rendered)
        assert "2145 <= CLASS.Displacement <= 6955 then x isa SSN" in (
            rendered)

    def test_scaled_system_answers_example3(self):
        db = scaled_ship_database(scale=3)
        system = IntensionalQueryProcessor.from_database(
            db, ker_schema=ship_ker_schema(), relation_order=SHIP_ORDER)
        result = system.ask(EXAMPLE_3)
        assert len(result.extensional) == 12  # 4 ships x 3 copies
        assert "SSN" in result.inference.forward_subtypes()


class TestConfigurationMatrix:
    @pytest.mark.parametrize("use_quel", [False, True])
    @pytest.mark.parametrize("n_c", [1, 3])
    def test_system_builds_under_all_configs(self, ship_db, use_quel,
                                             n_c):
        system = IntensionalQueryProcessor.from_database(
            ship_db, ker_schema=ship_ker_schema(),
            config=InductionConfig(n_c=n_c, use_quel=use_quel),
            relation_order=SHIP_ORDER)
        result = system.ask(EXAMPLE_1)
        assert result.inference.forward_subtypes() == ["SSBN"]

    def test_baseline_vs_induced_on_same_binding(self, ship_binding,
                                                 ship_system):
        baseline = ConstraintOnlyAnswerer.from_binding(ship_binding)
        induced_result = ship_system.ask(EXAMPLE_1)
        baseline_result = baseline.ask(EXAMPLE_1)
        # Both derive SSBN here (the schema declares the displacement
        # split too) -- but only induction carries hull-number rules.
        assert induced_result.inference.forward_subtypes() == ["SSBN"]
        assert baseline_result.inference.forward_subtypes() == ["SSBN"]
        induced_premises = {ref.render() for rule in ship_system.rules
                            for ref in rule.lhs_attributes()}
        baseline_premises = {ref.render() for rule in baseline.rules
                             for ref in rule.lhs_attributes()}
        assert "SUBMARINE.Id" in induced_premises
        assert "SUBMARINE.Id" not in baseline_premises


class TestMutationThenReinduction:
    def test_new_data_changes_rules(self, ship_db, ship_schema):
        """Example 2 discusses R_new (Class = 1301 -> SSBN) being pruned
        for having a single supporting instance.  Adding a sibling
        Typhoon-era class makes the range rule reach support 2, so it
        survives at N_c=2 but still not at the default 3."""
        ship_db.insert("CLASS", [("1302", "Typhoon II", "SSBN", 29000)])
        binding = SchemaBinding(ship_schema, ship_db)
        at_two = InductiveLearningSubsystem(
            binding, InductionConfig(n_c=2),
            relation_order=SHIP_ORDER).induce()
        assert "1301 <= CLASS.Class <= 1302" in at_two.render()
        at_three = InductiveLearningSubsystem(
            binding, InductionConfig(n_c=3),
            relation_order=SHIP_ORDER).induce()
        assert "1301" not in at_three.render()
