"""Unit tests for the KER schema linter."""

import pytest

from repro.ker import SchemaBinding, parse_ker
from repro.ker.analysis import analyze_binding, analyze_schema
from repro.relational import Database, INTEGER, char


def codes(findings):
    return [finding.code for finding in findings]


class TestShipSchemaIsClean:
    def test_static(self, ship_schema):
        findings = analyze_schema(ship_schema)
        # The INSTALL structure rules legitimately conclude across
        # hierarchies (y isa SONAR concluding x isa SSN) -- warnings,
        # not errors; everything else is clean.
        assert all(finding.severity == "warning" for finding in findings)
        assert set(codes(findings)) <= {"cross-type-conclusion"}

    def test_bound(self, ship_binding):
        findings = analyze_binding(ship_binding)
        assert all(finding.severity == "warning" for finding in findings)


class TestStaticChecks:
    def test_missing_derivation(self):
        schema = parse_ker("""
        object type T
            has key: A domain: CHAR[4]
        T contains SUB
        """)
        findings = analyze_schema(schema)
        assert "no-derivation" in codes(findings)

    def test_overlapping_siblings(self):
        schema = parse_ker("""
        object type T
            has key: A domain: INTEGER
        T contains LOW, HIGH
        LOW isa T with 1 <= A <= 10
        HIGH isa T with 5 <= A <= 20
        """)
        findings = analyze_schema(schema)
        overlap = [f for f in findings if f.code == "overlap"]
        assert len(overlap) == 1
        assert overlap[0].severity == "error"

    def test_disjoint_siblings_clean(self):
        schema = parse_ker("""
        object type T
            has key: A domain: INTEGER
        T contains LOW, HIGH
        LOW isa T with 1 <= A <= 10
        HIGH isa T with 11 <= A <= 20
        """)
        assert "overlap" not in codes(analyze_schema(schema))

    def test_dangling_domain(self):
        from repro.ker.model import Attribute, KerSchema, ObjectType
        schema = KerSchema()
        schema.add_object_type(ObjectType("T", [
            Attribute("A", "GHOST_DOMAIN", is_key=True)]))
        findings = analyze_schema(schema)
        assert "dangling-domain" in codes(findings)

    def test_undeclared_conclusion_subtype(self):
        schema = parse_ker("""
        object type T
            has key: A domain: INTEGER
            with
                if x isa T and x.A >= 5 then x isa PHANTOM
        """)
        findings = analyze_schema(schema)
        errors = [f for f in findings
                  if f.code == "cross-type-conclusion"
                  and f.severity == "error"]
        assert errors


class TestDataChecks:
    @pytest.fixture()
    def toy(self):
        schema = parse_ker("""
        object type G
            has key: Gid domain: INTEGER
            has: Kind    domain: CHAR[2]
            with
                Gid in [0..100]
        G contains GA, GB
        GA isa G with Kind = "a"
        GB isa G with Kind = "b"
        object type E
            has key: Eid domain: INTEGER
            has: Gid     domain: G
        """)
        db = Database()
        db.create("G", [("Gid", INTEGER), ("Kind", char(2))],
                  rows=[(1, "a"), (2, "b")], key=["Gid"])
        db.create("E", [("Eid", INTEGER), ("Gid", INTEGER)],
                  rows=[(10, 1), (11, 2)], key=["Eid"])
        return schema, db

    def test_clean_binding(self, toy):
        schema, db = toy
        assert analyze_binding(SchemaBinding(schema, db)) == []

    def test_foreign_key_orphan(self, toy):
        schema, db = toy
        db.insert("E", [(12, 99)])
        findings = analyze_binding(SchemaBinding(schema, db))
        orphan = [f for f in findings if f.code == "foreign-key-orphan"]
        assert orphan and "99" in orphan[0].message

    def test_range_violation(self, toy):
        schema, db = toy
        db.insert("G", [(500, "a")])
        findings = analyze_binding(SchemaBinding(schema, db))
        assert "range-violation" in codes(findings)

    def test_uncovered_value(self, toy):
        schema, db = toy
        db.insert("G", [(3, "zz")])
        findings = analyze_binding(SchemaBinding(schema, db))
        uncovered = [f for f in findings if f.code == "uncovered-value"]
        assert uncovered and "'zz'" in uncovered[0].message

    def test_finding_render(self, toy):
        schema, db = toy
        db.insert("G", [(3, "zz")])
        (finding,) = [f for f in analyze_binding(SchemaBinding(schema, db))
                      if f.code == "uncovered-value"]
        assert finding.render().startswith("[warning] uncovered-value")
