"""Unit tests for binding a KER schema to a database."""

import pytest

from repro.errors import KerError
from repro.ker import SchemaBinding, parse_ker
from repro.relational import Database, INTEGER, char
from repro.rules.clause import AttributeRef, Interval


class TestShipBinding:
    def test_backed_types(self, ship_binding):
        assert ship_binding.is_backed("SUBMARINE")
        assert not ship_binding.is_backed("SSBN")

    def test_virtual_subtype_resolves_to_ancestor_relation(
            self, ship_binding):
        assert ship_binding.relation_name_of("SSBN") == "CLASS"
        assert ship_binding.relation_name_of("C0101") == "SUBMARINE"
        assert ship_binding.relation_name_of("BQS") == "SONAR"

    def test_attribute_ref(self, ship_binding):
        ref = ship_binding.attribute_ref("SSBN", "Displacement")
        assert ref == AttributeRef("CLASS", "Displacement")

    def test_attribute_ref_unknown(self, ship_binding):
        with pytest.raises(KerError, match="no attribute"):
            ship_binding.attribute_ref("SUBMARINE", "Bogus")

    def test_domains(self, ship_binding):
        domains = ship_binding.domains()
        assert domains[AttributeRef("CLASS", "Displacement")] == (
            Interval.closed(2000, 30000))

    def test_foreign_keys(self, ship_binding):
        pairs = {(a.render(), b.render())
                 for a, b in ship_binding.foreign_key_pairs()}
        assert ("INSTALL.Ship", "SUBMARINE.Id") in pairs
        assert ("INSTALL.Sonar", "SONAR.Sonar") in pairs
        assert ("SUBMARINE.Class", "CLASS.Class") in pairs
        assert ("CLASS.Type", "TYPE.Type") in pairs

    def test_validate_instances_clean(self, ship_binding):
        assert ship_binding.validate_instances() == []

    def test_validate_instances_catches_violation(self, ship_db,
                                                  ship_schema):
        ship_db.insert("CLASS", [("9999", "Phantom", "SSN", 99999)])
        binding = SchemaBinding(ship_schema, ship_db)
        violations = binding.validate_instances()
        assert any("99999" in violation for violation in violations)

    def test_schema_rules(self, ship_binding):
        rules = ship_binding.schema_rules()
        rendered = rules.render(isa_style=True)
        assert "then x isa SSBN" in rendered
        assert "then x isa BQS" in rendered
        assert all(rule.source == "schema" for rule in rules)
        assert len(rules) == 11


class TestBindingChecks:
    def test_missing_column_detected(self):
        schema = parse_ker(
            "object type T\nhas key: A domain: INTEGER\n"
            "has: B domain: INTEGER")
        db = Database()
        db.create("T", [("A", INTEGER)], rows=[(1,)])
        with pytest.raises(KerError, match="lacks column"):
            SchemaBinding(schema, db)

    def test_type_mismatch_detected(self):
        schema = parse_ker("object type T\nhas key: A domain: INTEGER")
        db = Database()
        db.create("T", [("A", char(4))], rows=[("x",)])
        with pytest.raises(KerError, match="declares"):
            SchemaBinding(schema, db)

    def test_unbacked_type_is_fine(self):
        schema = parse_ker("object type GHOST\nhas key: A domain: INTEGER")
        SchemaBinding(schema, Database())  # no error

    def test_relation_map(self):
        schema = parse_ker("object type T\nhas key: A domain: INTEGER")
        db = Database()
        db.create("T_STORE", [("A", INTEGER)], rows=[(1,)])
        binding = SchemaBinding(schema, db, relation_map={"T": "T_STORE"})
        assert binding.relation_name_of("T") == "T_STORE"

    def test_conclusion_without_derivation_spec(self):
        schema = parse_ker("""
        object type T
            has key: A domain: INTEGER
        T contains SUB
            with
                if x isa T and x.A >= 5 then x isa SUB
        """)
        db = Database()
        db.create("T", [("A", INTEGER)], rows=[(1,)])
        binding = SchemaBinding(schema, db)
        with pytest.raises(KerError, match="derivation spec"):
            binding.schema_rules()
