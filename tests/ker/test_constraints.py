"""Unit tests for the with-constraint classes and DDL interval rendering."""

import pytest

from repro.ker.constraints import (
    ClassificationRule, ConstraintRule, DomainRangeConstraint,
    render_interval_ddl,
)
from repro.rules.clause import Interval


class TestRenderIntervalDdl:
    def test_point_string_quoted(self):
        assert render_interval_ddl(
            Interval.point("SSBN"), "Type") == 'Type = "SSBN"'

    def test_point_integer_unquoted(self):
        assert render_interval_ddl(Interval.point(5), "A") == "A = 5"

    def test_closed_range(self):
        assert render_interval_ddl(
            Interval.closed("0101", "0103"), "Class") == (
            '"0101" <= Class <= "0103"')

    def test_open_bounds(self):
        text = render_interval_ddl(
            Interval(1, 5, low_open=True, high_open=True), "A")
        assert text == "1 < A < 5"

    def test_half_bounded(self):
        assert render_interval_ddl(Interval.at_least(5), "A") == "5 <= A"
        assert render_interval_ddl(Interval.at_most(5), "A") == "A <= 5"

    def test_quote_escaping(self):
        assert render_interval_ddl(
            Interval.point('a"b'), "A") == 'A = "a\\"b"'


class TestDomainRangeConstraint:
    def test_render_interval(self):
        constraint = DomainRangeConstraint(
            "Displacement", interval=Interval.closed(2000, 30000))
        assert constraint.render() == "Displacement in [2000..30000]"

    def test_render_open_interval(self):
        constraint = DomainRangeConstraint(
            "P", interval=Interval(0, 1, low_open=True, high_open=True))
        assert constraint.render() == "P in (0..1)"

    def test_render_value_set(self):
        constraint = DomainRangeConstraint("Grade", values=["A", "B"])
        assert constraint.render() == "Grade in set of {A, B}"

    def test_equality_case_insensitive_attribute(self):
        left = DomainRangeConstraint("age", interval=Interval.closed(0, 9))
        right = DomainRangeConstraint("AGE",
                                      interval=Interval.closed(0, 9))
        assert left == right


class TestConstraintRule:
    def test_render_parseable(self):
        rule = ConstraintRule(
            [("Class", Interval.closed("0101", "0103"))],
            "Type", Interval.point("SSBN"))
        assert rule.render() == (
            'if "0101" <= Class <= "0103" then Type = "SSBN"')

    def test_equality(self):
        make = lambda: ConstraintRule(
            [("A", Interval.closed(1, 2))], "B", Interval.point(3))
        assert make() == make()


class TestClassificationRule:
    def test_render_includes_roles(self):
        rule = ClassificationRule(
            [("x", "SUBMARINE"), ("y", "SONAR")],
            [("x", "Class", Interval.point("0203"))],
            "y", "BQQ")
        assert rule.render() == (
            'if x isa SUBMARINE and y isa SONAR and x.Class = "0203" '
            "then y isa BQQ")

    def test_role_type_lookup(self):
        rule = ClassificationRule(
            [("x", "SHIP")], [("x", "Tons", Interval.at_least(5))],
            "x", "HEAVY")
        assert rule.role_type("X") == "SHIP"
        assert rule.role_type("zz") is None
