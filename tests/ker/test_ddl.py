"""Unit tests for the KER DDL parser (Appendix A grammar)."""

import pytest

from repro.errors import KerError, ParseError
from repro.ker import parse_ker
from repro.relational.datatypes import INTEGER, char
from repro.rules.clause import Clause, Interval
from repro.testbed import SHIP_SCHEMA_DDL, ship_ker_schema


class TestDomains:
    def test_char_domain(self):
        schema = parse_ker("domain: NAME isa CHAR[20]")
        assert schema.resolve_datatype("NAME") == char(20)

    def test_derived_domain(self):
        schema = parse_ker(
            "domain: NAME isa CHAR[20]\ndomain: SHIP_NAME isa NAME")
        assert schema.resolve_datatype("SHIP_NAME") == char(20)

    def test_range_domain(self):
        schema = parse_ker("domain: AGE isa integer range [0..200]")
        assert schema.domain_interval("AGE") == Interval.closed(0, 200)

    def test_range_without_keyword(self):
        schema = parse_ker("domain: AGE isa integer [0..200]")
        assert schema.domain_interval("AGE") == Interval.closed(0, 200)

    def test_open_range(self):
        schema = parse_ker("domain: P isa real (0..1)")
        interval = schema.domain_interval("P")
        assert interval.low_open and interval.high_open

    def test_set_domain(self):
        schema = parse_ker(
            'domain: GRADE isa string set of {"A", "B", "C"}')
        assert schema.domain("GRADE").values == ("A", "B", "C")


class TestObjectTypes:
    DDL = """
    object type EMP
        has key: Id     domain: CHAR[8]
        has:     Name   domain: CHAR[20]
        has:     Age    domain: INTEGER
        with
            Age in [18..65]
            if 18 <= Age <= 25 then Name = "junior"
    """

    def test_attributes(self):
        schema = parse_ker(self.DDL)
        emp = schema.object_type("EMP")
        assert [a.name for a in emp.attributes] == ["Id", "Name", "Age"]
        assert emp.attribute("Id").is_key

    def test_range_constraint(self):
        schema = parse_ker(self.DDL)
        emp = schema.object_type("EMP")
        assert len(emp.range_constraints) == 1
        assert emp.range_constraints[0].interval == Interval.closed(18, 65)

    def test_constraint_rule(self):
        schema = parse_ker(self.DDL)
        emp = schema.object_type("EMP")
        (rule,) = emp.constraint_rules
        assert rule.premises == (("Age", Interval.closed(18, 25)),)
        assert rule.conclusion_attribute == "Name"
        assert rule.conclusion == Interval.point("junior")

    def test_range_constraint_unknown_attribute(self):
        with pytest.raises(KerError, match="unknown attribute"):
            parse_ker("object type T\nhas: A domain: INTEGER\n"
                      "with B in [1..2]")


class TestHierarchies:
    DDL = """
    object type SHIP
        has key: Id    domain: CHAR[8]
        has:     Kind  domain: CHAR[4]
    SHIP contains BIG, SMALL
    BIG isa SHIP with Kind = "big"
    SMALL isa SHIP with Kind = "small"
    """

    def test_contains(self):
        schema = parse_ker(self.DDL)
        assert sorted(schema.children_of("SHIP")) == ["BIG", "SMALL"]

    def test_membership_clauses(self):
        schema = parse_ker(self.DDL)
        (clause,) = schema.membership_clauses("BIG")
        assert clause == Clause.equals("SHIP.Kind", "big")

    def test_isa_requires_defined_parent(self):
        with pytest.raises(ParseError, match="must be defined before"):
            parse_ker('X isa GHOST with A = "b"')

    def test_classification_rule_single_role(self):
        schema = parse_ker("""
        object type SHIP
            has key: Id  domain: CHAR[8]
            has: Tons    domain: INTEGER
        SHIP contains HEAVY, LIGHT
            with
                if x isa SHIP and x.Tons >= 1000 then x isa HEAVY
                if x isa SHIP and x.Tons < 1000 then x isa LIGHT
        """)
        rules = schema.object_type("SHIP").classification_rules
        assert len(rules) == 2
        assert rules[0].subtype == "HEAVY"
        (premise,) = rules[0].premises
        assert premise[1] == "Tons"
        assert premise[2] == Interval.at_least(1000)

    def test_classification_rule_implicit_role(self):
        schema = parse_ker("""
        object type SHIP
            has key: Id  domain: CHAR[8]
            has: Tons    domain: INTEGER
        SHIP contains HEAVY
            with
                if x.Tons >= 1000 then x isa HEAVY
        """)
        (rule,) = schema.object_type("SHIP").classification_rules
        assert rule.roles == (("x", "SHIP"),)

    def test_two_role_structure_rule(self):
        schema = parse_ker("""
        object type A
            has key: Id  domain: CHAR[4]
        object type B
            has key: Id   domain: CHAR[4]
            has: Kind     domain: CHAR[4]
        B contains B1
        B1 isa B with Kind = "b1"
        object type LINK
            has: Left   domain: A
            has: Right  domain: B
            with
                if x isa A and y isa B and x.Id = "a7" then y isa B1
        """)
        (rule,) = schema.object_type("LINK").classification_rules
        assert dict(rule.roles) == {"x": "A", "y": "B"}
        assert rule.conclusion_variable == "y"
        assert rule.subtype == "B1"


class TestLexicalConventions:
    def test_dash_identifiers_as_constants(self):
        schema = parse_ker("""
        object type SONAR
            has key: Sonar  domain: CHAR[8]
        SONAR contains BQQ
            with
                if x isa SONAR and BQQ-2 <= x.Sonar <= BQQ-8 then x isa BQQ
        """)
        (rule,) = schema.object_type("SONAR").classification_rules
        assert rule.premises[0][2] == Interval.closed("BQQ-2", "BQQ-8")

    def test_leading_zero_numbers_are_strings(self):
        schema = parse_ker("""
        object type C
            has key: Class  domain: CHAR[4]
        C contains C1
            with
                if x isa C and x.Class = 0203 then x isa C1
        """)
        (rule,) = schema.object_type("C").classification_rules
        assert rule.premises[0][2] == Interval.point("0203")

    def test_comments_skipped(self):
        schema = parse_ker("""
        /* B.2 definitions */
        object type T
            has key: A domain: INTEGER  -- trailing comment
        """)
        assert schema.object_type("T").attribute("A") is not None

    def test_chained_comparison_requires_le(self):
        with pytest.raises(ParseError, match="< or <="):
            parse_ker("""
            object type T
                has: A domain: INTEGER
                with
                    if 5 >= A >= 1 then A = 1
            """)


class TestShipSchema:
    def test_parses(self):
        schema = ship_ker_schema()
        assert schema.has_object_type("SUBMARINE")
        assert schema.has_object_type("INSTALL")

    def test_hierarchies(self):
        schema = ship_ker_schema()
        assert sorted(schema.children_of("CLASS")) == ["SSBN", "SSN"]
        assert len(schema.children_of("SUBMARINE")) == 13
        assert sorted(schema.children_of("SONAR")) == [
            "BQQ", "BQS", "TACTAS"]

    def test_displacement_domain(self):
        schema = ship_ker_schema()
        (constraint,) = schema.object_type("CLASS").range_constraints
        assert constraint.interval == Interval.closed(2000, 30000)

    def test_install_structure_rules(self):
        schema = ship_ker_schema()
        rules = schema.object_type("INSTALL").classification_rules
        assert len(rules) == 4
        assert rules[-1].subtype == "SSN"

    def test_ddl_constant(self):
        assert "object type SUBMARINE" in SHIP_SCHEMA_DDL
