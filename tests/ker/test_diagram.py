"""Unit tests for KER text diagrams."""

from repro.ker.diagram import (
    render_hierarchy, render_object_type, render_schema, render_with_rules,
)


class TestObjectTypeRendering:
    def test_figure1_block(self, ship_schema):
        text = render_object_type(ship_schema, "SUBMARINE")
        assert text.startswith("object type SUBMARINE")
        assert "has key: Id" in text
        assert "domain: CLASS" in text

    def test_with_block_shown(self, ship_schema):
        text = render_object_type(ship_schema, "CLASS")
        assert "with" in text
        assert "Displacement in [2000..30000]" in text


class TestHierarchyRendering:
    def test_figure2_tree(self, ship_schema):
        text = render_hierarchy(ship_schema, "CLASS")
        assert text.splitlines()[0] == "CLASS"
        assert any("SSBN" in line for line in text.splitlines())
        assert any(line.startswith("`--") or line.startswith("|--")
                   for line in text.splitlines()[1:])

    def test_deep_tree_indents(self, ship_schema):
        text = render_hierarchy(ship_schema, "SUBMARINE")
        assert len(text.splitlines()) == 14  # root + 13 classes


class TestSchemaRendering:
    def test_appendix_b_style(self, ship_schema):
        text = render_schema(ship_schema)
        assert "domain: NAME isa char[20]" in text
        assert "object type SONAR" in text
        assert 'SSBN isa CLASS with Type = "SSBN"' in text

    def test_render_parse_round_trip(self, ship_schema):
        """The rendered schema is valid DDL describing the same model."""
        from repro.ker import parse_ker
        reparsed = parse_ker(render_schema(ship_schema))
        for object_type in ship_schema.object_types.values():
            again = reparsed.object_type(object_type.name)
            assert [a.name for a in again.attributes] == [
                a.name for a in object_type.attributes]
            assert again.constraint_rules == object_type.constraint_rules
            assert again.classification_rules == (
                object_type.classification_rules)
            assert again.range_constraints == object_type.range_constraints
        for link in ship_schema.links():
            assert reparsed.link_of(
                link.child).membership == link.membership


class TestFigure5:
    def test_with_rules(self, ship_schema, ship_rules):
        displacement_rules = [
            rule for rule in ship_rules
            if rule.lhs[0].attribute.attribute == "Displacement"]
        text = render_with_rules(ship_schema, "CLASS", displacement_rules)
        assert "with /* induced rules */" in text
        assert "then x isa SSBN" in text
        assert "then x isa SSN" in text
