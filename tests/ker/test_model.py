"""Unit tests for the KER model objects."""

import pytest

from repro.errors import KerError
from repro.ker.model import (
    Attribute, Domain, KerSchema, ObjectType,
)
from repro.relational.datatypes import INTEGER, char
from repro.rules.clause import AttributeRef, Clause, Interval


@pytest.fixture()
def schema():
    ker = KerSchema("test")
    person = ObjectType("PERSON", [
        Attribute("Id", char(8), is_key=True),
        Attribute("Name", char(20)),
        Attribute("Role", char(10)),
    ])
    ker.add_object_type(person)
    return ker


class TestDomains:
    def test_standard_domains_resolve(self, schema):
        assert schema.resolve_datatype("integer") == INTEGER
        assert schema.resolve_datatype("string") == char(None)

    def test_named_domain_chain(self, schema):
        schema.add_domain(Domain("NAME", base=char(20)))
        schema.add_domain(Domain("SHIP_NAME", parent="NAME"))
        assert schema.resolve_datatype("SHIP_NAME") == char(20)

    def test_domain_interval_inherited(self, schema):
        schema.add_domain(Domain("AGE", base=INTEGER,
                                 interval=Interval.closed(0, 200)))
        schema.add_domain(Domain("ADULT_AGE", parent="AGE"))
        assert schema.domain_interval("ADULT_AGE") == Interval.closed(0, 200)

    def test_object_type_domain_resolves_to_key(self, schema):
        assert schema.resolve_datatype("PERSON") == char(8)

    def test_object_domain_without_single_key(self, schema):
        schema.add_object_type(ObjectType("PAIR", [
            Attribute("A", INTEGER, is_key=True),
            Attribute("B", INTEGER, is_key=True)]))
        with pytest.raises(KerError, match="key"):
            schema.resolve_datatype("PAIR")

    def test_unknown_domain(self, schema):
        with pytest.raises(KerError, match="unknown domain"):
            schema.resolve_datatype("NOPE")

    def test_duplicate_domain_rejected(self, schema):
        schema.add_domain(Domain("D", base=INTEGER))
        with pytest.raises(KerError, match="already defined"):
            schema.add_domain(Domain("d", base=INTEGER))

    def test_domain_needs_base(self):
        with pytest.raises(KerError):
            Domain("EMPTY")


class TestObjectTypes:
    def test_attribute_lookup_case_insensitive(self, schema):
        person = schema.object_type("person")
        assert person.attribute("NAME").name == "Name"

    def test_duplicate_attribute_rejected(self, schema):
        person = schema.object_type("PERSON")
        with pytest.raises(KerError, match="already has attribute"):
            person.add_attribute(Attribute("name", char(5)))

    def test_key_attributes(self, schema):
        assert [a.name for a in
                schema.object_type("PERSON").key_attributes()] == ["Id"]

    def test_unknown_type(self, schema):
        with pytest.raises(KerError, match="unknown object type"):
            schema.object_type("GHOST")

    def test_ensure_idempotent(self, schema):
        first = schema.ensure_object_type("NEW")
        second = schema.ensure_object_type("new")
        assert first is second


class TestHierarchy:
    @pytest.fixture()
    def tree(self, schema):
        schema.add_subtype("PROFESSOR", "PERSON",
                           [Clause.equals("PERSON.Role", "prof")])
        schema.add_subtype("STUDENT", "PERSON",
                           [Clause.equals("PERSON.Role", "student")])
        schema.add_subtype("TA", "STUDENT",
                           [Clause.equals("PERSON.Role", "ta")])
        return schema

    def test_parent_children(self, tree):
        assert tree.parent_of("TA") == "STUDENT"
        assert sorted(tree.children_of("PERSON")) == [
            "PROFESSOR", "STUDENT"]

    def test_ancestors_descendants(self, tree):
        assert tree.ancestor_names("TA") == ["STUDENT", "PERSON"]
        assert tree.descendant_names("PERSON") == [
            "PROFESSOR", "STUDENT", "TA"]

    def test_is_subtype_of(self, tree):
        assert tree.is_subtype_of("TA", "PERSON")
        assert tree.is_subtype_of("TA", "TA")
        assert not tree.is_subtype_of("PERSON", "TA")

    def test_roots(self, tree):
        assert "PERSON" in tree.root_names()
        assert "TA" not in tree.root_names()

    def test_cycle_rejected(self, tree):
        with pytest.raises(KerError, match="cycle"):
            tree.add_subtype("PERSON", "TA")

    def test_conflicting_parent_rejected(self, tree):
        tree.ensure_object_type("OTHER")
        with pytest.raises(KerError, match="already has a supertype"):
            tree.add_subtype("TA", "PROFESSOR")

    def test_membership_refinement(self, schema):
        schema.declare_contains("PERSON", ["STAFF"])
        assert schema.membership_clauses("STAFF") == ()
        schema.add_subtype("STAFF", "PERSON",
                           [Clause.equals("PERSON.Role", "staff")])
        assert len(schema.membership_clauses("STAFF")) == 1

    def test_double_derivation_rejected(self, tree):
        with pytest.raises(KerError, match="derivation"):
            tree.add_subtype("TA", "STUDENT",
                             [Clause.equals("PERSON.Role", "xx")])

    def test_inheritance(self, tree):
        tree.object_type("TA").add_attribute(Attribute("Course", char(8)))
        names = [a.name for a in tree.attributes_of("TA")]
        assert names == ["Course", "Id", "Name", "Role"]

    def test_inheritance_override(self, tree):
        tree.object_type("STUDENT").add_attribute(
            Attribute("Name", char(40)))
        attributes = {a.name: a for a in tree.attributes_of("TA")}
        assert attributes["Name"].domain == char(40)

    def test_subtype_for_clause(self, tree):
        found = tree.subtype_for_clause(
            Clause.equals("PERSON.Role", "prof"))
        assert found == "PROFESSOR"
        assert tree.subtype_for_clause(
            Clause.equals("PERSON.Role", "nobody")) is None

    def test_subtype_for_interval(self, tree):
        found = tree.subtype_for_interval(
            AttributeRef("PERSON", "Role"), Interval.point("ta"))
        assert found == "TA"
