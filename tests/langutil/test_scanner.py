"""Unit tests for the shared scanner and token stream."""

import pytest

from repro.errors import ParseError
from repro.langutil import Scanner, TokenStream, TokenKind


def scan(text, **kwargs):
    return Scanner(**kwargs).scan(text)


class TestScanner:
    def test_identifiers_numbers_strings(self):
        tokens = scan('foo 42 3.5 "bar"')
        kinds = [t.kind for t in tokens]
        assert kinds == [TokenKind.IDENT, TokenKind.NUMBER,
                         TokenKind.NUMBER, TokenKind.STRING, TokenKind.EOF]
        assert tokens[1].value == 42
        assert tokens[2].value == 3.5
        assert tokens[3].value == "bar"

    def test_single_quoted_strings(self):
        tokens = scan("'hi there'")
        assert tokens[0].value == "hi there"

    def test_string_escapes(self):
        tokens = scan('"a\\"b"')
        assert tokens[0].value == 'a"b'

    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated string"):
            scan('"abc')

    def test_operators_longest_match(self):
        tokens = scan("<= < >= <> ..")
        texts = [t.text for t in tokens[:-1]]
        assert texts == ["<=", "<", ">=", "<>", ".."]

    def test_range_dots_not_decimal(self):
        tokens = scan("[0..200]")
        values = [t.text for t in tokens[:-1]]
        assert values == ["[", "0", "..", "200", "]"]

    def test_scientific_notation(self):
        tokens = scan("1e3 2.5E-2")
        assert tokens[0].value == 1000.0
        assert tokens[1].value == 0.025

    def test_comments_skipped(self):
        tokens = scan("a /* comment */ b -- eol\nc")
        assert [t.text for t in tokens[:-1]] == ["a", "b", "c"]

    def test_unterminated_comment(self):
        with pytest.raises(ParseError, match="unterminated comment"):
            scan("/* never ends")

    def test_dash_identifiers(self):
        tokens = scan("BQS-04 BQQ-2", ident_continue_dash=True)
        assert [t.text for t in tokens[:-1]] == ["BQS-04", "BQQ-2"]

    def test_dash_not_in_identifiers_by_default(self):
        tokens = scan("a-b")
        assert [t.text for t in tokens[:-1]] == ["a", "-", "b"]

    def test_identifier_never_ends_with_dash(self):
        tokens = scan("Class - 1", ident_continue_dash=True)
        assert [t.text for t in tokens[:-1]] == ["Class", "-", "1"]

    def test_positions(self):
        tokens = scan("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            scan("a @ b")


class TestTokenStream:
    def test_walkthrough(self):
        stream = TokenStream(scan("select a , b"))
        assert stream.accept_keyword("select")
        assert stream.expect_ident().text == "a"
        assert stream.accept_op(",")
        assert stream.at_keyword("b")
        stream.advance()
        assert stream.at_end()

    def test_expect_failures_carry_position(self):
        stream = TokenStream(scan("select"))
        stream.advance()
        with pytest.raises(ParseError, match="expected"):
            stream.expect_ident()

    def test_peek(self):
        stream = TokenStream(scan("a b"))
        assert stream.peek().text == "b"
        assert stream.peek(5).kind is TokenKind.EOF

    def test_advance_stops_at_eof(self):
        stream = TokenStream(scan(""))
        stream.advance()
        assert stream.at_end()

    def test_keyword_case_insensitive(self):
        stream = TokenStream(scan("SELECT"))
        assert stream.accept_keyword("select")
