"""Diagnostics must survive their own crashes: a JSONL export torn
mid-line by a killed process reloads to every complete record, never an
exception -- observability data is advisory, losing a line must not
lose the file."""

import io

from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import Tracer, load_jsonl, read_jsonl_tolerant


def torn_copy(path, cut=17):
    """Simulate a crash mid-append: drop the final *cut* bytes."""
    data = path.read_bytes()
    torn = path.with_suffix(".torn")
    torn.write_bytes(data[:-cut])
    return str(torn)


class TestTraceReload:
    def _tracer_with_spans(self, count=5):
        tracer = Tracer()
        for index in range(count):
            with tracer.span(f"work.{index}", index=index):
                pass
        return tracer

    def test_clean_roundtrip(self, tmp_path):
        tracer = self._tracer_with_spans()
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(str(path)) == 5
        records, torn = load_jsonl(str(path))
        assert len(records) == 5 and torn is False
        assert [r["name"] for r in records] == [
            f"work.{i}" for i in range(5)]

    def test_torn_tail_drops_only_final_record(self, tmp_path):
        tracer = self._tracer_with_spans()
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(str(path))
        records, torn = load_jsonl(torn_copy(path))
        assert torn is True
        assert [r["name"] for r in records] == [
            f"work.{i}" for i in range(4)]

    def test_garbage_line_mid_file_does_not_abort(self):
        stream = io.StringIO(
            '{"name": "a"}\nnot json at all\n{"name": "b"}\n[]\n')
        records, torn = read_jsonl_tolerant(stream)
        assert [r["name"] for r in records] == ["a", "b"]
        assert torn is True

    def test_empty_and_blank_files(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert read_jsonl_tolerant(str(path)) == ([], False)
        path.write_text("\n\n  \n")
        assert read_jsonl_tolerant(str(path)) == ([], False)


class TestSlowLogReload:
    def _log_with_entries(self, count=4):
        log = SlowQueryLog(threshold_s=0.0)
        for index in range(count):
            log.observe(f"SELECT {index}", 0.5 + index, rows=index)
        return log

    def test_clean_roundtrip(self, tmp_path):
        log = self._log_with_entries()
        path = tmp_path / "slow.jsonl"
        assert log.export_jsonl(str(path)) == 4
        fresh = SlowQueryLog(threshold_s=0.0)
        count, torn = fresh.load_jsonl(str(path))
        assert count == 4 and torn is False
        assert [e.statement for e in fresh] == [
            e.statement for e in log]

    def test_torn_tail_tolerated(self, tmp_path):
        log = self._log_with_entries()
        path = tmp_path / "slow.jsonl"
        log.export_jsonl(str(path))
        fresh = SlowQueryLog(threshold_s=0.0)
        count, torn = fresh.load_jsonl(torn_copy(path))
        assert torn is True
        assert count == 3
        assert len(fresh) == 3

    def test_malformed_record_skipped_not_fatal(self):
        stream = io.StringIO(
            '{"statement": "SELECT 1", "duration_s": 0.2, "rows": 3, '
            '"recorded_s": 1.0}\n'
            '{"statement": "no duration"}\n'
            '{"statement": "SELECT 2", "duration_s": "NaNish", '
            '"rows": null}\n')
        log = SlowQueryLog()
        count, torn = log.load_jsonl(stream)
        assert count == 1 and torn is True
        assert log.entries[0].statement == "SELECT 1"
