"""The obs facade: one flag gates every helper; disabled means no-op."""

import pytest

from repro import obs
from repro.obs.trace import NULL_SPAN


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestDisabled:
    def test_span_is_the_shared_null_span(self):
        assert obs.span("anything", a=1) is NULL_SPAN
        assert len(obs.tracer()) == 0

    def test_counters_absorb_everything(self):
        obs.counter("c").inc(10)
        obs.gauge("g").set(5)
        obs.histogram("h").observe(1.0)
        obs.record_span("s", 0.0, 1.0)
        obs.observe_query("SELECT 1", 99.0)
        assert obs.metrics().snapshot() == {}
        assert len(obs.tracer()) == 0
        assert len(obs.slow_queries()) == 0


class TestEnabled:
    def test_flag_roundtrip(self):
        assert obs.enabled() is False
        obs.enable()
        assert obs.enabled() is True
        obs.disable()
        assert obs.enabled() is False

    def test_span_records_when_enabled(self):
        obs.enable()
        with obs.span("work", n=2) as span:
            span.set(done=True)
        [recorded] = obs.tracer().spans
        assert recorded.name == "work"
        assert recorded.attributes == {"n": 2, "done": True}

    def test_counter_lands_in_the_registry(self):
        obs.enable()
        obs.counter("hits", "cache hits", result="hit").inc()
        assert obs.metrics().value("hits", result="hit") == 1

    def test_observe_query_feeds_histogram_and_slowlog(self):
        obs.enable()
        obs.slow_queries().set_threshold(0.1)
        obs.observe_query("SELECT fast", 0.001, rows=1)
        obs.observe_query("SELECT slow", 0.5, rows=9, kind="ask")
        snapshot = obs.metrics().snapshot()
        assert snapshot['query_seconds_count{kind="select"}'] == 1
        assert snapshot['query_seconds_count{kind="ask"}'] == 1
        assert snapshot["slow_queries_total"] == 1
        [entry] = obs.slow_queries()
        assert entry.statement == "SELECT slow"

    def test_disable_keeps_recorded_data(self):
        obs.enable()
        obs.counter("hits").inc()
        obs.disable()
        assert obs.metrics().value("hits") == 1
        obs.counter("hits").inc()  # no-op again
        assert obs.metrics().value("hits") == 1

    def test_reset_clears_everything(self):
        obs.enable()
        with obs.span("s"):
            pass
        obs.counter("c").inc()
        obs.slow_queries().observe("q", 1e9)
        obs.reset()
        assert len(obs.tracer()) == 0
        assert obs.metrics().snapshot() == {}
        assert len(obs.slow_queries()) == 0
        assert obs.enabled() is True  # reset keeps the flag
