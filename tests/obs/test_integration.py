"""End-to-end observability: EXPLAIN ANALYZE through every entry point
and the metrics story over a mixed workload.

This is the acceptance scenario of the observability layer: the same
``EXPLAIN ANALYZE`` must work from a raw SQL string, the system API and
the interactive shell; and after a mixed workload the metrics dump must
show the semantic optimizer short-circuiting on induced rules and the
query cache serving repeated asks -- the two signals that the paper's
machinery is actually engaged, not bypassed.
"""

import io
import re

import pytest

from repro import obs
from repro.cli import Shell, build_system
from repro.sql.executor import execute_statement
from repro.testbed import ship_database


@pytest.fixture(scope="module")
def system():
    return build_system()


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


ANALYZE_SQL = ("EXPLAIN ANALYZE SELECT Name FROM SUBMARINE "
               "WHERE SUBMARINE.Class = '0101'")

#: root line: "Project [...] (est N rows, actual N, time N.NNNms)"
TIMED_LINE = re.compile(r"est [\d.]+ rows, actual \d+, time [\d.]+ms")


class TestExplainAnalyzeEntryPoints:
    def test_from_sql_string(self):
        text = execute_statement(ship_database(), ANALYZE_SQL)
        assert "IndexScan SUBMARINE on Class" in text
        assert TIMED_LINE.search(text), text

    def test_from_system_api(self, system):
        text = system.explain_analyze(
            "SELECT Name FROM SUBMARINE WHERE SUBMARINE.Class = '0101'")
        assert TIMED_LINE.search(text), text
        # The EXPLAIN ANALYZE prefix is also accepted verbatim.
        assert TIMED_LINE.search(system.explain(ANALYZE_SQL))

    def test_plain_explain_has_no_timing(self, system):
        text = system.explain(
            "SELECT Name FROM SUBMARINE WHERE SUBMARINE.Class = '0101'")
        assert "actual" in text
        assert ", time " not in text

    def test_from_shell(self, system):
        shell = Shell(system, out=io.StringIO())
        shell.handle(ANALYZE_SQL)
        assert TIMED_LINE.search(shell.out.getvalue())

    def test_analyze_stays_a_legal_identifier(self, system):
        # ANALYZE is contextual: only special directly after EXPLAIN.
        result = system.ask(
            "SELECT Name FROM SUBMARINE WHERE SUBMARINE.Class = '0101'")
        assert len(result.extensional) >= 1


class TestMixedWorkloadMetrics:
    def test_workload_story(self, system):
        obs.enable()
        # Floor at zero so admission is deterministic regardless of how
        # fast this machine runs the first ask; force-enabled so the
        # hit assertions hold on the REPRO_CACHE=off CI leg too.
        from repro.cache import query_cache
        cache = query_cache(system.database)
        cache.enabled = True
        cache.floor_s = 0.0
        cache.clear()
        # Mixed workload: repeated asks (the query cache serves the
        # second from the intensional-answer cache), a rule-contradicted
        # query the semantic optimizer short-circuits, run twice so the
        # second EXPLAIN ANALYZE re-executes through the index cache.
        for _ in range(2):
            system.ask("SELECT Name FROM SUBMARINE "
                       "WHERE SUBMARINE.Class = '0101'")
        for _ in range(2):
            system.explain_analyze(
                "SELECT * FROM CLASS WHERE Displacement >= 8000 "
                "AND Displacement <= 20000 AND Type = 'SSN'")
        metrics = system.metrics()

        assert metrics['semantic_rewrites_total{kind="short_circuit"}'] >= 1
        ask_hits = [value for name, value in metrics.items()
                    if name.startswith('query_cache_requests_total')
                    and 'level="ask"' in name and 'result="hit"' in name]
        assert ask_hits and sum(ask_hits) >= 1
        assert metrics['query_seconds_count{kind="ask"}'] == 2

        spans = obs.tracer().named("plan.")
        assert spans, "planner spans should be recorded"

    def test_metrics_text_both_formats(self, system):
        obs.enable()
        system.ask("SELECT Name FROM SUBMARINE "
                   "WHERE SUBMARINE.Class = '0101'")
        table = system.metrics_text()
        prom = system.metrics_text(prometheus=True)
        assert "query_seconds_count" in table
        assert "# TYPE query_seconds histogram" in prom

    def test_disabled_workload_records_nothing(self, system):
        system.ask("SELECT Name FROM SUBMARINE "
                   "WHERE SUBMARINE.Class = '0101'")
        assert system.metrics() == {}
        assert len(obs.tracer()) == 0
