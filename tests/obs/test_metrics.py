"""Unit tests for the metrics registry and Prometheus rendering."""

import pytest

from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounters:
    def test_get_or_create_by_name_and_labels(self, registry):
        first = registry.counter("queries_total", type="select")
        again = registry.counter("queries_total", type="select")
        other = registry.counter("queries_total", type="insert")
        assert first is again
        assert first is not other

    def test_inc_and_value(self, registry):
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.value("hits") == 5
        assert registry.value("untouched") == 0

    def test_counters_only_go_up(self, registry):
        with pytest.raises(ValueError):
            registry.counter("hits").inc(-1)

    def test_kind_conflict_is_an_error(self, registry):
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")


class TestGauges:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert registry.value("depth") == 7


class TestHistograms:
    def test_cumulative_buckets(self, registry):
        histogram = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        series = dict(histogram.series())
        assert series['lat_bucket{le="0.1"}'] == 1
        assert series['lat_bucket{le="1.0"}'] == 2
        assert series['lat_bucket{le="+Inf"}'] == 3
        assert series["lat_count"] == 3
        assert series["lat_sum"] == pytest.approx(5.55)

    def test_value_refuses_histograms(self, registry):
        registry.histogram("lat").observe(1.0)
        with pytest.raises(TypeError):
            registry.value("lat")


class TestRendering:
    def test_snapshot_is_flat_and_sorted(self, registry):
        registry.counter("b_total", result="hit").inc()
        registry.counter("a_total").inc(2)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a_total", 'b_total{result="hit"}']
        assert snapshot["a_total"] == 2

    def test_render_empty(self, registry):
        assert registry.render() == "(no metrics recorded)"

    def test_render_table(self, registry):
        registry.counter("hits").inc(3)
        assert "hits  3" in registry.render()

    def test_prometheus_format(self, registry):
        registry.counter("queries_total", "queries served",
                         type="select").inc(2)
        registry.counter("queries_total", "queries served",
                         type="insert").inc()
        text = registry.render_prometheus()
        assert "# HELP queries_total queries served" in text
        assert "# TYPE queries_total counter" in text
        assert 'queries_total{type="select"} 2' in text
        assert 'queries_total{type="insert"} 1' in text
        # HELP/TYPE once per base name, not per series.
        assert text.count("# TYPE queries_total") == 1

    def test_prometheus_histogram_type(self, registry):
        registry.histogram("lat", "latency").observe(0.2)
        text = registry.render_prometheus()
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="+Inf"} 1' in text

    def test_reset(self, registry):
        registry.counter("hits").inc()
        registry.reset()
        assert registry.snapshot() == {}
