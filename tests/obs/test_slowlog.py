"""Unit tests for the slow-query log."""

import pytest

from repro.obs.slowlog import SlowQueryLog


class TestThreshold:
    def test_only_over_threshold_queries_are_kept(self):
        log = SlowQueryLog(threshold_s=0.1)
        assert log.observe("SELECT fast", 0.05) is False
        assert log.observe("SELECT slow", 0.25, rows=7) is True
        assert len(log) == 1
        [entry] = log
        assert entry.statement == "SELECT slow"
        assert entry.rows == 7

    def test_threshold_is_runtime_configurable(self):
        log = SlowQueryLog(threshold_s=1.0)
        log.set_threshold(0.01)
        assert log.observe("SELECT x", 0.02) is True
        with pytest.raises(ValueError):
            log.set_threshold(-1)


class TestRetention:
    def test_ring_buffer_evicts_oldest(self):
        log = SlowQueryLog(threshold_s=0.0, capacity=2)
        for index in range(4):
            log.observe(f"q{index}", 1.0)
        assert [entry.statement for entry in log] == ["q2", "q3"]

    def test_clear(self):
        log = SlowQueryLog(threshold_s=0.0)
        log.observe("q", 1.0)
        log.clear()
        assert len(log) == 0


class TestRendering:
    def test_empty_render_names_the_threshold(self):
        assert "100ms" in SlowQueryLog(threshold_s=0.1).render()

    def test_render_lists_entries(self):
        log = SlowQueryLog(threshold_s=0.0)
        log.observe("SELECT * FROM S", 0.2, rows=3)
        text = log.render()
        assert "SELECT * FROM S" in text
        assert "3 rows" in text
        assert "200.00ms" in text

    def test_unknown_cardinality_renders_as_question_mark(self):
        log = SlowQueryLog(threshold_s=0.0)
        log.observe("SELECT ?", 0.2)
        assert "? rows" in log.render()
