"""Unit tests for the tracer: nesting, ring buffer, export."""

import io
import json

import pytest

from repro.obs.trace import NULL_SPAN, Tracer, traced


class TestSpans:
    def test_span_records_name_and_attributes(self):
        tracer = Tracer()
        with tracer.span("work", size=3) as span:
            span.set(rows=7)
        [recorded] = tracer.spans
        assert recorded.name == "work"
        assert recorded.attributes == {"size": 3, "rows": 7}
        assert recorded.end_s is not None
        assert recorded.duration_s >= 0.0

    def test_spans_nest(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert (outer.depth, inner.depth) == (0, 1)
        # Completed in close order: inner lands first.
        assert [span.name for span in tracer.spans] == ["inner", "outer"]

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        [span] = tracer.spans
        assert span.attributes["error"] == "ValueError"

    def test_record_appends_caller_timed_span(self):
        tracer = Tracer()
        span = tracer.record("node", 10.0, 10.5, rows=4)
        assert span.duration_s == pytest.approx(0.5)
        assert span.attributes == {"rows": 4}
        assert list(tracer.spans) == [span]

    def test_record_inherits_open_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            child = tracer.record("child", 0.0, 1.0)
        assert child.parent_id == parent.span_id
        assert child.depth == 1


class TestRingBuffer:
    def test_oldest_spans_are_evicted(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [span.name for span in tracer.spans] == ["s2", "s3", "s4"]

    def test_tail_and_named(self):
        tracer = Tracer()
        for index in range(4):
            with tracer.span(f"plan.node.{index}"):
                pass
        with tracer.span("other"):
            pass
        assert [s.name for s in tracer.tail(2)] == ["plan.node.3", "other"]
        assert tracer.tail(0) == []
        assert len(tracer.named("plan.node.")) == 4

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert len(tracer) == 0


class TestExport:
    def test_jsonl_roundtrip_via_stream(self):
        tracer = Tracer()
        with tracer.span("a", n=1):
            pass
        buffer = io.StringIO()
        assert tracer.export_jsonl(buffer) == 1
        record = json.loads(buffer.getvalue())
        assert record["name"] == "a"
        assert record["attributes"] == {"n": 1}
        assert record["duration_s"] >= 0.0

    def test_jsonl_to_path(self, tmp_path):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("s"):
                pass
        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(str(path)) == 3
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert all(json.loads(line)["name"] == "s" for line in lines)

    def test_non_json_attributes_fall_back_to_repr(self):
        tracer = Tracer()
        with tracer.span("odd", payload={1, 2}):
            pass
        buffer = io.StringIO()
        tracer.export_jsonl(buffer)
        assert json.loads(buffer.getvalue())["attributes"]["payload"]


class TestDecorator:
    def test_traced_uses_explicit_factory(self):
        tracer = Tracer()

        @traced("timed.call", span_factory=tracer.span)
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        [span] = tracer.spans
        assert span.name == "timed.call"

    def test_traced_defaults_to_function_name_and_obs(self):
        @traced()
        def quiet():
            return 42

        # Observability disabled: runs through NULL_SPAN, still works.
        assert quiet() == 42


class TestNullSpan:
    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            assert span.set(anything=1) is span
