"""Property-based equivalence: the cost-based planner must return the
same bag of rows as the legacy executor for every supported SELECT.

Queries are generated over the ship test bed: random FROM scenarios
(with their natural join conditions), random filter conjuncts drawn
from per-column literal pools (in-domain, boundary, and out-of-domain
values), random projections, DISTINCT, and ORDER BY.  Relation
equality is bag equality, so plan-dependent row order is ignored.
"""

from hypothesis import given, settings, strategies as st

from repro.induction import InductionConfig, InductiveLearningSubsystem
from repro.ker import SchemaBinding
from repro.plan.planner import plan_select
from repro.plan.plans import UNBOUNDED
from repro.relational import compiled
from repro.sql.executor import execute_select, execute_select_legacy
from repro.sql.parser import parse_select
from repro.testbed import ship_database, ship_ker_schema

# One read-only database and rule base for every generated query
# (hypothesis runs many examples; function-scoped fixtures don't mix
# with @given).
DB = ship_database()
RULES = InductiveLearningSubsystem(
    SchemaBinding(ship_ker_schema(), DB), InductionConfig(n_c=3),
    relation_order=["SUBMARINE", "CLASS", "SONAR", "INSTALL"]).induce()

#: FROM scenarios: tables plus the join conditions that connect them.
SCENARIOS = [
    (["SUBMARINE"], []),
    (["CLASS"], []),
    (["SONAR"], []),
    (["SUBMARINE", "CLASS"], ["SUBMARINE.Class = CLASS.Class"]),
    (["SUBMARINE", "INSTALL"], ["SUBMARINE.Id = INSTALL.Ship"]),
    (["INSTALL", "SONAR"], ["INSTALL.Sonar = SONAR.Sonar"]),
    (["SUBMARINE", "INSTALL", "SONAR"],
     ["SUBMARINE.Id = INSTALL.Ship", "INSTALL.Sonar = SONAR.Sonar"]),
    (["SUBMARINE", "CLASS", "INSTALL"],
     ["SUBMARINE.Class = CLASS.Class", "SUBMARINE.Id = INSTALL.Ship"]),
    (["SUBMARINE", "TYPE"], []),  # cartesian product
]

#: Filterable columns with literal pools mixing matching, boundary and
#: missing values.  Strings are SQL-quoted here.
COLUMNS = {
    "SUBMARINE": [
        ("Id", ["'SSBN623'", "'SSN648'", "'SSN700'", "'XXX'"]),
        ("Class", ["'0101'", "'0103'", "'0204'", "'9999'"]),
    ],
    "CLASS": [
        ("Class", ["'0101'", "'0103'", "'0215'", "'9999'"]),
        ("Type", ["'SSN'", "'SSBN'", "'ZZZ'"]),
        ("Displacement", ["0", "2145", "6955", "8000", "30000", "99999"]),
    ],
    "SONAR": [
        ("Sonar", ["'BQQ-2'", "'BQS-04'", "'NONE'"]),
        ("SonarType", ["'BQQ'", "'BQS'", "'ZZZ'"]),
    ],
    "INSTALL": [
        ("Ship", ["'SSBN623'", "'SSN648'", "'XXX'"]),
        ("Sonar", ["'BQQ-2'", "'BQS-04'", "'NONE'"]),
    ],
    "TYPE": [
        ("Type", ["'SSN'", "'SSBN'", "'ZZZ'"]),
    ],
}

OPS = ["=", "<", "<=", ">", ">=", "!="]


@st.composite
def select_statements(draw):
    tables, joins = draw(st.sampled_from(SCENARIOS))
    conjuncts = list(joins)
    for _ in range(draw(st.integers(0, 3))):
        table = draw(st.sampled_from(tables))
        column, pool = draw(st.sampled_from(COLUMNS[table]))
        op = draw(st.sampled_from(OPS))
        literal = draw(st.sampled_from(pool))
        conjuncts.append(f"{table}.{column} {op} {literal}")

    projections = ["*"]
    for table in tables:
        for column, _pool in COLUMNS[table]:
            projections.append(f"{table}.{column}")
    items = draw(st.sampled_from(projections))
    distinct = draw(st.booleans()) and items != "*"

    sql = "SELECT " + ("DISTINCT " if distinct else "") + items
    sql += " FROM " + ", ".join(tables)
    if conjuncts:
        sql += " WHERE " + " AND ".join(conjuncts)
    if draw(st.booleans()) and items != "*":
        sql += f" ORDER BY {items}"
    return sql


@settings(max_examples=80, deadline=None)
@given(select_statements())
def test_planner_matches_legacy(sql):
    statement = parse_select(sql)
    planned = execute_select(DB, statement, use_planner=True, rules=RULES)
    legacy = execute_select_legacy(DB, statement)
    assert planned == legacy, sql


@settings(max_examples=40, deadline=None)
@given(select_statements())
def test_planner_without_rules_matches_legacy(sql):
    statement = parse_select(sql)
    planned = execute_select(DB, statement, use_planner=True)
    legacy = execute_select_legacy(DB, statement)
    assert planned == legacy, sql


@settings(max_examples=40, deadline=None)
@given(select_statements())
def test_explain_analyze_actuals_match_legacy(sql):
    """EXPLAIN ANALYZE instrumentation must not distort execution: the
    root node's measured actual row count equals the legacy executor's
    cardinality, and the rendered tree reports exactly that number."""
    import re

    from repro.plan.explain import explain_select
    from repro.plan.planner import plan_select

    statement = parse_select(sql)
    legacy = execute_select_legacy(DB, statement)

    planned = plan_select(DB, statement, rules=RULES)
    result = planned.execute()
    assert planned.root.actual_rows == len(result) == len(legacy), sql

    rendered = explain_select(DB, statement, rules=RULES, analyze=True)
    root_line = next(line for line in rendered.splitlines()
                     if not line.startswith(("semantic:", "cache:")))
    match = re.search(r"actual (\d+), time ", root_line)
    assert match is not None, rendered
    assert int(match.group(1)) == len(legacy), sql


@settings(max_examples=40, deadline=None)
@given(select_statements(), st.sampled_from([1, 7, None]))
def test_streaming_matches_materializing(sql, batch_size):
    """The morsel size is an implementation knob, never a semantic one:
    any streamed batch size produces *exactly* the rows (same order)
    that one unbounded batch -- the old materializing pipeline shape --
    produces, and the bag the legacy executor produces."""
    statement = parse_select(sql)
    streamed = plan_select(DB, statement, rules=RULES).execute(
        batch_size=batch_size)
    reference = plan_select(DB, statement, rules=RULES).execute(
        batch_size=UNBOUNDED)
    assert list(streamed.rows) == list(reference.rows), sql
    assert streamed == execute_select_legacy(DB, statement), sql


@settings(max_examples=25, deadline=None)
@given(select_statements())
def test_compiled_predicates_match_interpreted(sql):
    """Flipping ``compiled.ENABLED`` off restores the interpreted
    pre-refactor pipeline; results must be tuple-for-tuple identical."""
    statement = parse_select(sql)
    with_compiler = plan_select(DB, statement, rules=RULES).execute()
    legacy_compiled = execute_select_legacy(DB, statement)
    assert compiled.ENABLED
    try:
        compiled.ENABLED = False
        interpreted = plan_select(DB, statement, rules=RULES).execute()
        legacy_interpreted = execute_select_legacy(DB, statement)
    finally:
        compiled.ENABLED = True
    assert list(with_compiler.rows) == list(interpreted.rows), sql
    assert list(legacy_compiled.rows) == list(legacy_interpreted.rows), sql


@settings(max_examples=25, deadline=None)
@given(select_statements(), st.sampled_from(["COUNT(*)", "COUNT(Type)"]))
def test_aggregates_match_legacy(sql, aggregate):
    # Rewrite the generated projection into a single aggregate; COUNT
    # over the join output must agree between the two paths.
    body = sql.split(" FROM ", 1)[1].split(" ORDER BY ")[0]
    tables_part = body.split(" WHERE ")[0]
    if "Type" in aggregate and ("CLASS" not in tables_part
                                and "TYPE" not in tables_part):
        aggregate = "COUNT(*)"  # no table in scope has a Type column
    rewritten = f"SELECT {aggregate} FROM {body}"
    statement = parse_select(rewritten)
    planned = execute_select(DB, statement, use_planner=True, rules=RULES)
    legacy = execute_select_legacy(DB, statement)
    assert planned == legacy, rewritten
