"""Property-based equivalence: the cost-based planner must return the
same bag of rows as the legacy executor for every supported SELECT.

Queries are generated over a *matrix of domains* -- the paper's ship
test bed plus synthetic domains from :mod:`repro.synth` (see
``tests/domain_fixtures.py``): random FROM scenarios (with their
natural join conditions), random filter conjuncts drawn from
per-column literal pools (in-domain, boundary, and out-of-domain
values), random projections, DISTINCT, and ORDER BY.  Relation
equality is bag equality, so plan-dependent row order is ignored.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.plan import parallel
from repro.plan.planner import plan_select
from repro.plan.plans import UNBOUNDED
from repro.relational import columnar, compiled
from repro.sql.executor import execute_select, execute_select_legacy
from repro.sql.parser import parse_select
from tests.domain_fixtures import EQUIVALENCE_FIXTURES

# Read-only databases and rule bases shared by every generated query
# (hypothesis runs many examples; function-scoped fixtures don't mix
# with @given).
FIXTURES = EQUIVALENCE_FIXTURES

OPS = ["=", "<", "<=", ">", ">=", "!="]


@st.composite
def select_statements(draw):
    """Draw ``(fixture, sql)``: the domain and a query over it."""
    fixture = draw(st.sampled_from(FIXTURES))
    tables, joins = draw(st.sampled_from(fixture.scenarios))
    conjuncts = list(joins)
    for _ in range(draw(st.integers(0, 3))):
        table = draw(st.sampled_from(tables))
        column, pool = draw(st.sampled_from(fixture.columns[table]))
        op = draw(st.sampled_from(OPS))
        literal = draw(st.sampled_from(pool))
        conjuncts.append(f"{table}.{column} {op} {literal}")

    projections = ["*"]
    for table in tables:
        for column, _pool in fixture.columns[table]:
            projections.append(f"{table}.{column}")
    items = draw(st.sampled_from(projections))
    distinct = draw(st.booleans()) and items != "*"

    sql = "SELECT " + ("DISTINCT " if distinct else "") + items
    sql += " FROM " + ", ".join(tables)
    if conjuncts:
        sql += " WHERE " + " AND ".join(conjuncts)
    if draw(st.booleans()) and items != "*":
        sql += f" ORDER BY {items}"
    return fixture, sql


@settings(max_examples=80, deadline=None)
@given(select_statements())
def test_planner_matches_legacy(case):
    fixture, sql = case
    statement = parse_select(sql)
    planned = execute_select(fixture.database, statement,
                             use_planner=True, rules=fixture.rules)
    legacy = execute_select_legacy(fixture.database, statement)
    assert planned == legacy, f"[{fixture.name}] {sql}"


@settings(max_examples=40, deadline=None)
@given(select_statements())
def test_planner_without_rules_matches_legacy(case):
    fixture, sql = case
    statement = parse_select(sql)
    planned = execute_select(fixture.database, statement,
                             use_planner=True)
    legacy = execute_select_legacy(fixture.database, statement)
    assert planned == legacy, f"[{fixture.name}] {sql}"


@settings(max_examples=40, deadline=None)
@given(select_statements())
def test_explain_analyze_actuals_match_legacy(case):
    """EXPLAIN ANALYZE instrumentation must not distort execution: the
    root node's measured actual row count equals the legacy executor's
    cardinality, and the rendered tree reports exactly that number."""
    import re

    from repro.plan.explain import explain_select

    fixture, sql = case
    statement = parse_select(sql)
    legacy = execute_select_legacy(fixture.database, statement)

    planned = plan_select(fixture.database, statement,
                          rules=fixture.rules)
    result = planned.execute()
    assert planned.root.actual_rows == len(result) == len(legacy), sql

    rendered = explain_select(fixture.database, statement,
                              rules=fixture.rules, analyze=True)
    root_line = next(line for line in rendered.splitlines()
                     if not line.startswith(("semantic:", "cache:")))
    match = re.search(r"actual (\d+), time ", root_line)
    assert match is not None, rendered
    assert int(match.group(1)) == len(legacy), sql


@settings(max_examples=40, deadline=None)
@given(select_statements(), st.sampled_from([1, 7, None]))
def test_streaming_matches_materializing(case, batch_size):
    """The morsel size is an implementation knob, never a semantic one:
    any streamed batch size produces *exactly* the rows (same order)
    that one unbounded batch -- the old materializing pipeline shape --
    produces, and the bag the legacy executor produces."""
    fixture, sql = case
    statement = parse_select(sql)
    streamed = plan_select(fixture.database, statement,
                           rules=fixture.rules).execute(
        batch_size=batch_size)
    reference = plan_select(fixture.database, statement,
                            rules=fixture.rules).execute(
        batch_size=UNBOUNDED)
    assert list(streamed.rows) == list(reference.rows), sql
    assert streamed == execute_select_legacy(fixture.database,
                                             statement), sql


@settings(max_examples=25, deadline=None)
@given(select_statements())
def test_compiled_predicates_match_interpreted(case):
    """Flipping ``compiled.ENABLED`` off restores the interpreted
    pre-refactor pipeline; results must be tuple-for-tuple identical."""
    fixture, sql = case
    statement = parse_select(sql)
    with_compiler = plan_select(fixture.database, statement,
                                rules=fixture.rules).execute()
    legacy_compiled = execute_select_legacy(fixture.database, statement)
    assert compiled.ENABLED
    try:
        compiled.ENABLED = False
        interpreted = plan_select(fixture.database, statement,
                                  rules=fixture.rules).execute()
        legacy_interpreted = execute_select_legacy(fixture.database,
                                                   statement)
    finally:
        compiled.ENABLED = True
    assert list(with_compiler.rows) == list(interpreted.rows), sql
    assert list(legacy_compiled.rows) == list(legacy_interpreted.rows), sql


@settings(max_examples=25, deadline=None)
@given(select_statements(), st.sampled_from([1, 7, None]))
def test_columnar_matches_row_pipeline(case, batch_size):
    """REPRO_COLUMNAR is a storage/execution knob, never a semantic
    one: the fused columnar path yields tuple-for-tuple the rows of the
    row pipeline at every batch size, on the planner and the legacy
    executor, with compiled predicates on and off."""
    fixture, sql = case
    statement = parse_select(sql)

    def run():
        return plan_select(fixture.database, statement,
                           rules=fixture.rules).execute(
            batch_size=batch_size)

    before = columnar.FORCED
    try:
        columnar.set_enabled(True)
        fused = run()
        legacy_on = execute_select_legacy(fixture.database, statement)
        columnar.set_enabled(False)
        rowwise = run()
        legacy_off = execute_select_legacy(fixture.database, statement)
        assert list(fused.rows) == list(rowwise.rows), sql
        assert list(legacy_on.rows) == list(legacy_off.rows), sql
        columnar.set_enabled(True)
        assert compiled.ENABLED
        try:
            compiled.ENABLED = False
            interpreted = run()
        finally:
            compiled.ENABLED = True
        assert list(interpreted.rows) == list(rowwise.rows), sql
    finally:
        columnar.set_enabled(before)


@pytest.mark.skipif(not columnar.HAS_NUMPY, reason="numpy not installed")
@settings(max_examples=15, deadline=None)
@given(select_statements())
def test_columnar_pure_python_matches_numpy(case):
    """The pure-Python kernel fallback (no numpy) is row-identical to
    the vectorized path."""
    fixture, sql = case
    statement = parse_select(sql)
    before = columnar.FORCED
    try:
        columnar.set_enabled(True)
        vectorized = plan_select(fixture.database, statement,
                                 rules=fixture.rules).execute()
        columnar.set_numpy_enabled(False)
        try:
            pure = plan_select(fixture.database, statement,
                               rules=fixture.rules).execute()
        finally:
            columnar.set_numpy_enabled(True)
        assert list(vectorized.rows) == list(pure.rows), sql
    finally:
        columnar.set_enabled(before)


@settings(max_examples=25, deadline=None)
@given(select_statements(), st.booleans())
def test_aggregates_match_legacy(case, count_column):
    # Rewrite the generated projection into a single aggregate; COUNT
    # over the join output must agree between the two paths.
    fixture, sql = case
    aggregate = (f"COUNT({fixture.agg_column})" if count_column
                 else "COUNT(*)")
    body = sql.split(" FROM ", 1)[1].split(" ORDER BY ")[0]
    tables_part = body.split(" WHERE ")[0]
    if count_column and not any(table in tables_part
                                for table in fixture.agg_tables):
        aggregate = "COUNT(*)"  # no table in scope has that column
    rewritten = f"SELECT {aggregate} FROM {body}"
    statement = parse_select(rewritten)
    planned = execute_select(fixture.database, statement,
                             use_planner=True, rules=fixture.rules)
    legacy = execute_select_legacy(fixture.database, statement)
    assert planned == legacy, f"[{fixture.name}] {rewritten}"


@settings(max_examples=25, deadline=None)
@given(select_statements(), st.sampled_from([2, 4]),
       st.sampled_from([1, None]))
def test_parallel_matches_serial(case, worker_count, batch_size):
    """REPRO_PARALLEL is a performance knob, never a semantic one: with
    the DOP thresholds shrunk so fixture-sized tables actually fan out
    across exchange operators, every worker count yields tuple-for-tuple
    the serial plan's rows -- same order, not just the same bag -- on
    the fused columnar path and the pure row path, at every batch
    size."""
    fixture, sql = case
    statement = parse_select(sql)

    def run():
        return plan_select(fixture.database, statement,
                           rules=fixture.rules).execute(
            batch_size=batch_size)

    workers_before = parallel.FORCED
    columnar_before = columnar.FORCED
    morsel_before = parallel.MORSEL_ROWS
    per_worker_before = parallel.ROWS_PER_WORKER
    try:
        columnar.set_enabled(True)
        parallel.set_workers(1)
        serial = run()
        # Shrink the planner thresholds so these small fixtures plan
        # multi-worker pipelines with several morsels per pipeline.
        parallel.ROWS_PER_WORKER = 2
        parallel.MORSEL_ROWS = 3
        parallel.set_workers(worker_count)
        for fused in (True, False):
            columnar.set_enabled(fused)
            result = run()
            assert list(result.rows) == list(serial.rows), \
                f"[{fixture.name}] workers={worker_count} " \
                f"fused={fused} {sql}"
    finally:
        parallel.set_workers(workers_before)
        columnar.set_enabled(columnar_before)
        parallel.MORSEL_ROWS = morsel_before
        parallel.ROWS_PER_WORKER = per_worker_before
