"""EXPLAIN wiring tests: parser, executor dispatch, system, and CLI."""

import io

from repro.cli import Shell
from repro.plan.explain import explain_select, render_plan
from repro.plan.planner import plan_select
from repro.query import IntensionalQueryProcessor
from repro.sql import ast, execute_statement, parse_statement
from repro.sql.parser import parse_select


class TestParser:
    def test_explain_select_parses(self):
        statement = parse_statement("EXPLAIN SELECT * FROM CLASS")
        assert isinstance(statement, ast.ExplainStmt)
        assert isinstance(statement.select, ast.SelectStmt)

    def test_render_round_trip(self):
        statement = parse_statement("explain select Name from SUBMARINE")
        assert statement.render() == "EXPLAIN SELECT Name FROM SUBMARINE"


class TestRenderPlan:
    def test_estimated_and_actual(self, ship_db):
        planned = plan_select(
            ship_db,
            parse_select("SELECT * FROM CLASS WHERE Displacement > 8000"))
        before = render_plan(planned.plan, include_actual=True)
        assert "actual" not in before
        planned.execute()
        after = render_plan(planned.plan, include_actual=True)
        assert "est" in after and "actual" in after

    def test_tree_is_indented(self, ship_db):
        text = explain_select(
            ship_db,
            parse_select("SELECT * FROM SUBMARINE, CLASS "
                         "WHERE SUBMARINE.Class = CLASS.Class"))
        lines = text.splitlines()
        assert lines[0].startswith("cache: ")
        assert lines[1].startswith("Project")
        assert any(line.startswith("  ") for line in lines[2:])


class TestStatementDispatch:
    def test_execute_statement_returns_string(self, ship_db):
        text = execute_statement(
            ship_db, "EXPLAIN SELECT * FROM CLASS WHERE Displacement > 8000")
        assert isinstance(text, str)
        assert "IndexScan" in text
        assert "actual" in text


class TestSystemAndShell:
    def test_system_explain_uses_rules(self, ship_db, ship_rules):
        system = IntensionalQueryProcessor(ship_db, ship_rules)
        text = system.explain(
            "SELECT * FROM CLASS WHERE Displacement >= 8000 "
            "AND Displacement <= 20000 AND Type = 'SSN'")
        assert "semantic:" in text
        assert "Empty" in text

    def test_shell_explain_input(self, ship_db, ship_rules):
        out = io.StringIO()
        shell = Shell(IntensionalQueryProcessor(ship_db, ship_rules),
                      out=out)
        assert shell.handle(
            "EXPLAIN SELECT Name FROM SUBMARINE WHERE Class = '0103'")
        text = out.getvalue()
        assert "Project" in text
        assert "IndexScan" in text
