"""Regression: caches must not serve stale snapshots across mutations.

The scenario that motivates the version checks: a plan is *constructed*
(statistics snapshotted, access paths chosen), the underlying relation
then mutates, and only afterwards is the plan *executed*.  Index scans
resolve their index through the database's :class:`IndexCache` at
execution time, so the stale snapshot must be detected and rebuilt --
the result has to reflect the post-mutation rows, not the rows the
planner saw.  The observability counters double as the assertion that
the stale path (not a silent full rebuild of everything) was taken.
"""

import pytest

from repro import obs
from repro.plan.planner import plan_select
from repro.plan.stats import statistics
from repro.sql.executor import execute_select_legacy, execute_statement
from repro.sql.parser import parse_select
from repro.testbed import ship_database

SQL = "SELECT * FROM SUBMARINE WHERE SUBMARINE.Class = '0101'"
INSERT = ("INSERT INTO SUBMARINE (Id, Name, Class) "
          "VALUES ('SSN999', 'Phantom', '0101')")


@pytest.fixture
def observed():
    """Observability on, with clean metrics, for the test's duration."""
    obs.reset()
    obs.enable()
    yield obs.metrics()
    obs.disable()
    obs.reset()


def test_index_scan_sees_rows_inserted_after_planning(observed):
    database = ship_database()
    statement = parse_select(SQL)

    # Warm the cache: first execution builds the hash index (miss) ...
    warm = plan_select(database, statement)
    assert "IndexScan" in warm.render()
    before = warm.execute()
    assert observed.value("index_cache_requests_total",
                          result="miss", kind="hash") == 1

    # ... plan again, mutate BETWEEN planning and execution ...
    planned = plan_select(database, statement)
    execute_statement(database, INSERT)
    result = planned.execute()

    # ... and the execution must see the new row via a rebuilt index.
    assert len(result) == len(before) + 1
    assert any(row[0] == "SSN999" for row in result)
    assert result == execute_select_legacy(database, statement)
    assert observed.value("index_cache_requests_total",
                          result="stale", kind="hash") == 1


def test_stream_started_before_mutation_serves_its_snapshot(observed):
    """A batch stream opened *before* a mutation serves its
    start-of-stream snapshot to the end; the mutation becomes visible
    (through the stale-index rebuild) to the next execution."""
    database = ship_database()
    planned = plan_select(database, parse_select(SQL))
    assert "IndexScan" in planned.render()

    scan = planned.root.child
    stream = scan.batches(1)
    first = next(stream)  # resolves the index: cache miss, snapshot taken
    execute_statement(database, INSERT)
    rows = list(first) + [group for batch in stream for group in batch]

    assert all(group[0][0] != "SSN999" for group in rows)
    assert observed.value("index_cache_requests_total",
                          result="miss", kind="hash") == 1

    result = plan_select(database, parse_select(SQL)).execute(batch_size=2)
    assert any(row[0] == "SSN999" for row in result)
    assert observed.value("index_cache_requests_total",
                          result="stale", kind="hash") == 1


def test_mutation_between_planning_and_streaming(observed):
    """The PR3 invariant under batch streaming: index resolution happens
    at stream start, so plan -> mutate -> stream still sees the
    post-mutation rows, at every batch size."""
    database = ship_database()
    statement = parse_select(SQL)
    baseline = len(plan_select(database, statement).execute())

    planned = plan_select(database, statement)
    execute_statement(database, INSERT)
    result = planned.execute(batch_size=1)

    assert len(result) == baseline + 1
    assert any(row[0] == "SSN999" for row in result)
    assert result == execute_select_legacy(database, statement)
    assert observed.value("index_cache_requests_total",
                          result="stale", kind="hash") == 1


def test_statistics_snapshot_invalidated_by_mutation(observed):
    database = ship_database()
    catalog = statistics(database)

    stale = catalog.table_stats("SUBMARINE")
    assert catalog.table_stats("SUBMARINE") is stale  # cached
    assert observed.value("stats_cache_requests_total", result="hit") == 1

    execute_statement(database, INSERT)
    fresh = catalog.table_stats("SUBMARINE")
    assert fresh is not stale
    assert fresh.row_count == stale.row_count + 1
    assert observed.value("stats_cache_invalidations_total") == 1
    assert observed.value("stats_cache_requests_total",
                          result="recompute") == 2


def test_unrelated_mutation_revalidates_without_recompute(observed):
    database = ship_database()
    catalog = statistics(database)
    snapshot = catalog.table_stats("SUBMARINE")

    # Mutating SONAR bumps the catalog-wide version, but SUBMARINE's
    # snapshot is still valid and must be served after revalidation.
    execute_statement(
        database,
        "INSERT INTO SONAR (Sonar, SonarType) VALUES ('XX-1', 'XX')")
    assert catalog.table_stats("SUBMARINE") is snapshot
    assert observed.value("stats_cache_requests_total",
                          result="revalidated") == 1
    assert observed.value("stats_cache_invalidations_total") == 0


def test_recovery_replay_invalidates_caches_like_live_mutations(
        observed, tmp_path):
    """Mutations applied by WAL replay (crash recovery, warm standby
    catch-up) must invalidate the IndexCache and StatisticsCatalog
    exactly as live mutations do: replay goes through the relations'
    version/touch machinery, not around it."""
    from repro.storage import StorageEngine

    database = ship_database()
    engine = StorageEngine(database, str(tmp_path / "data"))
    engine.checkpoint()
    engine.wal.close()

    standby, _ = StorageEngine.recover(str(tmp_path / "data"))
    catalog = statistics(standby.database)
    stale = catalog.table_stats("SUBMARINE")
    statement = parse_select(SQL)
    planned = plan_select(standby.database, statement)
    assert "IndexScan" in planned.render()
    before = planned.execute()

    # A second engine (the "primary") commits new work to the same WAL.
    primary, _ = StorageEngine.recover(str(tmp_path / "data"))
    execute_statement(primary.database, INSERT)
    primary.wal.close()

    # Catch-up replay on the standby; both caches must notice.
    report = standby.replay_tail()
    assert report.replayed_records >= 1

    fresh = catalog.table_stats("SUBMARINE")
    assert fresh is not stale
    assert fresh.row_count == stale.row_count + 1
    assert observed.value("stats_cache_invalidations_total") >= 1

    replanned = plan_select(standby.database, statement)
    result = replanned.execute()
    assert len(result) == len(before) + 1
    assert any(row[0] == "SSN999" for row in result)
    assert observed.value("index_cache_requests_total",
                          result="stale", kind="hash") >= 1
    standby.wal.close()
