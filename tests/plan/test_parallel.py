"""Parallel morsel execution: exchange operators are performance
knobs, never semantic ones.

Covers the ``REPRO_PARALLEL`` knob and its warn-once fallback, the
planner's DOP choice, order-preserving :class:`MergeExchange`
semantics (exact serial row order, error ordinal positions, nested
fan-out running inline), exchange plans over a deliberately large
synthetic table (scan+filter, partitioned hash join, COUNT/GROUP BY
partial aggregation, numpy on and off), snapshot semantics under
mid-stream mutation, early termination, EXPLAIN ANALYZE per-worker
actuals, and statement-deadline propagation into worker threads.
"""

import threading
import time
import warnings

import pytest

from repro.errors import StatementTimeout
from repro.plan import parallel
from repro.plan.explain import explain_select
from repro.plan.planner import plan_select
from repro.plan.plans import (
    MergeExchangePlan, ParallelHashJoinPlan, statement_deadline_scope,
)
from repro.relational import columnar
from repro.relational.database import Database
from repro.relational.datatypes import INTEGER, char
from repro.sql.executor import execute_select_legacy
from repro.sql.parser import parse_select

#: Large enough that the default thresholds plan DOP=4 at 4 workers
#: (``choose_dop`` hands out one degree per 8192 estimated rows).
BIG_ROWS = 4 * parallel.ROWS_PER_WORKER

CATS = ["alpha", "beta", "gamma", "delta", "epsilon"]


def build_database(rows: int = BIG_ROWS) -> Database:
    """A deterministic big/dim pair.  ``BIG.V`` is non-uniform so
    ``!=`` predicates (never indexable) keep the scan on the
    TableScan+Filter chain that exchange operators parallelize."""
    db = Database("parallel-bed")
    big = []
    for i in range(rows):
        big.append((i,
                    (i * 7919) % 1000,
                    CATS[i % len(CATS)],
                    None if i % 13 == 0 else CATS[(i // 7) % 3],
                    None if i % 11 == 0 else i % 50,
                    i % 20))
    db.create("BIG", [("Id", INTEGER), ("V", INTEGER),
                      ("Cat", char(8)), ("Mark", char(8)),
                      ("Nul", INTEGER), ("K", INTEGER)], big)
    db.create("DIM", [("K", INTEGER), ("Name", char(8))],
              [(k, f"dim-{k}") for k in range(15)])
    return db


@pytest.fixture(scope="module")
def big_db():
    return build_database()


@pytest.fixture()
def workers4():
    """Force four workers for the test, restoring the prior setting."""
    before = parallel.FORCED
    parallel.set_workers(4)
    yield
    parallel.set_workers(before)


def run_query(db, sql, *, batch_size=None):
    return plan_select(db, parse_select(sql)).execute(
        batch_size=batch_size)


QUERIES = [
    "SELECT BIG.Id, BIG.V FROM BIG WHERE BIG.V != 500",
    "SELECT BIG.Cat FROM BIG WHERE BIG.V != 500 AND BIG.Nul >= 25",
    "SELECT DISTINCT BIG.Cat FROM BIG WHERE BIG.V != 3",
    "SELECT BIG.V FROM BIG WHERE BIG.V != 500 ORDER BY BIG.V",
    "SELECT BIG.Id, DIM.Name FROM BIG, DIM "
    "WHERE BIG.K = DIM.K AND BIG.V != 500",
    "SELECT COUNT(*) FROM BIG WHERE BIG.V != 500",
    "SELECT COUNT(BIG.Nul) FROM BIG WHERE BIG.V != 500",
    "SELECT BIG.Cat, COUNT(*) FROM BIG WHERE BIG.V != 500 "
    "GROUP BY BIG.Cat",
    "SELECT BIG.Mark, COUNT(BIG.Nul) FROM BIG WHERE BIG.V != 3 "
    "GROUP BY BIG.Mark",
]

#: An unfiltered probe side keeps the estimated join input above the
#: ``choose_dop`` threshold (filters are estimated at 1/3 selectivity,
#: which would plan the join serial at this table size).
PARALLEL_JOIN_SQL = ("SELECT BIG.Id, DIM.Name FROM BIG, DIM "
                     "WHERE BIG.K = DIM.K")
QUERIES.append(PARALLEL_JOIN_SQL)


# -- the REPRO_PARALLEL knob -------------------------------------------------


class TestKnob:
    def test_forced_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "7")
        monkeypatch.setattr(parallel, "FORCED", 3)
        assert parallel.workers() == 3

    @pytest.mark.parametrize("value", ["off", "0", "false", "no", "1"])
    def test_off_spellings(self, monkeypatch, value):
        monkeypatch.setattr(parallel, "FORCED", None)
        monkeypatch.setenv("REPRO_PARALLEL", value)
        assert parallel.workers() == 1
        assert not parallel.enabled()

    @pytest.mark.parametrize("value", ["", "on", "true", "yes"])
    def test_on_spellings_take_the_default(self, monkeypatch, value):
        monkeypatch.setattr(parallel, "FORCED", None)
        monkeypatch.setenv("REPRO_PARALLEL", value)
        assert parallel.workers() == parallel._default_workers()

    def test_integer_count(self, monkeypatch):
        monkeypatch.setattr(parallel, "FORCED", None)
        monkeypatch.setenv("REPRO_PARALLEL", "6")
        assert parallel.workers() == 6

    def test_bad_spelling_warns_once_and_keeps_default(self, monkeypatch):
        monkeypatch.setattr(parallel, "FORCED", None)
        monkeypatch.setenv("REPRO_PARALLEL", "lots-please")
        parallel._warned_values.discard("lots-please")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert parallel.workers() == parallel._default_workers()
            assert parallel.workers() == parallel._default_workers()
        assert len(caught) == 1
        assert "REPRO_PARALLEL" in str(caught[0].message)

    def test_choose_dop_thresholds(self):
        before = parallel.FORCED
        try:
            parallel.set_workers(4)
            per = parallel.ROWS_PER_WORKER
            assert parallel.choose_dop(0) == 1
            assert parallel.choose_dop(2 * per - 1) == 1
            assert parallel.choose_dop(2 * per) == 2
            assert parallel.choose_dop(100 * per) == 4  # capped
            parallel.set_workers(1)
            assert parallel.choose_dop(100 * per) == 1
        finally:
            parallel.set_workers(before)


# -- the exchange runtime ----------------------------------------------------


class TestRunOrdered:
    def test_preserves_sequence_order_under_skew(self):
        def morsel(seq):
            time.sleep(((19 - seq) % 3) * 0.002)
            return [seq]

        parts = list(parallel.run_ordered(20, 4, morsel))
        assert [seq for part in parts for seq in part] == list(range(20))

    def test_error_surfaces_at_its_ordinal_position(self):
        def morsel(seq):
            if seq == 5:
                raise ValueError("morsel five")
            return [seq]

        seen = []
        with pytest.raises(ValueError, match="morsel five"):
            for part in parallel.run_ordered(12, 3, morsel):
                seen.extend(part)
        assert seen == [0, 1, 2, 3, 4]

    def test_nested_fan_out_runs_inline_on_pool_threads(self):
        inline = []

        def inner(seq):
            inline.append(parallel.on_worker_thread())
            return [seq * 10]

        def outer(seq):
            return list(parallel.run_ordered(2, 4, inner))

        parts = list(parallel.run_ordered(3, 3, outer))
        assert all(part == [[0], [10]] for part in parts)
        assert all(inline)  # nested run never re-entered the pool

    def test_expired_deadline_raises_statement_timeout(self):
        with pytest.raises(StatementTimeout):
            list(parallel.run_ordered(
                8, 2, lambda seq: [seq],
                deadline=time.monotonic() - 1.0))

    def test_worker_stats_record_morsels_and_rows(self):
        stats = []
        parts = list(parallel.run_ordered(
            10, 2, lambda seq: [seq, seq], label="unit",
            worker_stats=stats))
        assert len(parts) == 10
        assert sum(entry["morsels"] for entry in stats) == 10
        assert sum(entry["rows"] for entry in stats) == 20
        assert all(entry["label"] == "unit" for entry in stats)

    def test_early_close_cancels_workers(self):
        started = []

        def morsel(seq):
            started.append(seq)
            time.sleep(0.005)
            return [seq]

        stream = iter(parallel.run_ordered(64, 4, morsel))
        assert next(stream) == [0]
        stream.close()
        time.sleep(0.05)  # let any already-claimed morsels drain
        settled = len(started)
        time.sleep(0.05)
        assert len(started) == settled  # no new claims after close
        assert settled < 64


# -- exchange plans over the big table ---------------------------------------


def exchange_nodes(plan):
    found = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, (MergeExchangePlan, ParallelHashJoinPlan)):
            found.append(node)
        stack.extend(getattr(node, "children", lambda: [])())
    return found


class TestPlannerDop:
    def test_big_scan_gets_a_merge_exchange(self, big_db, workers4):
        planned = plan_select(
            big_db, parse_select(QUERIES[0]))
        nodes = exchange_nodes(planned.root)
        assert any(isinstance(node, MergeExchangePlan)
                   for node in nodes), planned.render()
        assert "MergeExchange [dop=4]" in planned.render()

    def test_big_join_gets_a_parallel_hash_join(self, big_db, workers4):
        planned = plan_select(big_db, parse_select(PARALLEL_JOIN_SQL))
        assert any(isinstance(node, ParallelHashJoinPlan)
                   for node in exchange_nodes(planned.root)), \
            planned.render()
        assert "parallel dop=" in planned.render()

    def test_serial_config_plans_no_exchanges(self, big_db):
        before = parallel.FORCED
        try:
            parallel.set_workers(1)
            for sql in QUERIES:
                planned = plan_select(big_db, parse_select(sql))
                assert not exchange_nodes(planned.root), sql
        finally:
            parallel.set_workers(before)

    def test_small_table_plans_serial_even_at_four_workers(
            self, big_db, workers4):
        planned = plan_select(
            big_db, parse_select("SELECT DIM.Name FROM DIM "
                                 "WHERE DIM.K != 3"))
        assert not exchange_nodes(planned.root)


class TestParallelEquivalence:
    @pytest.mark.parametrize("sql", QUERIES)
    @pytest.mark.parametrize("worker_count", [2, 4])
    def test_rows_identical_to_serial(self, big_db, sql, worker_count):
        before = parallel.FORCED
        columnar_before = columnar.FORCED
        try:
            parallel.set_workers(1)
            serial = run_query(big_db, sql)
            parallel.set_workers(worker_count)
            for fused in (True, False):
                columnar.set_enabled(fused)
                result = run_query(big_db, sql)
                assert list(result.rows) == list(serial.rows), \
                    f"workers={worker_count} fused={fused} {sql}"
                assert result.schema.column_names() == \
                    serial.schema.column_names()
        finally:
            parallel.set_workers(before)
            columnar.set_enabled(columnar_before)

    @pytest.mark.parametrize(
        "sql", [QUERIES[0], PARALLEL_JOIN_SQL, QUERIES[7]])
    def test_batch_size_one_matches_default(self, big_db, sql, workers4):
        assert list(run_query(big_db, sql, batch_size=1).rows) == \
            list(run_query(big_db, sql).rows), sql

    @pytest.mark.skipif(not columnar.HAS_NUMPY,
                        reason="numpy not installed")
    @pytest.mark.parametrize(
        "sql", [QUERIES[0], QUERIES[5], QUERIES[7], QUERIES[8]])
    def test_pure_python_kernels_match_numpy(self, big_db, sql, workers4):
        vectorized = run_query(big_db, sql)
        columnar.set_numpy_enabled(False)
        try:
            pure = run_query(big_db, sql)
        finally:
            columnar.set_numpy_enabled(True)
        assert list(pure.rows) == list(vectorized.rows), sql

    def test_matches_legacy_executor(self, big_db, workers4):
        for sql in QUERIES:
            statement = parse_select(sql)
            planned = plan_select(big_db, statement).execute()
            assert planned == execute_select_legacy(big_db, statement), \
                sql


class TestStreamingSemantics:
    def test_early_termination_then_reuse(self, big_db, workers4):
        planned = plan_select(big_db, parse_select(QUERIES[0]))
        stream = planned.root.child.batches(64)
        first = next(stream)
        assert 0 < len(first) <= 64
        stream.close()  # must cancel workers without deadlocking
        again = run_query(big_db, QUERIES[0])
        assert len(again) > 0  # the shared pool is still serviceable

    def test_mutation_mid_stream_is_invisible(self, workers4):
        db = build_database()
        sql = QUERIES[0]
        serial_rows = list(run_query(db, sql).rows)

        planned = plan_select(db, parse_select(sql))
        stream = planned.root.child.batches(64)
        drained = list(next(stream))
        db.insert("BIG", [(BIG_ROWS + i, 1, "alpha", None, None, 0)
                          for i in range(100)])
        for batch in stream:
            drained.extend(batch)
        assert len(drained) == len(serial_rows)

    def test_explain_analyze_reports_worker_actuals(
            self, big_db, workers4):
        rendered = explain_select(big_db, parse_select(QUERIES[0]),
                                  analyze=True)
        assert "MergeExchange [dop=4]" in rendered
        assert "worker " in rendered and "morsels" in rendered


class TestDeadlinePropagation:
    def test_timed_out_parallel_scan_cancels_at_batch_boundary(
            self, big_db, workers4):
        """Satellite regression: a statement deadline armed on the
        consumer thread must propagate into the worker pool and stop
        the scan at a morsel boundary with the same
        :class:`StatementTimeout` a serial plan raises."""
        planned = plan_select(big_db, parse_select(QUERIES[0]))
        with statement_deadline_scope(0.000001):
            time.sleep(0.002)  # guarantee the deadline has passed
            with pytest.raises(StatementTimeout):
                for _batch in planned.root.child.batches(64):
                    pass
        # The pool survives a cancelled pipeline.
        assert len(run_query(big_db, QUERIES[0])) > 0

    def test_workers_observe_a_mid_stream_expiry(self):
        release = time.monotonic() + 0.03

        def morsel(seq):
            while time.monotonic() < release:
                time.sleep(0.002)
            return [seq]

        consumed = []
        with pytest.raises(StatementTimeout):
            for part in parallel.run_ordered(
                    40, 4, morsel, deadline=release):
                consumed.append(part)
        assert len(consumed) < 40  # cancelled, not run to completion

    def test_deadline_checks_happen_on_worker_threads(self):
        """The deadline travels by value into ``run_ordered`` -- the
        workers never read the consumer's thread-local."""
        seen_threads = set()

        def morsel(seq):
            seen_threads.add(threading.current_thread().name)
            return [seq]

        list(parallel.run_ordered(
            12, 3, morsel, deadline=time.monotonic() + 60.0))
        assert any(name != threading.current_thread().name
                   for name in seen_threads)
