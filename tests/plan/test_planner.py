"""Planner tests: access-path selection, join ordering, pushdown, and
semantic short-circuits."""

import pytest

from repro.plan.planner import plan_select
from repro.plan.plans import (
    EmptyPlan, FilterPlan, HashJoinPlan, IndexScanPlan, ProductPlan,
    ProjectPlan, TableScanPlan,
)
from repro.sql.parser import parse_select


def nodes(plan):
    yield plan
    for child in plan.children():
        yield from nodes(child)


def find(plan, kind):
    return [node for node in nodes(plan) if isinstance(node, kind)]


def plan_sql(database, sql, rules=None):
    return plan_select(database, parse_select(sql), rules=rules)


class TestAccessPaths:
    def test_equality_picks_hash_index(self, ship_db):
        planned = plan_sql(ship_db,
                           "SELECT * FROM SUBMARINE WHERE Class = '0103'")
        (scan,) = find(planned.plan, IndexScanPlan)
        assert scan.kind == "hash"
        assert scan.column == "Class"
        assert not find(planned.plan, FilterPlan)

    def test_selective_range_picks_sorted_index(self, ship_db):
        planned = plan_sql(
            ship_db, "SELECT * FROM CLASS WHERE Displacement > 8000")
        (scan,) = find(planned.plan, IndexScanPlan)
        assert scan.kind == "sorted"

    def test_tiny_relation_scans(self, ship_db):
        planned = plan_sql(ship_db,
                           "SELECT * FROM TYPE WHERE Type = 'SSN'")
        assert find(planned.plan, TableScanPlan)
        assert not find(planned.plan, IndexScanPlan)
        assert find(planned.plan, FilterPlan)

    def test_wide_range_scans(self, ship_db):
        # Displacement > 0 matches everything: not worth an index.
        planned = plan_sql(
            ship_db, "SELECT * FROM CLASS WHERE Displacement > 0")
        assert find(planned.plan, TableScanPlan)
        assert not find(planned.plan, IndexScanPlan)

    def test_unconsumed_predicates_stay_as_filter(self, ship_db):
        planned = plan_sql(
            ship_db, "SELECT * FROM CLASS "
                     "WHERE Displacement > 8000 AND Type = 'SSBN'")
        (filter_plan,) = find(planned.plan, FilterPlan)
        assert len(filter_plan.predicates) == 1

    def test_execution_matches_predicate(self, ship_db):
        planned = plan_sql(
            ship_db, "SELECT * FROM CLASS WHERE Displacement > 8000")
        result = planned.execute()
        assert len(result) > 0
        displacement = result.schema.position("Displacement")
        assert all(row[displacement] > 8000 for row in result.rows)


class TestJoinOrdering:
    def test_smallest_side_starts(self, ship_db):
        planned = plan_sql(
            ship_db,
            "SELECT * FROM SUBMARINE, CLASS "
            "WHERE SUBMARINE.Class = CLASS.Class "
            "AND CLASS.Displacement > 8000")
        (join,) = find(planned.plan, HashJoinPlan)
        # The filtered CLASS side (2 estimated rows) must be planned
        # first, not SUBMARINE (24 rows).
        assert join.left.bindings == ("class",)

    def test_three_way_join_consumes_all_edges(self, ship_db):
        planned = plan_sql(
            ship_db,
            "SELECT SUBMARINE.Name FROM SUBMARINE, INSTALL, SONAR "
            "WHERE SUBMARINE.Id = INSTALL.Ship "
            "AND INSTALL.Sonar = SONAR.Sonar")
        assert len(find(planned.plan, HashJoinPlan)) == 2
        assert not find(planned.plan, ProductPlan)
        assert len(planned.execute()) == 24

    def test_cartesian_falls_back_to_product(self, ship_db):
        planned = plan_sql(ship_db, "SELECT * FROM SUBMARINE, TYPE")
        assert find(planned.plan, ProductPlan)
        assert len(planned.execute()) == 48


class TestContradictions:
    def test_conflicting_predicates_short_circuit(self, ship_db):
        planned = plan_sql(
            ship_db, "SELECT * FROM CLASS "
                     "WHERE Displacement > 10000 AND Displacement < 5000")
        (empty,) = find(planned.plan, EmptyPlan)
        assert "contradictory" in empty.reason
        assert len(planned.execute()) == 0

    def test_equal_vs_equal_short_circuit(self, ship_db):
        planned = plan_sql(
            ship_db, "SELECT * FROM CLASS "
                     "WHERE Type = 'SSN' AND Type = 'SSBN'")
        assert find(planned.plan, EmptyPlan)

    def test_rule_contradiction(self, ship_db, ship_rules):
        planned = plan_sql(
            ship_db,
            "SELECT * FROM CLASS WHERE Displacement >= 8000 "
            "AND Displacement <= 20000 AND Type = 'SSN'",
            rules=ship_rules)
        (empty,) = find(planned.plan, EmptyPlan)
        assert "SSBN" in empty.reason
        assert planned.notes  # intensional explanation surfaced
        assert len(planned.execute()) == 0

    def test_rule_tightening_noted(self, ship_db, ship_rules):
        planned = plan_sql(
            ship_db,
            "SELECT ClassName FROM CLASS WHERE Displacement >= 8000 "
            "AND Displacement <= 20000 AND Type >= 'SSA'",
            rules=ship_rules)
        assert any("tightens" in note for note in planned.notes)
        assert len(planned.execute()) == 1

    def test_empty_result_keeps_projection_schema(self, ship_db):
        planned = plan_sql(
            ship_db, "SELECT Name FROM SUBMARINE "
                     "WHERE Class = '0103' AND Class = '0204'")
        result = planned.execute()
        assert len(result) == 0
        assert [column.name for column in result.schema.columns] == ["Name"]


class TestPlanShape:
    def test_root_is_project(self, ship_db):
        planned = plan_sql(ship_db, "SELECT Name FROM SUBMARINE")
        assert isinstance(planned.plan, ProjectPlan)

    def test_estimates_are_positive_and_finite(self, ship_db):
        planned = plan_sql(
            ship_db,
            "SELECT * FROM SUBMARINE, CLASS "
            "WHERE SUBMARINE.Class = CLASS.Class")
        for node in nodes(planned.plan):
            assert node.records_output() >= 0
            assert node.cost() >= 0

    def test_actual_rows_recorded_after_execute(self, ship_db):
        planned = plan_sql(
            ship_db, "SELECT * FROM CLASS WHERE Displacement > 8000")
        for node in nodes(planned.plan):
            assert node.actual_rows is None
        planned.execute()
        for node in nodes(planned.plan):
            assert node.actual_rows is not None
