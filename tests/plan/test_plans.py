"""Unit tests for plan nodes: cost accessors and execution."""

import pytest

from repro.plan.plans import (
    EmptyPlan, FilterPlan, HashJoinPlan, ProductPlan, TableScanPlan,
)
from repro.plan.stats import statistics
from repro.relational.expressions import ColumnRef, Comparison, Literal
from repro.sql.ast import TableRef
from repro.sql.executor import Scope


@pytest.fixture()
def scope(ship_db):
    return Scope(ship_db, (TableRef("SUBMARINE"), TableRef("CLASS")))


def scan(scope, binding):
    stats = statistics(scope.database).table_stats(
        scope.relations[binding].name)
    return TableScanPlan(scope, binding, stats)


class TestTableScanPlan:
    def test_cardinality_and_rows(self, scope):
        plan = scan(scope, "submarine")
        assert plan.records_output() == 24.0
        rows = plan.execute()
        assert len(rows) == 24
        assert plan.actual_rows == 24
        assert all(len(group) == 1 for group in rows)

    def test_distinct_values(self, scope):
        plan = scan(scope, "class")
        assert plan.distinct_values("class", "Class") == 13.0


class TestFilterPlan:
    def test_filters_and_estimates(self, scope):
        child = scan(scope, "class")
        predicate = Comparison(">", ColumnRef("Displacement", "class"),
                               Literal(8000))
        plan = FilterPlan(child, [predicate], 0.25)
        assert plan.records_output() == pytest.approx(13 * 0.25)
        rows = plan.execute()
        assert all(group[0][3] > 8000 for group in rows)
        assert plan.actual_rows == len(rows)


class TestHashJoinPlan:
    def test_join_matches_nested_loop(self, scope):
        left = scan(scope, "class")
        right = scan(scope, "submarine")
        plan = HashJoinPlan(left, right,
                            [("class", "Class", "submarine", "Class")])
        rows = plan.execute()
        expected = [(c, s)
                    for c in scope.relations["class"].rows
                    for s in scope.relations["submarine"].rows
                    if c[0] is not None and c[0] == s[2]]
        assert sorted(rows) == sorted(expected)
        assert plan.bindings == ("class", "submarine")

    def test_estimate_uses_distinct_denominator(self, scope):
        left = scan(scope, "class")
        right = scan(scope, "submarine")
        plan = HashJoinPlan(left, right,
                            [("class", "Class", "submarine", "Class")])
        denominator = max(left.distinct_values("class", "Class"),
                          right.distinct_values("submarine", "Class"))
        assert plan.records_output() == pytest.approx(
            24 * 13 / denominator)

    def test_null_keys_never_join(self, scope):
        left = scan(scope, "class")
        right = scan(scope, "submarine")
        scope.relations["class"].insert((None, "ghost", "SSN", 1000))
        plan = HashJoinPlan(left, right,
                            [("class", "Class", "submarine", "Class")])
        assert all(group[0][0] is not None for group in plan.execute())


class TestProductAndEmpty:
    def test_product(self, scope):
        plan = ProductPlan(scan(scope, "submarine"), scan(scope, "class"))
        assert plan.records_output() == 24 * 13
        assert len(plan.execute()) == 24 * 13

    def test_empty(self, scope):
        plan = EmptyPlan(scope, scope.bindings, "proven empty")
        assert plan.records_output() == 0.0
        assert plan.execute() == []
        assert "proven empty" in plan.label()
