"""Unit tests for rule-driven semantic analysis (contradiction proofs
and interval tightening)."""

from repro.plan.semantic import analyze
from repro.rules.clause import AttributeRef, Clause, Interval
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet


def make_rules():
    """One rule shaped like the paper's R9:
    if 7250 <= CLASS.Displacement <= 30000 then CLASS.Type = SSBN."""
    rule = Rule(
        [Clause(AttributeRef("CLASS", "Displacement"),
                Interval.closed(7250, 30000))],
        Clause(AttributeRef("CLASS", "Type"), Interval.point("SSBN")))
    return RuleSet([rule])


class TestAnalyze:
    def test_no_rules_passthrough(self):
        intervals = {"displacement": Interval.at_least(8000)}
        result = analyze("CLASS", intervals, None)
        assert result.intervals == intervals
        assert result.contradiction is None
        assert result.notes == []

    def test_rule_fires_only_when_premise_implied(self):
        # (-inf, 8000) is not contained in [7250, 30000]: no rewrite.
        result = analyze(
            "CLASS",
            {"displacement": Interval.at_most(8000, strict=True),
             "type": Interval.point("SSN")},
            make_rules())
        assert result.contradiction is None
        assert result.notes == []

    def test_contradiction(self):
        result = analyze(
            "CLASS",
            {"displacement": Interval.closed(8000, 20000),
             "type": Interval.point("SSN")},
            make_rules())
        assert result.contradiction is not None
        assert "SSBN" in result.contradiction
        assert "R1" in result.contradiction
        assert result.notes[-1].kind == "contradiction"

    def test_tightening(self):
        result = analyze(
            "CLASS",
            {"displacement": Interval.closed(8000, 20000),
             "type": Interval.at_least("SSA")},
            make_rules())
        assert result.contradiction is None
        assert result.intervals["type"] == Interval.point("SSBN")
        assert result.notes[0].kind == "tighten"

    def test_unconstrained_column_is_not_invented(self):
        # The rule implies Type = SSBN, but the query never mentions
        # Type: the rewrite must not add a constraint.
        result = analyze(
            "CLASS", {"displacement": Interval.closed(8000, 20000)},
            make_rules())
        assert "type" not in result.intervals
        assert result.notes == []

    def test_other_relation_untouched(self):
        result = analyze(
            "SONAR",
            {"displacement": Interval.closed(8000, 20000),
             "type": Interval.point("SSN")},
            make_rules())
        assert result.contradiction is None
        assert result.notes == []

    def test_fixpoint_chains_rules(self):
        # a in [0,10] -> b = 5; b = 5 -> c = 1 (with c constrained).
        rules = RuleSet([
            Rule([Clause(AttributeRef("T", "a"), Interval.closed(0, 10))],
                 Clause(AttributeRef("T", "b"), Interval.point(5))),
            Rule([Clause(AttributeRef("T", "b"), Interval.point(5))],
                 Clause(AttributeRef("T", "c"), Interval.point(1))),
        ])
        result = analyze(
            "T",
            {"a": Interval.closed(2, 3), "b": Interval.closed(0, 9),
             "c": Interval.closed(0, 9)},
            rules)
        assert result.intervals["b"] == Interval.point(5)
        assert result.intervals["c"] == Interval.point(1)
        assert len(result.notes) == 2
