"""Unit tests for statistics snapshots and their invalidation."""

import pytest

from repro.plan.stats import (
    ColumnStats, Histogram, StatisticsCatalog, TableStats, statistics,
)
from repro.relational.database import Database
from repro.relational.datatypes import INTEGER, char
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema
from repro.rules.clause import Interval


def make_relation(name="T", rows=None):
    schema = RelationSchema(name, [Column("K", char(4)),
                                   Column("V", INTEGER)])
    if rows is None:
        rows = [("a", 1), ("b", 2), ("a", 3), ("c", None)]
    return Relation(schema, rows)


class TestHistogram:
    def test_uniform_fraction(self):
        histogram = Histogram.build(list(range(100)))
        assert histogram is not None
        fraction = histogram.fraction(Interval.closed(0, 49))
        assert fraction == pytest.approx(0.5, abs=0.05)

    def test_out_of_range(self):
        histogram = Histogram.build(list(range(100)))
        assert histogram.fraction(Interval.at_least(1000)) == 0.0
        assert histogram.fraction(Interval.at_most(-5)) == 0.0

    def test_unbounded_covers_everything(self):
        histogram = Histogram.build(list(range(100)))
        assert histogram.fraction(Interval.everything()) == pytest.approx(1.0)

    def test_constant_column(self):
        histogram = Histogram.build([7, 7, 7])
        assert histogram.fraction(Interval.point(7)) == pytest.approx(1.0)
        assert histogram.fraction(Interval.at_least(8)) == 0.0

    def test_non_numeric_returns_none(self):
        assert Histogram.build(["a", "b"]) is None
        assert Histogram.build([]) is None
        assert Histogram.build([1, "a"]) is None


class TestColumnStats:
    def test_counts(self):
        stats = ColumnStats("V", [1, 2, 2, None, 3])
        assert stats.non_null == 4
        assert stats.nulls == 1
        assert stats.distinct == 3
        assert (stats.min, stats.max) == (1, 3)

    def test_point_selectivity_uses_distinct(self):
        stats = ColumnStats("V", [1, 2, 3, 4])
        assert stats.selectivity(Interval.point(2), 4) == pytest.approx(1 / 4)

    def test_point_outside_range_is_zero(self):
        stats = ColumnStats("V", [1, 2, 3, 4])
        assert stats.selectivity(Interval.point(99), 4) == 0.0

    def test_range_uses_histogram(self):
        stats = ColumnStats("V", list(range(100)))
        fraction = stats.selectivity(Interval.closed(0, 9), 100)
        assert fraction == pytest.approx(0.1, abs=0.05)

    def test_nulls_never_match(self):
        stats = ColumnStats("V", [None, None])
        assert stats.selectivity(Interval.everything(), 2) == 0.0


class TestTableStats:
    def test_snapshot(self):
        stats = TableStats(make_relation())
        assert stats.row_count == 4
        assert stats.distinct_values("k") == 3
        assert stats.column("V").nulls == 1

    def test_distinct_floor_is_one(self):
        stats = TableStats(make_relation(rows=[]))
        assert stats.distinct_values("K") == 1


class TestStatisticsCatalog:
    def test_cache_hit_while_nothing_changes(self):
        database = Database()
        database.catalog.register(make_relation())
        stats_catalog = StatisticsCatalog(database)
        first = stats_catalog.table_stats("T")
        assert stats_catalog.table_stats("T") is first
        assert stats_catalog.recomputes == 1

    def test_mutation_invalidates(self):
        database = Database()
        relation = make_relation()
        database.catalog.register(relation)
        stats_catalog = StatisticsCatalog(database)
        assert stats_catalog.table_stats("T").row_count == 4
        relation.insert(("d", 9))
        assert stats_catalog.table_stats("T").row_count == 5
        assert stats_catalog.recomputes == 2

    def test_other_relation_mutation_revalidates_without_recompute(self):
        database = Database()
        relation = make_relation("T")
        other = make_relation("U")
        database.catalog.register(relation)
        database.catalog.register(other)
        stats_catalog = StatisticsCatalog(database)
        first = stats_catalog.table_stats("T")
        other.insert(("x", 1))
        assert stats_catalog.table_stats("T") is first
        assert stats_catalog.recomputes == 1

    def test_reregister_replaces_snapshot(self):
        database = Database()
        database.catalog.register(make_relation())
        stats_catalog = StatisticsCatalog(database)
        assert stats_catalog.table_stats("T").row_count == 4
        database.catalog.register(make_relation(rows=[("z", 0)]),
                                  replace=True)
        assert stats_catalog.table_stats("T").row_count == 1

    def test_statistics_accessor_is_per_database(self):
        database = Database()
        database.catalog.register(make_relation())
        assert statistics(database) is statistics(database)
        assert statistics(Database()) is not statistics(database)
