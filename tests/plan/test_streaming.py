"""Streaming execution contract: morsel sizes, early termination,
per-node actuals across batches, snapshot semantics, and the
``REPRO_BATCH_SIZE`` knob."""

import pytest

from repro import obs
from repro.plan import plans
from repro.plan.planner import plan_select
from repro.plan.plans import (
    DEFAULT_BATCH_SIZE, FilterPlan, HashJoinPlan, TableScanPlan,
    UNBOUNDED, default_batch_size, set_batch_observer,
)
from repro.plan.stats import statistics
from repro.relational.expressions import ColumnRef, Comparison, Literal
from repro.sql.ast import TableRef
from repro.sql.executor import Scope, execute_select_legacy
from repro.sql.parser import parse_select

JOIN_SQL = (
    "SELECT SUBMARINE.Name, CLASS.Type FROM SUBMARINE, CLASS "
    "WHERE SUBMARINE.Class = CLASS.Class AND CLASS.Displacement > 2000")


@pytest.fixture()
def scope(ship_db):
    return Scope(ship_db, (TableRef("SUBMARINE"), TableRef("CLASS")))


@pytest.fixture()
def observer():
    """Collects every (plan, batch) the tree streams; always uninstalled."""
    seen = []
    set_batch_observer(lambda plan, batch: seen.append((plan, batch)))
    yield seen
    set_batch_observer(None)


def scan(scope, binding):
    stats = statistics(scope.database).table_stats(
        scope.relations[binding].name)
    return TableScanPlan(scope, binding, stats)


class TestBatchSizes:
    def test_every_batch_respects_the_bound(self, scope, observer):
        plan = scan(scope, "submarine")
        rows = plan.execute(batch_size=7)
        assert len(rows) == 24
        sizes = [len(batch) for _plan, batch in observer]
        assert sizes == [7, 7, 7, 3]

    def test_unbounded_is_one_batch_per_node(self, scope, observer):
        plan = scan(scope, "submarine")
        plan.execute(batch_size=UNBOUNDED)
        assert [len(batch) for _p, batch in observer] == [24]

    def test_nonpositive_size_rejected(self, scope):
        with pytest.raises(ValueError):
            scan(scope, "submarine").batches(0)

    def test_whole_tree_obeys_the_bound(self, ship_db, ship_rules,
                                        observer):
        planned = plan_select(ship_db, parse_select(JOIN_SQL),
                              rules=ship_rules)
        planned.execute(batch_size=5)
        assert observer, "no batches streamed"
        assert all(len(batch) <= 5 for _p, batch in observer)

    def test_default_batch_size_env(self, monkeypatch):
        import warnings

        from repro.plan import plans

        monkeypatch.delenv("REPRO_BATCH_SIZE", raising=False)
        assert default_batch_size() == DEFAULT_BATCH_SIZE
        monkeypatch.setenv("REPRO_BATCH_SIZE", "7")
        assert default_batch_size() == 7
        # A rejected value falls back loudly: one warning naming both
        # the bad value and the default used...
        monkeypatch.setattr(plans, "_warned_batch_sizes", set())
        for bad in ("default", "-3", "0"):
            monkeypatch.setenv("REPRO_BATCH_SIZE", bad)
            with pytest.warns(UserWarning, match=f"{bad}.*1024"):
                assert default_batch_size() == DEFAULT_BATCH_SIZE
            # ...and only once per distinct value.
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert default_batch_size() == DEFAULT_BATCH_SIZE
        # Unset/empty is the normal configuration: never a warning.
        for quiet in ("", "   "):
            monkeypatch.setenv("REPRO_BATCH_SIZE", quiet)
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert default_batch_size() == DEFAULT_BATCH_SIZE


class TestEarlyTermination:
    def test_closing_the_stream_stops_the_scan(self, scope, observer):
        plan = scan(scope, "submarine")
        stream = plan.batches(4)
        first = next(stream)
        assert len(first) == 4
        stream.close()
        # Only the one requested batch was ever produced.
        assert [len(b) for _p, b in observer] == [4]
        assert plan.actual_rows == 4

    def test_consumer_close_propagates_through_filter(self, scope,
                                                      observer):
        child = scan(scope, "class")
        predicate = Comparison(">", ColumnRef("Displacement", "class"),
                               Literal(0))
        plan = FilterPlan(child, [predicate], 0.9)
        stream = plan.batches(3)
        next(stream)
        stream.close()
        scans = [b for p, b in observer if isinstance(p, TableScanPlan)]
        # The scan produced only what the filter needed for one output
        # batch, not its whole relation.
        assert sum(len(b) for b in scans) < len(scope.relations["class"])

    def test_empty_build_side_never_pulls_probe_side(self, scope,
                                                     observer):
        left = scan(scope, "submarine")
        right = FilterPlan(
            scan(scope, "class"),
            [Comparison("<", ColumnRef("Displacement", "class"),
                        Literal(-1))], 0.0)
        join = HashJoinPlan(left, right,
                            [("submarine", "Class", "class", "Class")])
        assert join.execute(batch_size=4) == []
        assert not any(p is left for p, _b in observer)
        # The un-pulled side renders as unmeasured, not as zero rows.
        assert left.actual_rows is None


class TestActualsAcrossBatches:
    def test_per_node_actuals_match_materializing_path(self, ship_db,
                                                       ship_rules):
        """Regression: actual_rows accumulated over many small batches
        must pin to the cardinalities the one-batch (legacy
        materializing) execution measures on the identical tree."""
        statement = parse_select(JOIN_SQL)

        reference = plan_select(ship_db, statement, rules=ship_rules)
        reference.execute(batch_size=UNBOUNDED)
        streamed = plan_select(ship_db, statement, rules=ship_rules)
        streamed.execute(batch_size=3)

        def actuals(plan):
            out = [(type(plan).__name__, plan.actual_rows)]
            for child in plan.children():
                out.extend(actuals(child))
            return out

        assert actuals(streamed.root) == actuals(reference.root)
        assert streamed.root.actual_rows == len(
            execute_select_legacy(ship_db, statement))

    def test_explain_analyze_streams(self, ship_db, ship_rules):
        from repro.plan.explain import explain_select

        rendered = explain_select(ship_db, parse_select(JOIN_SQL),
                                  rules=ship_rules, analyze=True)
        legacy = execute_select_legacy(ship_db, parse_select(JOIN_SQL))
        assert f"actual {len(legacy)}" in rendered


class TestSnapshotSemantics:
    def test_mutation_between_batches_does_not_change_stream(self, scope):
        plan = scan(scope, "submarine")
        relation = scope.relations["submarine"]
        stream = plan.batches(10)
        collected = list(next(stream))
        relation.insert(("SSN999", "Phantom", "0101"))
        for batch in stream:
            collected.extend(batch)
        # The stream serves its start-of-stream snapshot ...
        assert len(collected) == 24
        assert all(rows[0][0] != "SSN999" for rows in collected)
        # ... and the next stream sees the mutation.
        assert len(plan.execute(batch_size=10)) == 25


class TestObservability:
    def test_batches_counted_and_spans_once_per_node(self, scope):
        obs.reset()
        obs.enable()
        try:
            plan = scan(scope, "submarine")
            plan.execute(batch_size=6)
            assert obs.metrics().value(
                "plan_batches_total", node="TableScanPlan") == 4
            spans = obs.tracer().named("plan.node.TableScanPlan")
            assert len(spans) == 1
            assert spans[0].attributes["rows"] == 24
            assert spans[0].attributes["batches"] == 4
        finally:
            obs.disable()
            obs.reset()

    def test_disabled_observability_records_nothing(self, scope):
        obs.reset()
        plan = scan(scope, "submarine")
        plan.execute(batch_size=6)
        assert len(obs.tracer()) == 0
