"""Property-based tests for relational-algebra invariants."""

from hypothesis import given, strategies as st

from repro.relational import algebra
from repro.relational.datatypes import INTEGER, char
from repro.relational.expressions import ColumnRef, Comparison, Literal
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema

SCHEMA = RelationSchema("T", [Column("A", INTEGER),
                              Column("B", char(2)),
                              Column("C", INTEGER)])

rows = st.lists(
    st.tuples(st.integers(0, 9),
              st.sampled_from(["x", "y", "z"]),
              st.one_of(st.none(), st.integers(0, 5))),
    max_size=25)


def relation(data):
    return Relation(SCHEMA, data, validated=True)


def pred(bound):
    return Comparison(">", ColumnRef("A"), Literal(bound))


class TestSelection:
    @given(rows, st.integers(0, 9))
    def test_selection_shrinks(self, data, bound):
        rel = relation(data)
        assert len(algebra.select(rel, pred(bound))) <= len(rel)

    @given(rows, st.integers(0, 9), st.integers(0, 9))
    def test_selection_commutes(self, data, b1, b2):
        rel = relation(data)
        one = algebra.select(algebra.select(rel, pred(b1)), pred(b2))
        two = algebra.select(algebra.select(rel, pred(b2)), pred(b1))
        assert one == two

    @given(rows, st.integers(0, 9))
    def test_selection_idempotent(self, data, bound):
        rel = relation(data)
        once = algebra.select(rel, pred(bound))
        twice = algebra.select(once, pred(bound))
        assert once == twice


class TestProjectDistinct:
    @given(rows)
    def test_distinct_idempotent(self, data):
        rel = relation(data)
        assert rel.distinct().distinct() == rel.distinct()

    @given(rows, st.integers(0, 9))
    def test_select_commutes_with_project_when_column_kept(self, data,
                                                           bound):
        rel = relation(data)
        select_then_project = algebra.project(
            algebra.select(rel, pred(bound)), ["A", "B"])
        project_then_select = algebra.select(
            algebra.project(rel, ["A", "B"]), pred(bound))
        assert select_then_project == project_then_select

    @given(rows)
    def test_projection_preserves_cardinality(self, data):
        rel = relation(data)
        assert len(algebra.project(rel, ["B"])) == len(rel)


class TestSetOperations:
    @given(rows, rows)
    def test_union_cardinality(self, left_data, right_data):
        left = relation(left_data)
        right = relation(right_data)
        assert len(algebra.union(left, right)) == len(left) + len(right)

    @given(rows, rows)
    def test_difference_inverse_of_union(self, left_data, right_data):
        left = relation(left_data)
        right = relation(right_data)
        assert algebra.difference(
            algebra.union(left, right), right) == left

    @given(rows)
    def test_self_difference_empty(self, data):
        rel = relation(data)
        assert len(algebra.difference(rel, rel)) == 0

    @given(rows, rows)
    def test_intersection_commutes(self, left_data, right_data):
        left = relation(left_data)
        right = relation(right_data)
        assert algebra.intersection(left, right) == (
            algebra.intersection(right, left))

    @given(rows)
    def test_sort_is_permutation(self, data):
        rel = relation(data)
        assert rel.sorted_by("A", "B") == rel


class TestJoin:
    @given(rows, rows)
    def test_join_subset_of_product(self, left_data, right_data):
        left = relation(left_data)
        right = algebra.rename(relation(right_data), "U")
        joined = algebra.equijoin(left, right, [("A", "A")])
        assert len(joined) <= len(left) * len(right)

    @given(rows)
    def test_join_on_equal_keys_matches_filtered_product(self, data):
        left = relation(data)
        right = algebra.rename(relation(data), "U")
        joined = algebra.equijoin(left, right, [("A", "A")])
        product = algebra.cross(left, right)
        filtered = [row for row in product if row[0] == row[3]]

        def key(row):
            return tuple((value is None, value if value is not None else 0)
                         for value in row)

        assert sorted(joined.rows, key=key) == sorted(filtered, key=key)
