"""Property-based tests for induction invariants.

The load-bearing ones from DESIGN.md:

* every induced rule is *sound* on its training data;
* runs partition the consistent X values (no overlaps, full coverage);
* pruning is monotone in N_c;
* the QUEL and native extraction paths agree on arbitrary data.
"""

from hypothesis import given, settings, strategies as st

from repro.induction import (
    InductionConfig, extract_pairs_native, extract_pairs_quel,
    induce_from_pairs,
)
from repro.induction.runs import build_runs
from repro.relational import Database, INTEGER, char
from repro.rules.clause import AttributeRef

X_REF = AttributeRef("R", "X")
Y_REF = AttributeRef("R", "Y")

pairs_strategy = st.lists(
    st.tuples(st.one_of(st.none(), st.integers(0, 30)),
              st.one_of(st.none(), st.sampled_from("abcd"))),
    max_size=60)


class TestSoundness:
    @given(pairs_strategy, st.integers(1, 5))
    def test_induced_rules_sound_on_training_data(self, pairs, n_c):
        extraction = extract_pairs_native(pairs)
        rules = induce_from_pairs(extraction, X_REF, Y_REF,
                                  InductionConfig(n_c=n_c))
        records = [{X_REF: x, Y_REF: y} for x, y in pairs]
        for rule in rules:
            assert rule.sound_on(records), rule.render()

    @given(pairs_strategy)
    def test_rule_support_counts_are_truthful(self, pairs):
        extraction = extract_pairs_native(pairs)
        rules = induce_from_pairs(extraction, X_REF, Y_REF,
                                  InductionConfig(n_c=1))
        for rule in rules:
            satisfied = sum(
                1 for x, y in pairs
                if x is not None and y is not None
                and rule.lhs[0].satisfied_by(x)
                and rule.rhs.satisfied_by(y))
            assert rule.support == satisfied


class TestRunStructure:
    @given(pairs_strategy)
    def test_runs_partition_consistent_values(self, pairs):
        extraction = extract_pairs_native(pairs)
        runs = build_runs(extraction.occurring_x, extraction.mapping,
                          extraction.removed, extraction.counts)
        covered = [x for run in runs for x in run.xs]
        assert sorted(covered) == sorted(extraction.mapping)
        assert len(covered) == len(set(covered))

    @given(pairs_strategy)
    def test_runs_are_ordered_and_disjoint(self, pairs):
        extraction = extract_pairs_native(pairs)
        runs = build_runs(extraction.occurring_x, extraction.mapping,
                          extraction.removed, extraction.counts)
        for run in runs:
            assert run.low <= run.high
        for earlier, later in zip(runs, runs[1:]):
            assert earlier.high < later.low or earlier.high == later.low


class TestPruningMonotonicity:
    @given(pairs_strategy, st.integers(1, 4))
    def test_higher_threshold_keeps_fewer_rules(self, pairs, n_c):
        extraction = extract_pairs_native(pairs)
        loose = induce_from_pairs(extraction, X_REF, Y_REF,
                                  InductionConfig(n_c=n_c))
        tight = induce_from_pairs(extraction, X_REF, Y_REF,
                                  InductionConfig(n_c=n_c + 1))
        loose_keys = {(rule.lhs, rule.rhs) for rule in loose}
        tight_keys = {(rule.lhs, rule.rhs) for rule in tight}
        assert tight_keys <= loose_keys


class TestQuelNativeEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 15),
                              st.sampled_from("abc")), max_size=40))
    def test_paths_agree(self, pairs):
        database = Database()
        database.create("R", [("X", INTEGER), ("Y", char(1))],
                        rows=pairs)
        native = extract_pairs_native(pairs)
        quel = extract_pairs_quel(database, "R", "X", "Y")
        assert native == quel
