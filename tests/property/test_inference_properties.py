"""Property-based tests for inference invariants.

* Forward soundness: whatever interval the engine derives for an
  attribute, every record satisfying the rule base's semantics and the
  query conditions satisfies it (checked by brute-force model
  enumeration over small domains).
* Minimization preserves forward power on random rule sets.
* Canonicalizer laws: equivalence is reflexive/symmetric/transitive.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.inference import Canonicalizer, TypeInferenceEngine
from repro.rules import Clause, Interval, Rule, RuleSet, minimize_ruleset
from repro.rules.clause import AttributeRef

ATTRIBUTES = [AttributeRef("T", name) for name in ("A", "B", "C")]
DOMAIN = list(range(0, 8))


@st.composite
def small_rules(draw):
    lhs_attr = draw(st.sampled_from(ATTRIBUTES))
    rhs_attr = draw(st.sampled_from(
        [a for a in ATTRIBUTES if a != lhs_attr]))
    low = draw(st.integers(0, 7))
    high = draw(st.integers(low, 7))
    rhs_low = draw(st.integers(0, 7))
    rhs_high = draw(st.integers(rhs_low, 7))
    return Rule([Clause(lhs_attr, Interval.closed(low, high))],
                Clause(rhs_attr, Interval.closed(rhs_low, rhs_high)),
                support=draw(st.integers(0, 9)))


rule_sets = st.lists(small_rules(), max_size=6).map(RuleSet)


@st.composite
def conditions(draw):
    attribute = draw(st.sampled_from(ATTRIBUTES))
    low = draw(st.integers(0, 7))
    high = draw(st.integers(low, 7))
    return [Clause(attribute, Interval.closed(low, high))]


def models(rules):
    """All total assignments over the tiny domain consistent with every
    rule (the rule base's models)."""
    out = []
    for values in itertools.product(DOMAIN, repeat=len(ATTRIBUTES)):
        record = dict(zip(ATTRIBUTES, values))
        if all(rule.sound_on([record]) for rule in rules):
            out.append(record)
    return out


class TestForwardSoundness:
    @settings(max_examples=30, deadline=None)
    @given(rule_sets, conditions())
    def test_derived_facts_hold_in_every_model(self, rules, clauses):
        engine = TypeInferenceEngine(rules)
        try:
            result = engine.infer(clauses)
        except Exception:
            # Contradictory knowledge w.r.t. the condition is allowed
            # to raise (unsatisfiable query); nothing to check.
            return
        condition = clauses[0]
        for attribute, interval, _sources in result.facts.facts():
            for record in models(rules):
                if not condition.satisfied_by(
                        record.get(condition.attribute)):
                    continue
                value = record.get(attribute)
                if value is None:
                    continue
                assert interval.contains_value(value), (
                    f"{attribute.render()} in {interval!r} fails on "
                    f"{record}")


class TestMinimizationPreservesForwardPower:
    @settings(max_examples=40, deadline=None)
    @given(rule_sets, conditions())
    def test_same_forward_facts(self, rules, clauses):
        minimized = minimize_ruleset(rules).minimized
        full_engine = TypeInferenceEngine(rules)
        minimal_engine = TypeInferenceEngine(minimized)
        try:
            full = full_engine.infer(clauses, backward=False)
        except Exception:
            return
        minimal = minimal_engine.infer(clauses, backward=False)
        full_facts = {ref.key: interval
                      for ref, interval, _s in full.facts.facts()}
        minimal_facts = {ref.key: interval
                         for ref, interval, _s in minimal.facts.facts()}
        assert full_facts == minimal_facts


class TestCanonicalizerLaws:
    refs = st.sampled_from(
        [AttributeRef(rel, attr)
         for rel in ("T", "U") for attr in ("A", "B", "C")])

    @given(st.lists(st.tuples(refs, refs), max_size=8), refs, refs, refs)
    def test_equivalence_laws(self, pairs, x, y, z):
        canon = Canonicalizer(pairs)
        assert canon.equivalent(x, x)
        assert canon.equivalent(x, y) == canon.equivalent(y, x)
        if canon.equivalent(x, y) and canon.equivalent(y, z):
            assert canon.equivalent(x, z)

    @given(st.lists(st.tuples(refs, refs), max_size=8), refs)
    def test_canon_is_idempotent(self, pairs, ref):
        canon = Canonicalizer(pairs)
        representative = canon.canon(ref)
        assert canon.canon(representative) == representative
