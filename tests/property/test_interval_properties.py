"""Property-based tests for the interval algebra (hypothesis).

The inference engine's correctness rests on these laws; they are the
invariants DESIGN.md calls out for property testing.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.errors import RuleError
from repro.rules.clause import Interval


@st.composite
def intervals(draw):
    """Arbitrary (possibly open/unbounded) integer intervals."""
    low = draw(st.one_of(st.none(), st.integers(-50, 50)))
    high = draw(st.one_of(st.none(), st.integers(-50, 50)))
    if low is not None and high is not None and low > high:
        low, high = high, low
    low_open = draw(st.booleans()) if low is not None else False
    high_open = draw(st.booleans()) if high is not None else False
    if (low is not None and high is not None and low == high
            and (low_open or high_open)):
        low_open = high_open = False
    return Interval(low, high, low_open=low_open, high_open=high_open)


values = st.integers(-60, 60)


class TestContainment:
    @given(intervals())
    def test_contains_is_reflexive(self, interval):
        assert interval.contains(interval)

    @given(intervals(), intervals(), intervals())
    def test_contains_is_transitive(self, a, b, c):
        if a.contains(b) and b.contains(c):
            assert a.contains(c)

    @given(intervals(), intervals(), values)
    def test_containment_implies_membership(self, a, b, value):
        if a.contains(b) and b.contains_value(value):
            assert a.contains_value(value)

    @given(intervals())
    def test_everything_contains_all(self, interval):
        assert Interval.everything().contains(interval)


class TestOverlap:
    @given(intervals(), intervals())
    def test_overlap_is_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(intervals(), intervals(), values)
    def test_shared_member_implies_overlap(self, a, b, value):
        if a.contains_value(value) and b.contains_value(value):
            assert a.overlaps(b)

    @given(intervals())
    def test_self_overlap_unless_empty(self, interval):
        # Our constructors forbid empty intervals, so overlap holds.
        assert interval.overlaps(interval)


class TestIntersection:
    @given(intervals(), intervals())
    def test_intersection_commutes(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(intervals(), intervals(), values)
    def test_intersection_is_conjunction(self, a, b, value):
        merged = a.intersect(b)
        in_both = a.contains_value(value) and b.contains_value(value)
        if merged is None:
            assert not in_both
        else:
            assert merged.contains_value(value) == in_both

    @given(intervals(), intervals())
    def test_intersection_contained_in_operands(self, a, b):
        merged = a.intersect(b)
        if merged is not None:
            assert a.contains(merged)
            assert b.contains(merged)

    @given(intervals())
    def test_intersection_idempotent(self, a):
        assert a.intersect(a) == a


class TestPointAndComparison:
    @given(values)
    def test_point_contains_only_itself(self, value):
        point = Interval.point(value)
        assert point.contains_value(value)
        assert not point.contains_value(value + 1)
        assert not point.contains_value(value - 1)

    @given(st.sampled_from(["=", "<", "<=", ">", ">="]), values, values)
    def test_from_comparison_semantics(self, op, bound, candidate):
        interval = Interval.from_comparison(op, bound)
        expected = {
            "=": candidate == bound,
            "<": candidate < bound,
            "<=": candidate <= bound,
            ">": candidate > bound,
            ">=": candidate >= bound,
        }[op]
        assert interval.contains_value(candidate) == expected


class TestRenderStability:
    @given(intervals())
    def test_render_never_crashes(self, interval):
        text = interval.render("X")
        assert isinstance(text, str) and text
