"""Property-based round-trip tests for the QUEL and SQL parsers.

Strategy: generate random ASTs, render them, re-parse, and require the
re-parse to render identically (render-stable normal form).  This pins
the printer and parser against each other across the whole grammar.
"""

from hypothesis import given, strategies as st

from repro.quel import ast as quel_ast, parse_quel
from repro.sql import ast as sql_ast, parse_select
from repro.relational.expressions import (
    And, ColumnRef, Comparison, Literal, Not, Or,
)

identifiers = st.sampled_from(["A", "B2", "Name", "Displacement", "x_y"])
variables = st.sampled_from(["r", "s", "emp"])
relations = st.sampled_from(["T", "CLASS", "EMP"])
ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])

literals = st.one_of(
    st.integers(-1000, 1000).map(Literal),
    st.sampled_from(["SSBN", "BQS-04", "hello world"]).map(Literal),
)


@st.composite
def column_refs(draw, qualified=True):
    column = draw(identifiers)
    qualifier = draw(variables) if qualified else None
    return ColumnRef(column, qualifier=qualifier)


@st.composite
def comparisons(draw, qualified=True):
    left = draw(column_refs(qualified=qualified))
    right = draw(literals)
    return Comparison(draw(ops), left, right)


@st.composite
def qualifications(draw, qualified=True, depth=2):
    if depth == 0:
        return draw(comparisons(qualified=qualified))
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return draw(comparisons(qualified=qualified))
    if choice == 1:
        parts = draw(st.lists(
            qualifications(qualified=qualified, depth=depth - 1),
            min_size=2, max_size=3))
        return And(parts)
    if choice == 2:
        parts = draw(st.lists(
            qualifications(qualified=qualified, depth=depth - 1),
            min_size=2, max_size=3))
        return Or(parts)
    return Not(draw(qualifications(qualified=qualified, depth=depth - 1)))


class TestQuelRoundTrip:
    @given(st.lists(column_refs(), min_size=1, max_size=4),
           st.booleans(),
           st.one_of(st.none(), qualifications()))
    def test_retrieve_roundtrip(self, targets, unique, where):
        statement = quel_ast.RetrieveStmt(
            [quel_ast.Target(t) for t in targets],
            into="OUT", unique=unique, where=where)
        (parsed,) = parse_quel(statement.render())
        assert parsed.render() == statement.render()

    @given(variables, st.one_of(st.none(), qualifications()))
    def test_delete_roundtrip(self, variable, where):
        statement = quel_ast.DeleteStmt(variable, where)
        (parsed,) = parse_quel(statement.render())
        assert parsed.render() == statement.render()

    @given(relations, st.lists(
        st.tuples(identifiers, literals), min_size=1, max_size=3))
    def test_append_roundtrip(self, relation, assignments):
        statement = quel_ast.AppendStmt(
            relation,
            [quel_ast.Target(value, alias=name)
             for name, value in assignments])
        (parsed,) = parse_quel(statement.render())
        assert parsed.render() == statement.render()

    @given(variables,
           st.lists(st.tuples(identifiers, literals), min_size=1,
                    max_size=3),
           st.one_of(st.none(), qualifications()))
    def test_replace_roundtrip(self, variable, assignments, where):
        statement = quel_ast.ReplaceStmt(
            variable,
            [quel_ast.Target(value, alias=name)
             for name, value in assignments], where)
        (parsed,) = parse_quel(statement.render())
        assert parsed.render() == statement.render()

    @given(st.sampled_from(quel_ast.Aggregate.OPS), column_refs())
    def test_aggregate_roundtrip(self, op, operand):
        statement = quel_ast.RetrieveStmt(
            [quel_ast.Target(quel_ast.Aggregate(op, operand),
                             alias="agg")])
        (parsed,) = parse_quel(statement.render())
        assert parsed.render() == statement.render()


class TestSqlRoundTrip:
    @given(st.lists(column_refs(qualified=False), min_size=1, max_size=4),
           st.booleans(),
           st.one_of(st.none(), qualifications(qualified=False)))
    def test_select_roundtrip(self, columns, distinct, where):
        statement = sql_ast.SelectStmt(
            [sql_ast.SelectItem(c) for c in columns],
            [sql_ast.TableRef("T")], where=where, distinct=distinct)
        parsed = parse_select(statement.render())
        assert parsed.render() == statement.render()

    @given(st.lists(st.tuples(relations, st.one_of(
        st.none(), variables)), min_size=1, max_size=3, unique_by=(
            lambda pair: (pair[1] or pair[0]).lower())))
    def test_from_clause_roundtrip(self, tables):
        statement = sql_ast.SelectStmt(
            [sql_ast.SelectItem(ColumnRef("A",
                                          tables[0][1] or tables[0][0]))],
            [sql_ast.TableRef(name, alias) for name, alias in tables])
        parsed = parse_select(statement.render())
        assert parsed.render() == statement.render()

    @given(st.sampled_from(sql_ast.AggregateCall.OPS),
           column_refs(qualified=False), st.booleans())
    def test_aggregate_roundtrip(self, op, operand, distinct):
        call = sql_ast.AggregateCall(op, operand, distinct=distinct)
        statement = sql_ast.SelectStmt(
            [sql_ast.SelectItem(call, alias="agg")],
            [sql_ast.TableRef("T")])
        parsed = parse_select(statement.render())
        assert parsed.render() == statement.render()

    @given(st.lists(column_refs(qualified=False), min_size=1,
                    max_size=2))
    def test_group_by_roundtrip(self, keys):
        statement = sql_ast.SelectStmt(
            [sql_ast.SelectItem(key) for key in keys]
            + [sql_ast.SelectItem(
                sql_ast.AggregateCall("count", None))],
            [sql_ast.TableRef("T")], group_by=keys)
        parsed = parse_select(statement.render())
        assert parsed.render() == statement.render()
