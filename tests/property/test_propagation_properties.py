"""Property-based soundness of bound propagation.

Model check: for random constraint sets and conditions over a small
integer domain, every record satisfying all constraints and the query
condition must satisfy every propagated fact.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.inference.facts import FactBase
from repro.rules.clause import AttributeRef, Clause, Interval
from repro.rules.comparisons import ComparisonConstraint, propagate_bounds

ATTRIBUTES = [AttributeRef("T", name) for name in ("A", "B", "C")]
DOMAIN = list(range(0, 6))


@st.composite
def constraints(draw):
    left = draw(st.sampled_from(ATTRIBUTES))
    right = draw(st.sampled_from(
        [a for a in ATTRIBUTES if a != left]))
    op = draw(st.sampled_from(["<", "<="]))
    return ComparisonConstraint(left, op, right)


@st.composite
def interval_conditions(draw):
    attribute = draw(st.sampled_from(ATTRIBUTES))
    low = draw(st.integers(0, 5))
    high = draw(st.integers(low, 5))
    return Clause(attribute, Interval.closed(low, high))


def satisfying_records(constraint_list, condition):
    for values in itertools.product(DOMAIN, repeat=len(ATTRIBUTES)):
        record = dict(zip(ATTRIBUTES, values))
        if not condition.satisfied_by(record[condition.attribute]):
            continue
        if all(constraint.holds_for(record)
               for constraint in constraint_list):
            yield record


class TestPropagationSoundness:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(constraints(), max_size=4), interval_conditions())
    def test_propagated_facts_hold_in_every_model(self, constraint_list,
                                                  condition):
        facts = FactBase()
        facts.add_condition(condition)
        try:
            propagate_bounds(facts, constraint_list)
        except Exception:
            # Contradictory constraint cycles (a < b < a) may make the
            # fact base inconsistent; then there is no model to check.
            return
        for attribute, interval, _sources in facts.facts():
            for record in satisfying_records(constraint_list, condition):
                value = record.get(attribute)
                if value is None:
                    continue
                assert interval.contains_value(value), (
                    f"{attribute.render()} in {interval!r} fails on "
                    f"{record} given {condition.render()} and "
                    + ", ".join(c.render() for c in constraint_list))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(constraints(), max_size=4), interval_conditions())
    def test_propagation_is_idempotent(self, constraint_list, condition):
        facts = FactBase()
        facts.add_condition(condition)
        try:
            propagate_bounds(facts, constraint_list)
        except Exception:
            return
        snapshot = {ref.key: interval
                    for ref, interval, _s in facts.facts()}
        propagate_bounds(facts, constraint_list)
        again = {ref.key: interval for ref, interval, _s in facts.facts()}
        assert snapshot == again
