"""Property-based round-trip tests for the rule-relation encoding."""

from hypothesis import given, strategies as st

from repro.rules import (
    Clause, Interval, Rule, RuleSet, decode_rule_relations,
    encode_rule_relations,
)
from repro.rules.clause import AttributeRef

attribute_refs = st.builds(
    AttributeRef,
    st.sampled_from(["CLASS", "SUBMARINE", "SONAR"]),
    st.sampled_from(["A", "B", "C"]))


@st.composite
def clauses(draw):
    ref = draw(attribute_refs)
    # Per-attribute value type must be consistent within a rule set;
    # fix the type by the attribute name (A, B -> int; C -> str).
    if ref.attribute == "C":
        low, high = sorted((draw(st.sampled_from("pqrs")),
                            draw(st.sampled_from("pqrs"))))
    else:
        low, high = sorted((draw(st.integers(0, 50)),
                            draw(st.integers(0, 50))))
    return Clause(ref, Interval.closed(low, high))


@st.composite
def rules(draw):
    lhs = draw(st.lists(clauses(), min_size=1, max_size=3))
    rhs = draw(clauses())
    support = draw(st.integers(0, 100))
    subtype = draw(st.one_of(st.none(), st.sampled_from(["S1", "S2"])))
    return Rule(lhs, rhs, support=support, rhs_subtype=subtype,
                source=draw(st.sampled_from(["induced", "schema"])))


class TestRoundTrip:
    @given(st.lists(rules(), max_size=10))
    def test_encode_decode_identity(self, rule_list):
        original = RuleSet(rule_list)
        decoded = decode_rule_relations(encode_rule_relations(original))
        assert len(decoded) == len(original)
        for before, after in zip(original, decoded):
            assert before.lhs == after.lhs
            assert before.rhs == after.rhs
            assert before.support == after.support
            assert before.rhs_subtype == after.rhs_subtype
            assert before.source == after.source

    @given(st.lists(rules(), max_size=8))
    def test_value_encoding_is_order_preserving(self, rule_list):
        bundle = encode_rule_relations(RuleSet(rule_list))
        by_attribute = {}
        for row in bundle.values:
            by_attribute.setdefault(row[0], []).append((row[1], row[2]))
        for entries in by_attribute.values():
            codes = [code for code, _text in sorted(
                entries, key=lambda pair: pair[0])]
            assert codes == sorted(codes)

    @given(st.lists(rules(), max_size=8))
    def test_paper_projection_row_count(self, rule_list):
        original = RuleSet(rule_list)
        bundle = encode_rule_relations(original)
        expected = sum(len(rule.lhs) + 1 for rule in original)
        assert len(bundle.paper_projection()) == expected
