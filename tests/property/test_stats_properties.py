"""Property tests for the planner's statistics layer.

Invariants the cost model leans on:

* histogram bucket counts always sum to the number of indexed values,
* every selectivity estimate lands in [0, 1],
* range estimates are monotone in interval width (a superset interval
  never gets a smaller fraction).

The hardening pass that introduced these properties found three real
bugs -- a denormal-width ZeroDivisionError and an overflowing-span NaN
in ``Histogram.build``, and a point-vs-range estimator inconsistency
that broke monotonicity -- seeded below as explicit regressions.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.plan.stats import ColumnStats, Histogram
from repro.rules.clause import Interval

finite_floats = st.floats(allow_nan=False, allow_infinity=False)
numeric_values = st.one_of(st.integers(-10**9, 10**9), finite_floats)


def make_interval(low, high, low_open, high_open):
    """An Interval from two optionally-None bounds, normalized so it is
    never empty."""
    if low is not None and high is not None and low > high:
        low, high = high, low
    if low is not None and high is not None and low == high:
        low_open = high_open = False  # the point [v, v]
    return Interval(low, high, low_open=low_open, high_open=high_open)


intervals = st.builds(
    make_interval,
    st.one_of(st.none(), numeric_values),
    st.one_of(st.none(), numeric_values),
    st.booleans(), st.booleans())


class TestHistogramProperties:
    @settings(max_examples=200)
    @given(st.lists(numeric_values, min_size=1, max_size=60))
    def test_bucket_counts_sum_to_value_count(self, values):
        histogram = Histogram.build(values)
        assert histogram is not None
        assert sum(histogram.counts) == len(values) == histogram.total

    @settings(max_examples=200)
    @given(st.lists(numeric_values, min_size=1, max_size=60), intervals)
    def test_fraction_is_a_probability(self, values, interval):
        histogram = Histogram.build(values)
        fraction = histogram.fraction(interval)
        assert 0.0 <= fraction <= 1.0
        assert not math.isnan(fraction)

    @settings(max_examples=200)
    @given(st.lists(numeric_values, min_size=1, max_size=60),
           numeric_values, numeric_values, numeric_values, numeric_values)
    def test_fraction_monotone_in_interval_width(self, values, a, b, c, d):
        """fraction(outer) >= fraction(inner) whenever outer contains
        inner: widening a range predicate can only match more rows."""
        histogram = Histogram.build(values)
        inner_low, inner_high = min(a, b, c, d), max(a, b, c, d)
        mid = sorted([a, b, c, d])
        inner = Interval(mid[1], mid[2]) if mid[1] <= mid[2] else None
        outer = Interval(inner_low, inner_high)
        if inner is None:
            return
        assert (histogram.fraction(outer)
                >= histogram.fraction(inner) - 1e-9)

    @settings(max_examples=100)
    @given(st.lists(numeric_values, min_size=1, max_size=60))
    def test_unbounded_interval_covers_everything(self, values):
        histogram = Histogram.build(values)
        assert histogram.fraction(Interval.everything()) >= 1.0 - 1e-9


class TestColumnStatsProperties:
    @settings(max_examples=200)
    @given(st.lists(st.one_of(st.none(), numeric_values),
                    min_size=1, max_size=60),
           intervals)
    def test_selectivity_in_unit_interval(self, values, interval):
        stats = ColumnStats("V", values)
        fraction = stats.selectivity(interval, len(values))
        assert 0.0 <= fraction <= 1.0
        assert not math.isnan(fraction)

    @settings(max_examples=200)
    @given(st.lists(numeric_values, min_size=1, max_size=60),
           numeric_values, numeric_values, numeric_values, numeric_values)
    def test_estimate_range_monotone_in_width(self, values, a, b, c, d):
        """Range selectivity through the full ColumnStats path (the
        planner's ``estimate_range`` entry) is monotone in width."""
        stats = ColumnStats("V", values)
        mid = sorted([a, b, c, d])
        inner = Interval(mid[1], mid[2])
        outer = Interval(mid[0], mid[3])
        assert (stats.selectivity(outer, len(values))
                >= stats.selectivity(inner, len(values)) - 1e-9)


class TestFoundBugRegressions:
    """Crashes the property pass surfaced, pinned as plain tests."""

    def test_denormal_span_does_not_divide_by_zero(self):
        # (high - low) / 16 underflows to 0.0 for a sub-16-ulp span;
        # the old code then divided by the zero width.
        histogram = Histogram.build([0.0, 5e-324])
        assert histogram is not None
        assert sum(histogram.counts) == 2

    def test_overflowing_span_does_not_produce_nan(self):
        # high - low overflows to inf for a near-full-float-range span;
        # the old code computed int(inf/inf) -> ValueError(NaN).
        histogram = Histogram.build([-1.7e308, 1.7e308])
        assert histogram is not None
        assert sum(histogram.counts) == 2
        assert histogram.fraction(Interval.everything()) == 1.0
        assert not math.isnan(histogram.fraction(Interval.closed(0, 1)))

    def test_degenerate_histograms_still_estimate(self):
        histogram = Histogram.build([0.0, 5e-324])
        fraction = histogram.fraction(Interval.at_least(0.0))
        assert 0.0 <= fraction <= 1.0

    def test_range_estimate_never_below_contained_point(self):
        # Falsified by hypothesis: the point probe [0, 0] took the
        # distinct-count path (1/2) while the containing range [0, 1]
        # took the histogram path, whose linear interpolation assigns
        # measure zero to the data's boundary value -- so widening the
        # predicate *shrank* the estimate.  Fixed by flooring range
        # estimates with the point-probe mass when the interval reaches
        # the observed [min, max] band.
        stats = ColumnStats("V", [0, -1])
        point = stats.selectivity(Interval.closed(0, 0), 2)
        wider = stats.selectivity(Interval.closed(0, 1), 2)
        assert wider >= point > 0.0
