"""Property-based soundness of ILS tree rules on random tables."""

from hypothesis import given, settings, strategies as st

from repro.induction import InductionConfig, InductiveLearningSubsystem
from repro.ker import SchemaBinding, parse_ker
from repro.relational import Database, INTEGER, char
from repro.rules.clause import AttributeRef

DDL = """
object type T
    has key: Id     domain: INTEGER
    has:     A      domain: INTEGER
    has:     B      domain: INTEGER
    has:     Label  domain: CHAR[2]
T contains TA, TB, TC
TA isa T with Label = "la"
TB isa T with Label = "lb"
TC isa T with Label = "lc"
"""

rows_strategy = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6),
              st.sampled_from(["la", "lb", "lc"])),
    min_size=1, max_size=40)


def build_binding(rows):
    db = Database()
    db.create("T", [("Id", INTEGER), ("A", INTEGER), ("B", INTEGER),
                    ("Label", char(2))],
              rows=[(index, a, b, label)
                    for index, (a, b, label) in enumerate(rows)],
              key=["Id"])
    return SchemaBinding(parse_ker(DDL), db)


class TestTreeRuleSoundness:
    @settings(max_examples=40, deadline=None)
    @given(rows_strategy, st.integers(1, 4))
    def test_all_rules_sound_on_training_data(self, rows, n_c):
        binding = build_binding(rows)
        rules = InductiveLearningSubsystem(
            binding, InductionConfig(n_c=n_c)).induce(
            include_tree_rules=True)
        relation = binding.database.relation("T")
        records = [{AttributeRef("T", column.name):
                    row[relation.schema.position(column.name)]
                    for column in relation.schema.columns}
                   for row in relation]
        for rule in rules:
            assert rule.sound_on(records), rule.render()

    @settings(max_examples=25, deadline=None)
    @given(rows_strategy)
    def test_tree_rules_never_use_the_key(self, rows):
        binding = build_binding(rows)
        rules = InductiveLearningSubsystem(
            binding, InductionConfig(n_c=1)).induce(
            include_tree_rules=True)
        for rule in rules:
            if rule.source != "id3":
                continue
            premise_attributes = {clause.attribute.attribute.lower()
                                  for clause in rule.lhs}
            assert "id" not in premise_attributes
