"""Unit tests for QUEL aggregate targets."""

import pytest

from repro.errors import QuelError
from repro.quel import QuelSession
from repro.relational import Database, INTEGER, char


@pytest.fixture()
def session():
    db = Database()
    db.create("R", [("X", INTEGER), ("Y", char(2))],
              rows=[(1, "a"), (2, "a"), (3, "b"), (None, "b"),
                    (5, None), (2, "c")])
    quel = QuelSession(db)
    quel.execute("range of r is R")
    return quel


class TestAggregates:
    def test_count_ignores_nulls(self, session):
        out = session.execute("retrieve (count(r.X))")
        assert out.rows == [(5,)]

    def test_countu_distinct(self, session):
        out = session.execute("retrieve (countu(r.X))")
        assert out.rows == [(4,)]  # 1, 2, 3, 5

    def test_min_max(self, session):
        out = session.execute("retrieve (lo = min(r.X), hi = max(r.X))")
        assert out.rows == [(1, 5)]
        assert out.schema.column_names() == ["lo", "hi"]

    def test_sum_avg(self, session):
        out = session.execute("retrieve (s = sum(r.X), m = avg(r.X))")
        assert out.rows == [(13.0, 2.6)]

    def test_with_where(self, session):
        out = session.execute(
            'retrieve (count(r.X)) where r.Y = "a"')
        assert out.rows == [(2,)]

    def test_empty_input(self, session):
        out = session.execute(
            'retrieve (n = count(r.X), lo = min(r.X)) where r.Y = "zz"')
        assert out.rows == [(0, None)]

    def test_default_column_name_is_op(self, session):
        out = session.execute("retrieve (min(r.X))")
        assert out.schema.column_names() == ["min"]

    def test_into_registers(self, session):
        session.execute("retrieve into STATS (count(r.X))")
        assert "STATS" in session.database

    def test_aggregate_over_expression(self, session):
        out = session.execute("retrieve (max(r.X * 10))")
        assert out.rows == [(50,)]

    def test_mixed_targets_rejected(self, session):
        with pytest.raises(QuelError, match="mixed"):
            session.execute("retrieve (r.Y, count(r.X))")

    def test_sort_by_rejected(self, session):
        with pytest.raises(QuelError, match="sort by"):
            session.execute("retrieve (count(r.X)) sort by r.Y")

    def test_string_min(self, session):
        out = session.execute("retrieve (min(r.Y))")
        assert out.rows == [("a",)]

    def test_ship_db_aggregate(self, ship_db):
        quel = QuelSession(ship_db)
        quel.execute("range of c is CLASS")
        out = quel.execute(
            'retrieve (n = count(c.Class), hi = max(c.Displacement)) '
            'where c.Type = "SSBN"')
        assert out.rows == [(4, 30000)]
