"""Unit tests for the QUEL interpreter."""

import pytest

from repro.errors import QuelError
from repro.quel import QuelSession
from repro.relational import Database, INTEGER, char


@pytest.fixture()
def db():
    database = Database()
    database.create("R", [("X", INTEGER), ("Y", char(4))],
                    rows=[(1, "a"), (2, "a"), (3, "b"), (3, "c"),
                          (4, "b")])
    database.create("Q", [("X", INTEGER), ("Z", char(4))],
                    rows=[(1, "p"), (3, "q")])
    return database


@pytest.fixture()
def session(db):
    quel = QuelSession(db)
    quel.execute("range of r is R")
    quel.execute("range of q is Q")
    return quel


class TestRange:
    def test_unknown_relation(self, session):
        with pytest.raises(QuelError, match="unknown relation"):
            session.execute("range of z is NOPE")

    def test_undeclared_variable(self, session):
        with pytest.raises(QuelError, match="undeclared range variable"):
            session.execute("retrieve (zz.X)")

    def test_unqualified_reference_rejected(self, session):
        with pytest.raises(QuelError, match="unqualified"):
            session.execute("retrieve (X)")


class TestRetrieve:
    def test_simple_projection(self, session):
        out = session.execute("retrieve (r.X)")
        assert len(out) == 5
        assert out.schema.column_names() == ["X"]

    def test_unique(self, session):
        out = session.execute("retrieve unique (r.Y)")
        assert len(out) == 3

    def test_where(self, session):
        out = session.execute("retrieve (r.X) where r.Y = \"b\"")
        assert sorted(row[0] for row in out) == [3, 4]

    def test_sort_by(self, session):
        out = session.execute("retrieve (r.Y, r.X) sort by r.Y, r.X")
        assert [row for row in out][0] == ("a", 1)
        assert [row for row in out][-1] == ("c", 3)

    def test_into_registers_result(self, session, db):
        session.execute("retrieve into OUT (r.X)")
        assert "OUT" in db

    def test_into_replaces(self, session, db):
        session.execute("retrieve into OUT (r.X)")
        session.execute("retrieve into OUT (r.Y)")
        assert db.relation("OUT").schema.column_names() == ["Y"]

    def test_join_semantics(self, session):
        out = session.execute(
            "retrieve (r.X, q.Z) where r.X = q.X")
        assert sorted(out.rows) == [(1, "p"), (3, "q"), (3, "q")]

    def test_existential_variable(self, session):
        out = session.execute(
            "retrieve unique (r.Y) where r.X = q.X")
        assert sorted(row[0] for row in out) == ["a", "b", "c"]

    def test_alias_and_arithmetic(self, session):
        out = session.execute("retrieve (double = r.X * 2) where r.X = 3")
        assert out.schema.column_names() == ["double"]
        assert out.rows[0] == (6,)

    def test_duplicate_output_names_suffixed(self, session):
        out = session.execute("retrieve (r.X, r.X)")
        assert out.schema.column_names() == ["X", "X_2"]

    def test_result_types_from_source(self, session):
        out = session.execute("retrieve (r.Y)")
        assert out.schema.column("Y").datatype == char(4)


class TestDelete:
    def test_delete_all(self, session, db):
        count = session.execute("delete r")
        assert count == 5
        assert len(db.relation("R")) == 0

    def test_delete_where(self, session, db):
        count = session.execute("delete r where r.Y = \"a\"")
        assert count == 2
        assert len(db.relation("R")) == 3

    def test_delete_with_witness(self, session, db):
        count = session.execute("delete r where r.X = q.X")
        assert count == 3  # x=1 and both x=3 rows
        assert len(db.relation("R")) == 2

    def test_delete_undeclared(self, session):
        with pytest.raises(QuelError, match="undeclared"):
            session.execute("delete nope")


class TestAppend:
    def test_append_constants(self, session, db):
        count = session.execute('append to R (X = 9, Y = "z")')
        assert count == 1
        assert (9, "z") in db.relation("R").rows

    def test_append_missing_attribute_defaults_null(self, session, db):
        session.execute("append to R (X = 10)")
        assert (10, None) in db.relation("R").rows

    def test_append_unknown_attribute(self, session):
        with pytest.raises(QuelError, match="unknown attributes"):
            session.execute("append to R (Bogus = 1)")

    def test_append_from_query(self, session, db):
        count = session.execute(
            "append to Q (X = r.X, Z = r.Y) where r.Y = \"b\"")
        assert count == 2
        assert len(db.relation("Q")) == 4

    def test_append_requires_aliases(self, session):
        with pytest.raises(QuelError, match="attr = expression"):
            session.execute("append to R (r.X)")


class TestPaperAlgorithm:
    """The exact statement sequence of Section 5.2.1."""

    def test_steps_1_and_2(self, session, db):
        session.execute(
            "retrieve into S unique (r.Y, r.X) sort by r.Y")
        assert len(db.relation("S")) == 5
        session.execute("range of s is S")
        session.execute(
            "retrieve into T unique (s.Y, s.X) "
            "where (r.X = s.X and r.Y != s.Y)")
        assert sorted(db.relation("T").rows) == [("b", 3), ("c", 3)]
        session.execute("range of t is T")
        deleted = session.execute(
            "delete s where (s.X = t.X and s.Y = t.Y)")
        assert deleted == 2
        assert sorted(db.relation("S").rows) == [
            ("a", 1), ("a", 2), ("b", 4)]
