"""Unit tests for the QUEL parser."""

import pytest

from repro.errors import ParseError
from repro.quel import ast, parse_quel
from repro.relational.expressions import (
    And, ColumnRef, Comparison, Literal, Not, Or,
)


class TestRange:
    def test_basic(self):
        (stmt,) = parse_quel("range of r is SUBMARINE")
        assert stmt == ast.RangeStmt("r", "SUBMARINE")

    def test_missing_is(self):
        with pytest.raises(ParseError):
            parse_quel("range of r SUBMARINE")


class TestRetrieve:
    def test_paper_step1(self):
        (stmt,) = parse_quel(
            "retrieve into S unique (r.Y, r.X) sort by r.Y")
        assert stmt.into == "S"
        assert stmt.unique
        assert [t.expression.render() for t in stmt.targets] == [
            "r.Y", "r.X"]
        assert [k.render() for k in stmt.sort_by] == ["r.Y"]

    def test_paper_step2(self):
        (stmt,) = parse_quel(
            "retrieve into T unique (s.Y, s.X) "
            "where (r.X = s.X and r.Y != s.Y)")
        assert isinstance(stmt.where, And)
        assert len(stmt.where.parts) == 2

    def test_plain_retrieve(self):
        (stmt,) = parse_quel("retrieve (r.A)")
        assert stmt.into is None
        assert not stmt.unique

    def test_alias_target(self):
        (stmt,) = parse_quel("retrieve (total = r.A + r.B)")
        assert stmt.targets[0].alias == "total"

    def test_multiple_statements(self):
        statements = parse_quel(
            "range of r is T; retrieve (r.A)")
        assert len(statements) == 2

    def test_missing_parens(self):
        with pytest.raises(ParseError):
            parse_quel("retrieve r.A")


class TestDeleteAppend:
    def test_delete_where(self):
        (stmt,) = parse_quel("delete s where (s.X = t.X)")
        assert stmt.variable == "s"
        assert isinstance(stmt.where, Comparison)

    def test_delete_all(self):
        (stmt,) = parse_quel("delete s")
        assert stmt.where is None

    def test_append(self):
        (stmt,) = parse_quel('append to R (X = 9, Y = "z")')
        assert stmt.relation == "R"
        assert [t.alias for t in stmt.assignments] == ["X", "Y"]


class TestQualification:
    def test_or_and_precedence(self):
        (stmt,) = parse_quel(
            "retrieve (r.A) where r.A = 1 and r.B = 2 or r.C = 3")
        assert isinstance(stmt.where, Or)
        assert isinstance(stmt.where.parts[0], And)

    def test_not(self):
        (stmt,) = parse_quel("retrieve (r.A) where not r.A = 1")
        assert isinstance(stmt.where, Not)

    def test_parenthesized_qualification(self):
        (stmt,) = parse_quel(
            "retrieve (r.A) where (r.A = 1 or r.B = 2) and r.C = 3")
        assert isinstance(stmt.where, And)
        assert isinstance(stmt.where.parts[0], Or)

    def test_parenthesized_scalar_on_comparison_left(self):
        (stmt,) = parse_quel("retrieve (r.A) where (r.A) = 1")
        assert isinstance(stmt.where, Comparison)

    def test_arithmetic(self):
        (stmt,) = parse_quel("retrieve (r.A) where r.A * 2 + 1 > 7")
        assert stmt.where.render() == "((r.A * 2) + 1) > 7"

    def test_negative_literal(self):
        (stmt,) = parse_quel("retrieve (r.A) where r.A > -5")
        assert stmt.where.right == Literal(-5)

    def test_string_literals(self):
        (stmt,) = parse_quel('retrieve (r.A) where r.B = "BQS-04"')
        assert stmt.where.right == Literal("BQS-04")

    def test_keyword_in_expression_rejected(self):
        with pytest.raises(ParseError):
            parse_quel("retrieve (r.A) where retrieve = 1")

    def test_comparison_required(self):
        with pytest.raises(ParseError, match="comparison"):
            parse_quel("retrieve (r.A) where r.A")


class TestRendering:
    def test_statement_render_roundtrip(self):
        text = ('retrieve into S unique (r.Y, r.X) '
                'where r.X = 1 sort by r.Y')
        (stmt,) = parse_quel(text)
        (again,) = parse_quel(stmt.render())
        assert again == stmt
