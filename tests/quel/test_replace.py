"""Unit tests for QUEL's replace statement."""

import pytest

from repro.errors import QuelError
from repro.quel import QuelSession, parse_quel
from repro.relational import Database, INTEGER, char


@pytest.fixture()
def session():
    db = Database()
    db.create("EMP", [("Name", char(10)), ("Dept", char(4)),
                      ("Salary", INTEGER)],
              rows=[("ann", "eng", 100), ("bob", "eng", 110),
                    ("cat", "ops", 90)])
    db.create("RAISES", [("Dept", char(4)), ("Amount", INTEGER)],
              rows=[("eng", 15)])
    quel = QuelSession(db)
    quel.execute("range of e is EMP")
    quel.execute("range of r is RAISES")
    return quel


class TestParse:
    def test_parse_shape(self):
        (stmt,) = parse_quel(
            'replace e (Salary = e.Salary + 10) where e.Dept = "eng"')
        assert stmt.variable == "e"
        assert stmt.assignments[0].alias == "Salary"

    def test_render_roundtrip(self):
        text = 'replace e (Salary = e.Salary + 10) where e.Dept = "eng"'
        (stmt,) = parse_quel(text)
        (again,) = parse_quel(stmt.render())
        assert again == stmt


class TestExecute:
    def test_conditional_update(self, session):
        count = session.execute(
            'replace e (Salary = e.Salary + 10) where e.Dept = "eng"')
        assert count == 2
        emp = session.database.relation("EMP")
        salaries = dict(zip(emp.column_values("Name"),
                            emp.column_values("Salary")))
        assert salaries == {"ann": 110, "bob": 120, "cat": 90}

    def test_unconditional_update(self, session):
        count = session.execute("replace e (Salary = 0)")
        assert count == 3
        assert set(session.database.relation(
            "EMP").column_values("Salary")) == {0}

    def test_update_with_witness_values(self, session):
        count = session.execute(
            "replace e (Salary = e.Salary + r.Amount) "
            "where e.Dept = r.Dept")
        assert count == 2
        emp = session.database.relation("EMP")
        salaries = dict(zip(emp.column_values("Name"),
                            emp.column_values("Salary")))
        assert salaries == {"ann": 115, "bob": 125, "cat": 90}

    def test_unmatched_rows_untouched(self, session):
        session.execute(
            'replace e (Dept = "hq") where e.Salary > 105')
        emp = session.database.relation("EMP")
        departments = dict(zip(emp.column_values("Name"),
                               emp.column_values("Dept")))
        assert departments == {"ann": "eng", "bob": "hq", "cat": "ops"}

    def test_undeclared_variable(self, session):
        with pytest.raises(QuelError, match="undeclared"):
            session.execute("replace zz (Salary = 1)")

    def test_unknown_attribute(self, session):
        with pytest.raises(QuelError, match="no attribute"):
            session.execute("replace e (Bogus = 1)")

    def test_assignment_requires_alias(self, session):
        with pytest.raises(QuelError, match="attr = expression"):
            session.execute("replace e (e.Salary)")

    def test_type_checked(self, session):
        from repro.errors import TypeMismatchError
        with pytest.raises(TypeMismatchError):
            session.execute('replace e (Salary = "lots")')


class TestReplaceWhere:
    def test_relation_level_api(self, session):
        emp = session.database.relation("EMP")
        updated = emp.replace_where(
            lambda row: row[1] == "ops",
            lambda row: (row[0], row[1], 999))
        assert updated == 1
        assert ("cat", "ops", 999) in emp.rows
