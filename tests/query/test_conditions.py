"""Unit tests for query condition extraction."""

import pytest

from repro.errors import SqlError
from repro.query import extract_conditions
from repro.rules.clause import AttributeRef, Interval
from repro.sql import parse_select


def conditions(ship_db, sql):
    return extract_conditions(ship_db, parse_select(sql))


class TestClauses:
    def test_comparison_to_constant(self, ship_db):
        out = conditions(ship_db, (
            "SELECT Class FROM CLASS WHERE Displacement > 8000"))
        (clause,) = out.clauses
        assert clause.attribute == AttributeRef("CLASS", "Displacement")
        assert clause.interval == Interval.at_least(8000, strict=True)

    def test_flipped_comparison(self, ship_db):
        out = conditions(ship_db, (
            "SELECT Class FROM CLASS WHERE 8000 < Displacement"))
        (clause,) = out.clauses
        assert clause.interval == Interval.at_least(8000, strict=True)

    def test_equality(self, ship_db):
        out = conditions(ship_db, (
            "SELECT Class FROM CLASS WHERE Type = 'SSBN'"))
        assert out.clauses[0].interval == Interval.point("SSBN")

    def test_between(self, ship_db):
        out = conditions(ship_db, (
            "SELECT Class FROM CLASS "
            "WHERE Displacement BETWEEN 2000 AND 7000"))
        assert len(out.clauses) == 2

    def test_alias_resolved_to_relation(self, ship_db):
        out = conditions(ship_db, (
            "SELECT c.Class FROM CLASS c WHERE c.Displacement > 8000"))
        assert out.clauses[0].attribute.relation == "CLASS"


class TestEquivalences:
    def test_join_condition(self, ship_db):
        out = conditions(ship_db, (
            "SELECT SUBMARINE.Name FROM SUBMARINE, CLASS "
            "WHERE SUBMARINE.Class = CLASS.Class"))
        (pair,) = out.equivalences
        assert pair == (AttributeRef("SUBMARINE", "Class"),
                        AttributeRef("CLASS", "Class"))

    def test_non_equi_join_unused(self, ship_db):
        out = conditions(ship_db, (
            "SELECT c1.Class FROM CLASS c1, CLASS c2 "
            "WHERE c1.Displacement < c2.Displacement"))
        assert not out.equivalences
        assert len(out.unused) == 1


class TestUnused:
    def test_disjunction_unused(self, ship_db):
        out = conditions(ship_db, (
            "SELECT Class FROM CLASS "
            "WHERE Class = '0101' OR Class = '0103'"))
        assert not out.clauses
        assert len(out.unused) == 1

    def test_not_equal_unused(self, ship_db):
        out = conditions(ship_db, (
            "SELECT Class FROM CLASS WHERE Type != 'SSN'"))
        assert not out.clauses
        assert len(out.unused) == 1

    def test_mix_of_usable_and_unused(self, ship_db):
        out = conditions(ship_db, (
            "SELECT Class FROM CLASS "
            "WHERE Displacement > 8000 AND NOT Type = 'X'"))
        assert len(out.clauses) == 1
        assert len(out.unused) == 1


class TestOutputRefs:
    def test_output_refs_resolved(self, ship_db):
        out = conditions(ship_db, (
            "SELECT SUBMARINE.Name, CLASS.Type FROM SUBMARINE, CLASS "
            "WHERE SUBMARINE.Class = CLASS.Class"))
        assert out.output_refs == [
            AttributeRef("SUBMARINE", "Name"),
            AttributeRef("CLASS", "Type")]

    def test_unknown_alias_raises(self, ship_db):
        with pytest.raises(SqlError):
            conditions(ship_db, "SELECT zz.A FROM CLASS WHERE zz.B = 1")

    def test_ambiguous_unqualified_raises(self, ship_db):
        with pytest.raises(SqlError, match="ambiguous"):
            conditions(ship_db, (
                "SELECT Type FROM CLASS, TYPE WHERE Class = '0101'"))
