"""Unit tests for the end-to-end intensional query processor."""

import pytest

from repro.query import IntensionalQueryProcessor
from repro.rules.ruleset import RuleSet
from tests.conftest import EXAMPLE_1, EXAMPLE_2, EXAMPLE_3, SHIP_ORDER


class TestConstruction:
    def test_from_database_without_schema(self, ship_db):
        system = IntensionalQueryProcessor.from_database(ship_db)
        result = system.ask("SELECT Class FROM CLASS "
                            "WHERE Displacement > 8000")
        assert len(result.extensional) == 2
        assert result.intensional == []

    def test_from_database_with_schema_rules(self, ship_db, ship_schema):
        system = IntensionalQueryProcessor.from_database(
            ship_db, ker_schema=ship_schema,
            include_schema_rules=True, relation_order=SHIP_ORDER)
        assert len(system.rules) > 18

    def test_explicit_rules(self, ship_db, ship_rules):
        system = IntensionalQueryProcessor(ship_db, ship_rules)
        assert len(system.rules) == 18


class TestAsk:
    def test_extensional_and_intensional(self, ship_system):
        result = ship_system.ask(EXAMPLE_1)
        assert len(result.extensional) == 2
        assert any(answer.kind == "forward"
                   for answer in result.intensional)

    def test_direction_toggles(self, ship_system):
        forward_only = ship_system.ask(EXAMPLE_3, backward=False)
        assert forward_only.inference.forward
        assert not forward_only.inference.backward

    def test_unused_conditions_surfaced(self, ship_system):
        result = ship_system.ask(
            "SELECT Class FROM CLASS "
            "WHERE Displacement > 8000 AND NOT ClassName = 'Ohio'")
        assert len(result.unused) == 1
        assert "unused" in result.render()

    def test_render_includes_both_answers(self, ship_system):
        text = ship_system.ask(EXAMPLE_2).render()
        assert "Extensional answer:" in text
        assert "Backward inference" in text

    def test_repr(self, ship_system):
        assert "tuples" in repr(ship_system.ask(EXAMPLE_1))


class TestEmptyKnowledge:
    def test_empty_rules_yield_no_answers(self, ship_db):
        system = IntensionalQueryProcessor(ship_db, RuleSet())
        result = system.ask(EXAMPLE_1)
        assert result.combined_answer() is None


class TestNoStorageErrors:
    """Transaction control without storage fails with an
    operation-specific message and a CLI-actionable hint."""

    @pytest.mark.parametrize("method, action", [
        ("begin", "begin a transaction"),
        ("commit", "commit a transaction"),
        ("rollback", "roll back a transaction"),
        ("checkpoint", "checkpoint the database"),
    ])
    def test_each_operation_names_itself(self, ship_db, method, action):
        from repro.errors import StorageError
        system = IntensionalQueryProcessor(ship_db, RuleSet())
        with pytest.raises(StorageError) as info:
            getattr(system, method)()
        assert f"cannot {action}" in str(info.value)
        assert "no durable storage attached" in str(info.value)
        assert "--data-dir" in info.value.hint
        assert "repro-server" in info.value.hint
