"""Unit tests for relational-algebra operators."""

import pytest

from repro.errors import SchemaError
from repro.relational import algebra
from repro.relational.datatypes import INTEGER, char
from repro.relational.expressions import ColumnRef, Comparison, Literal
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema


@pytest.fixture()
def emp():
    schema = RelationSchema("EMP", [
        Column("Name", char(10)), Column("Dept", char(4)),
        Column("Age", INTEGER)])
    return Relation(schema, [
        ("ann", "eng", 30), ("bob", "eng", 40), ("cat", "ops", 35),
        ("dan", "ops", None), ("eve", "mkt", 28)])


@pytest.fixture()
def dept():
    schema = RelationSchema("DEPT", [
        Column("Dept", char(4)), Column("Site", char(8))])
    return Relation(schema, [("eng", "berkeley"), ("ops", "la"),
                             ("hr", "sf")])


class TestSelect:
    def test_select_predicate(self, emp):
        out = algebra.select(
            emp, Comparison(">", ColumnRef("Age"), Literal(30)))
        assert {row[0] for row in out} == {"bob", "cat"}

    def test_select_null_excluded(self, emp):
        out = algebra.select(
            emp, Comparison("<", ColumnRef("Age"), Literal(99)))
        assert "dan" not in {row[0] for row in out}

    def test_select_where_callable(self, emp):
        out = algebra.select_where(emp, lambda r: r["Dept"] == "ops")
        assert len(out) == 2

    def test_select_does_not_mutate(self, emp):
        algebra.select(emp, Comparison(">", ColumnRef("Age"), Literal(99)))
        assert len(emp) == 5


class TestProject:
    def test_project_keeps_duplicates(self, emp):
        out = algebra.project(emp, ["Dept"])
        assert len(out) == 5

    def test_project_distinct(self, emp):
        out = algebra.project(emp, ["Dept"], distinct=True)
        assert len(out) == 3

    def test_project_reorders(self, emp):
        out = algebra.project(emp, ["Age", "Name"])
        assert out.schema.column_names() == ["Age", "Name"]

    def test_rename(self, emp):
        out = algebra.rename(emp, "STAFF", {"Name": "Person"})
        assert out.name == "STAFF"
        assert out.schema.has_column("Person")


class TestJoin:
    def test_equijoin(self, emp, dept):
        out = algebra.equijoin(emp, dept, [("Dept", "Dept")])
        assert len(out) == 4  # eve's mkt has no dept row
        assert out.schema.has_column("EMP_Dept")
        assert out.schema.has_column("DEPT_Dept")

    def test_equijoin_requires_pairs(self, emp, dept):
        with pytest.raises(SchemaError):
            algebra.equijoin(emp, dept, [])

    def test_natural_join(self, emp, dept):
        out = algebra.natural_join(emp, dept)
        assert len(out) == 4

    def test_natural_join_no_shared(self, emp):
        other = Relation(RelationSchema("X", [Column("Z", INTEGER)]), [(1,)])
        with pytest.raises(SchemaError, match="share no columns"):
            algebra.natural_join(emp, other)

    def test_cross(self, emp, dept):
        assert len(algebra.cross(emp, dept)) == 15

    def test_null_keys_never_match(self, dept):
        schema = RelationSchema("L", [Column("Dept", char(4))])
        left = Relation(schema, [(None,), ("eng",)])
        out = algebra.equijoin(left, dept, [("Dept", "Dept")])
        assert len(out) == 1


class TestSetOperations:
    def test_union(self, emp):
        out = algebra.union(emp, emp)
        assert len(out) == 10

    def test_difference_cancels_one_per_match(self, emp):
        doubled = algebra.union(emp, emp)
        out = algebra.difference(doubled, emp)
        assert out == emp

    def test_intersection(self, emp):
        subset = algebra.select(
            emp, Comparison("=", ColumnRef("Dept"), Literal("eng")))
        out = algebra.intersection(emp, subset)
        assert out == subset

    def test_incompatible_arity(self, emp, dept):
        with pytest.raises(SchemaError, match="arities"):
            algebra.union(emp, dept)

    def test_incompatible_types(self, dept):
        other = Relation(RelationSchema("X", [
            Column("A", INTEGER), Column("B", char(8))]), [(1, "x")])
        with pytest.raises(SchemaError, match="incompatible"):
            algebra.union(dept, other)


class TestSortDistinctGroup:
    def test_sort(self, emp):
        out = algebra.sort(emp, ["Age"])
        assert out.rows[0][0] == "dan"  # NULL first
        assert out.rows[-1][0] == "bob"

    def test_group_by_count(self, emp):
        out = algebra.group_by(emp, ["Dept"], {"n": ("count", "")})
        counts = {row[0]: row[1] for row in out}
        assert counts == {"eng": 2, "ops": 2, "mkt": 1}

    def test_group_by_min_max(self, emp):
        out = algebra.group_by(
            emp, ["Dept"], {"lo": ("min", "Age"), "hi": ("max", "Age")})
        by_dept = {row[0]: (row[1], row[2]) for row in out}
        assert by_dept["eng"] == (30, 40)
        assert by_dept["ops"] == (35, 35)  # NULL ignored

    def test_group_by_avg_sum(self, emp):
        out = algebra.group_by(
            emp, ["Dept"], {"avg": ("avg", "Age"), "sum": ("sum", "Age")})
        by_dept = {row[0]: (row[1], row[2]) for row in out}
        assert by_dept["eng"] == (35.0, 70.0)

    def test_group_by_unknown_aggregate(self, emp):
        with pytest.raises(SchemaError, match="unknown aggregate"):
            algebra.group_by(emp, ["Dept"], {"x": ("median", "Age")})

    def test_group_all_null_yields_none(self, emp):
        only_dan = algebra.select(
            emp, Comparison("=", ColumnRef("Name"), Literal("dan")))
        out = algebra.group_by(only_dan, ["Dept"], {"m": ("min", "Age")})
        assert out.rows[0][1] is None
