"""Unit tests for the catalog and database facade."""

import pytest

from repro.errors import CatalogError
from repro.relational import Database, INTEGER, char
from repro.relational.catalog import Catalog
from repro.relational.expressions import ColumnRef, Comparison, Literal
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema


def make_relation(name="T"):
    return Relation(RelationSchema(name, [Column("A", INTEGER)]), [(1,)])


class TestCatalog:
    def test_register_and_get(self):
        catalog = Catalog()
        catalog.register(make_relation())
        assert catalog.get("t").name == "T"

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.register(make_relation())
        with pytest.raises(CatalogError, match="already exists"):
            catalog.register(make_relation("t"))

    def test_replace(self):
        catalog = Catalog()
        catalog.register(make_relation())
        replacement = make_relation()
        replacement.insert((2,))
        catalog.register(replacement, replace=True)
        assert len(catalog.get("T")) == 2

    def test_get_unknown(self):
        with pytest.raises(CatalogError, match="no relation"):
            Catalog().get("missing")

    def test_drop(self):
        catalog = Catalog()
        catalog.register(make_relation())
        catalog.drop("T")
        assert "T" not in catalog
        with pytest.raises(CatalogError):
            catalog.drop("T")

    def test_iteration_order(self):
        catalog = Catalog()
        catalog.register(make_relation("B"))
        catalog.register(make_relation("A"))
        assert catalog.names() == ["B", "A"]


class TestDatabase:
    @pytest.fixture()
    def db(self):
        database = Database("test")
        database.create("EMP", [("Name", char(10)), ("Age", INTEGER)],
                        rows=[("ann", 30), ("bob", 40)], key=["Name"])
        return database

    def test_create_and_relation(self, db):
        assert len(db.relation("emp")) == 2

    def test_contains(self, db):
        assert "EMP" in db
        assert "NOPE" not in db

    def test_insert_delete(self, db):
        db.insert("EMP", [("cat", 25)])
        assert len(db.relation("EMP")) == 3
        deleted = db.delete("EMP", lambda r: r["Age"] < 31)
        assert deleted == 2

    def test_select_project_join(self, db):
        db.create("BONUS", [("Name", char(10)), ("Amt", INTEGER)],
                  rows=[("ann", 100)])
        joined = db.join("EMP", "BONUS", [("Name", "Name")])
        assert len(joined) == 1
        old = db.select("EMP", Comparison(
            ">", ColumnRef("Age"), Literal(35)))
        assert len(old) == 1
        names = db.project("EMP", ["Name"])
        assert names.schema.column_names() == ["Name"]

    def test_copy_is_deep(self, db):
        clone = db.copy()
        clone.insert("EMP", [("zed", 50)])
        assert len(db.relation("EMP")) == 2

    def test_total_rows_and_render(self, db):
        assert db.total_rows() == 2
        assert "Relation EMP" in db.render()

    def test_drop(self, db):
        db.drop("EMP")
        assert "EMP" not in db
