"""The columnar store: layout, dictionary encoding, kernels, knobs.

The columnar path is a pure storage/execution refactor -- every test
here pins some facet of "the rows are authoritative and the store is an
exact, version-validated cache over them": dictionary round-trips,
append-only code spaces under DML, kernel masks agreeing with per-row
predicate evaluation over encoded and raw layouts (across the ship and
hospital domains), the ``REPRO_COLUMNAR`` knob's loud fallback, and the
result cache's indifference to the storage layout.
"""

import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExpressionError, SchemaError
from repro.relational import columnar, compiled, kernels
from repro.relational.columnar import (
    ColumnStore, DictionaryColumn, NULL_CODE, PlainColumn,
)
from repro.relational.datatypes import INTEGER, REAL, char
from repro.relational.expressions import (
    And, ColumnRef, Comparison, Environment, IsNull, Literal, Not, Or,
)
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema
from tests.domain_fixtures import EQUIVALENCE_FIXTURES

needs_numpy = pytest.mark.skipif(not columnar.HAS_NUMPY,
                                 reason="numpy not installed")


def _relation(rows, label_width=8):
    return Relation(RelationSchema("T", [
        Column("Id", INTEGER), Column("Score", REAL),
        Column("Label", char(label_width)),
    ]), rows)


def _mask_reference(relation, predicate):
    """Per-row interpreter evaluation -- the semantics kernels must hit."""
    out = []
    for row in relation.rows:
        env = Environment.for_row(relation.schema, row)
        out.append(bool(predicate.evaluate(env)))
    return out


def _as_list(mask, n):
    if mask is None:
        return [True] * n
    return [bool(value) for value in mask]


# -- store layout ------------------------------------------------------------


def test_store_column_variants():
    relation = _relation([(1, 1.5, "a"), (2, 2.5, "b"), (3, None, "a")])
    store = relation.column_store()
    assert isinstance(store.columns[0], PlainColumn)
    assert isinstance(store.columns[1], PlainColumn)
    assert isinstance(store.columns[2], DictionaryColumn)
    assert store.values(2) == ["a", "b", "a"]
    assert list(store.columns[2].codes) == [0, 1, 0]


def test_dictionary_bails_to_plain_past_cardinality_cap(monkeypatch):
    monkeypatch.setattr(columnar, "DICT_MAX_CARDINALITY", 2)
    relation = _relation([(i, float(i), f"v{i}") for i in range(5)])
    store = ColumnStore(relation.schema, relation.rows)
    assert isinstance(store.columns[2], PlainColumn)
    assert store.values(2) == [f"v{i}" for i in range(5)]


def test_store_is_version_validated_cache():
    relation = _relation([(1, 1.0, "a")])
    store = relation.column_store()
    assert relation.column_store() is store  # fresh: served as-is
    relation.insert((2, 2.0, "b"))
    assert relation.column_store() is store  # appends fold in place
    assert store.values(2) == ["a", "b"]
    assert len(store.rows) == 2
    relation.delete_where(lambda row: row[0] == 1)
    rebuilt = relation.column_store()
    assert rebuilt is not store  # deletes drop the snapshot
    assert rebuilt.values(2) == ["b"]


def test_store_unknown_column_names_the_attribute():
    store = _relation([(1, 1.0, "a")]).column_store()
    with pytest.raises(SchemaError, match="Missing"):
        store.column("Missing")


# -- dictionary encoding -----------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(st.lists(st.one_of(st.none(), st.text(max_size=6)), max_size=60))
def test_dictionary_roundtrip(values):
    column = DictionaryColumn()
    for value in values:
        column.append(value)
    assert column.decode() == list(values)
    assert column.cardinality == len({v for v in values if v is not None})
    for code, value in zip(column.codes, values):
        if value is None:
            assert code == NULL_CODE
        else:
            assert column.values[code] == value
            assert column.code_for(value) == code


def test_code_space_only_grows_under_appends():
    relation = _relation([(1, 1.0, "a"), (2, 2.0, "b")])
    store = relation.column_store()
    column = store.columns[2]
    before = dict(zip(column.values, range(column.cardinality)))
    relation.insert_many([(3, 3.0, "b"), (4, 4.0, "c"), (5, 5.0, None)])
    assert relation.column_store() is store
    # Codes handed out earlier are immutable; new values extend the table.
    for value, code in before.items():
        assert column.code_for(value) == code
    assert column.code_for("c") == 2
    assert list(column.codes) == [0, 1, 1, 2, NULL_CODE]
    assert store.values(2) == ["a", "b", "b", "c", None]


def test_updates_rebuild_consistent_store():
    relation = _relation([(1, 1.0, "a"), (2, 2.0, "b")])
    relation.column_store()
    relation.replace_where(lambda row: row[0] == 1,
                           lambda row: (1, 9.0, "z"))
    store = relation.column_store()
    assert store.values(2) == ["z", "b"]
    assert store.values(1) == [9.0, 2.0]


# -- kernels vs per-row evaluation -------------------------------------------


PREDICATES = [
    Comparison(">", ColumnRef("Score"), Literal(2.0)),
    Comparison("=", ColumnRef("Label"), Literal("a")),
    Comparison("!=", ColumnRef("Label"), Literal("a")),
    Comparison("<", ColumnRef("Label"), Literal("b")),
    Comparison("=", ColumnRef("Label"), Literal("missing")),
    IsNull(ColumnRef("Score")),
    IsNull(ColumnRef("Label"), negated=True),
    And([Comparison(">=", ColumnRef("Id"), Literal(2)),
         Comparison("=", ColumnRef("Label"), Literal("b"))]),
    Or([Comparison("=", ColumnRef("Label"), Literal("a")),
        Not(Comparison("<", ColumnRef("Score"), Literal(3.0)))]),
]

ROWS = [(1, 1.5, "a"), (2, None, "b"), (3, 3.5, None), (4, 2.0, "b"),
        (5, 4.0, "a")]


@pytest.mark.parametrize("predicate", PREDICATES,
                         ids=[p.render() for p in PREDICATES])
def test_kernel_masks_match_row_evaluation(predicate):
    relation = _relation(ROWS)
    store = relation.column_store()
    mask = kernels.predicate_mask(store, [predicate])
    assert _as_list(mask, len(ROWS)) == _mask_reference(relation, predicate)


@pytest.mark.parametrize("predicate", PREDICATES,
                         ids=[p.render() for p in PREDICATES])
def test_kernel_masks_encoded_vs_raw_layout(predicate, monkeypatch):
    """The same predicate over a dictionary-encoded column and over the
    raw (plain) layout of the same data must produce the same mask."""
    relation = _relation(ROWS)
    encoded = ColumnStore(relation.schema, relation.rows)
    assert isinstance(encoded.columns[2], DictionaryColumn)
    monkeypatch.setattr(columnar, "DICT_MAX_CARDINALITY", 0)
    raw = ColumnStore(relation.schema, relation.rows)
    assert isinstance(raw.columns[2], PlainColumn)
    mask_encoded = kernels.predicate_mask(encoded, [predicate])
    mask_raw = kernels.predicate_mask(raw, [predicate])
    assert _as_list(mask_encoded, len(ROWS)) == _as_list(mask_raw,
                                                         len(ROWS))


def test_kernel_masks_match_rows_across_domains():
    """Every char-column equality/order predicate over the ship and
    hospital databases agrees with per-row evaluation, whatever layout
    (dictionary or plain) each column ended up in."""
    for fixture in EQUIVALENCE_FIXTURES:
        database = fixture.database
        for name in database.catalog.names():
            relation = database.relation(name)
            if not relation.rows:
                continue
            store = relation.column_store()
            for column in relation.schema.columns:
                observed = next(
                    (value
                     for value in relation.column_values(column.name)
                     if value is not None), None)
                if observed is None:
                    continue
                for op in ("=", "!=", "<", ">="):
                    predicate = Comparison(op, ColumnRef(column.name),
                                           Literal(observed))
                    try:
                        mask = kernels.predicate_mask(store, [predicate])
                    except kernels.UnsupportedKernel:
                        continue
                    assert _as_list(mask, len(relation.rows)) == \
                        _mask_reference(relation, predicate), (
                            f"{fixture.name}.{name}.{column.name} {op} "
                            f"{observed!r}")


def test_unsupported_kernel_and_resolution_errors():
    relation = _relation(ROWS)
    store = relation.column_store()
    with pytest.raises(kernels.UnsupportedKernel):
        # char vs integer literal: the row path would raise per-row.
        kernels.predicate_mask(
            store, [Comparison("<", ColumnRef("Label"), Literal(3))])
    with pytest.raises(ExpressionError, match="unknown column 'Nope'"):
        kernels.predicate_mask(
            store, [Comparison("=", ColumnRef("Nope"), Literal(1))])
    with pytest.raises(ExpressionError,
                       match="unknown range variable or relation"):
        kernels.predicate_mask(
            store,
            [Comparison("=", ColumnRef("Id", qualifier="x"), Literal(1))])


@needs_numpy
@pytest.mark.parametrize("predicate", PREDICATES,
                         ids=[p.render() for p in PREDICATES])
def test_pure_python_kernels_match_numpy(predicate):
    relation = _relation(ROWS)
    with_numpy = kernels.predicate_mask(relation.column_store(),
                                        [predicate])
    columnar.set_numpy_enabled(False)
    try:
        pure = kernels.predicate_mask(
            ColumnStore(relation.schema, relation.rows), [predicate])
    finally:
        columnar.set_numpy_enabled(True)
    assert _as_list(with_numpy, len(ROWS)) == _as_list(pure, len(ROWS))


def test_membership_and_notnull_masks():
    relation = _relation(ROWS)
    store = relation.column_store()
    label = relation.schema.position("Label")
    member = kernels.membership_mask(store, label, ["a", "zzz"])
    assert _as_list(member, len(ROWS)) == [
        value == "a" for _, _, value in ROWS]
    notnull = kernels.notnull_mask(store, label)
    assert _as_list(notnull, len(ROWS)) == [
        value is not None for _, _, value in ROWS]
    assert kernels.notnull_mask(
        store, relation.schema.position("Id")) is None  # provably no NULLs


# -- the REPRO_COLUMNAR knob -------------------------------------------------


def test_env_knob_spellings(monkeypatch):
    monkeypatch.setattr(columnar, "FORCED", None)
    for value in ("off", "0", "false", "no"):
        monkeypatch.setenv("REPRO_COLUMNAR", value)
        assert not columnar.enabled()
    for value in ("", "on", "1", "true", "yes"):
        monkeypatch.setenv("REPRO_COLUMNAR", value)
        assert columnar.enabled()
    monkeypatch.delenv("REPRO_COLUMNAR")
    assert columnar.enabled()  # on by default


def test_env_knob_unrecognized_warns_once(monkeypatch):
    monkeypatch.setattr(columnar, "FORCED", None)
    monkeypatch.setattr(columnar, "_warned_values", set())
    monkeypatch.setenv("REPRO_COLUMNAR", "sideways")
    with pytest.warns(UserWarning, match="REPRO_COLUMNAR='sideways'"):
        assert columnar.enabled()  # loud fallback: stays enabled
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert columnar.enabled()  # same value: warned once already


def test_forced_override_wins(monkeypatch):
    monkeypatch.setenv("REPRO_COLUMNAR", "off")
    columnar.set_enabled(True)
    try:
        assert columnar.enabled()
        columnar.set_enabled(False)
        monkeypatch.setenv("REPRO_COLUMNAR", "on")
        assert not columnar.enabled()
    finally:
        columnar.set_enabled(None)
    assert columnar.enabled()  # back to the environment (now "on")


# -- batched accessor edge cases (satellites) --------------------------------


def test_columns_single_transpose_matches_column_arrays():
    relation = _relation(ROWS)
    arrays = relation.column_arrays()
    assert relation.columns("Id", "Score", "Label") == (
        arrays[0], arrays[1], arrays[2])
    # Requested order, not schema order -- and repeats are allowed.
    assert relation.columns("Label", "Id", "Label") == (
        arrays[2], arrays[0], arrays[2])


def test_columns_empty_relation():
    relation = _relation([])
    assert relation.columns("Id", "Label") == ((), ())
    assert relation.column_arrays() == [(), (), ()]
    assert list(relation.iter_batches(10)) == []
    store = relation.column_store()
    assert len(store) == 0
    assert kernels.predicate_mask(
        store, [Comparison("=", ColumnRef("Id"), Literal(1))]) is not None


def test_columns_unknown_attribute_raises_schema_error():
    relation = _relation(ROWS)
    with pytest.raises(SchemaError, match="Bogus"):
        relation.columns("Id", "Bogus")


@pytest.mark.parametrize("size", [0, -1])
def test_iter_batches_rejects_non_positive_sizes(size):
    relation = _relation(ROWS)
    with pytest.raises(ValueError, match="batch size must be positive"):
        next(relation.iter_batches(size))


def test_iter_batches_snapshots_at_iteration_start():
    relation = _relation(ROWS)
    stream = relation.iter_batches(2)
    first = next(stream)
    relation.insert((99, 9.9, "z"))
    remaining = [row for batch in stream for row in batch]
    assert first + remaining == ROWS  # pinned: mutation not observed
    fresh = [row for batch in relation.iter_batches(10) for row in batch]
    assert fresh[-1] == (99, 9.9, "z")  # the next stream sees it


# -- cache keys are layout-independent ---------------------------------------


def test_result_cache_hits_across_columnar_flip():
    from repro.cache.core import query_cache
    from repro.sql.parser import parse_select
    from repro.relational.database import Database

    database = Database("cachecheck")
    database.create(
        "ITEM", [("Id", INTEGER), ("Label", char(8))],
        rows=[(i, f"L{i % 3}") for i in range(50)], key=["Id"])
    cache = query_cache(database)
    cache.enabled = True
    cache.floor_s = 0.0  # admit even instant results for this check
    statement = parse_select(
        "SELECT Id FROM ITEM WHERE ITEM.Label = 'L1'")
    before = columnar.FORCED
    try:
        columnar.set_enabled(True)
        first = cache.execute_select(statement)
        misses = cache.counters.get("result.miss", 0)
        columnar.set_enabled(False)
        second = cache.execute_select(statement)
        assert cache.counters.get("result.hit", 0) >= 1
        assert cache.counters.get("result.miss", 0) == misses
        assert list(first.rows) == list(second.rows)
    finally:
        columnar.set_enabled(before)
        cache.enabled = False
