"""The predicate compiler must be semantically indistinguishable from
the Environment interpreter: same values, same NULL behavior, same
error types and messages -- only faster.  Cross-checks run every tree
through both paths over every row."""

import pytest

from repro.errors import ExpressionError
from repro.relational import INTEGER, REAL, char, compiled
from repro.relational.compiled import (
    compile_expression, compile_expressions, compile_predicate,
    schema_resolver, slot_resolver,
)
from repro.relational.expressions import (
    And, Arithmetic, ColumnRef, Comparison, Environment, Expression,
    IsNull, Literal, Not, Or,
)
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema


SCHEMA = RelationSchema("EMP", [
    Column("Name", char(12)),
    Column("Age", INTEGER),
    Column("Salary", REAL),
])

ROWS = [
    ("alice", 41, 9000.0),
    ("bob", 38, 7500.0),
    ("carol", None, 8000.0),
    ("dave", 29, None),
]

DEPT_SCHEMA = RelationSchema("DEPT", [
    Column("Dept", char(8)),
    Column("Head", char(12)),
])


def interpret(expression: Expression, row: tuple):
    return expression.evaluate(Environment.for_row(SCHEMA, row))


def cross_check(expression: Expression):
    """Compiled result == interpreted result for every row (including
    raised ExpressionErrors, compared by message)."""
    fn = compile_expression(expression, schema_resolver(SCHEMA, ["emp"]))
    for row in ROWS:
        try:
            expected = interpret(expression, row)
        except ExpressionError as error:
            with pytest.raises(ExpressionError) as caught:
                fn(row)
            assert str(caught.value) == str(error)
            continue
        assert fn(row) == expected, (expression.render(), row)


class TestSemanticsParity:
    def test_comparisons(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            cross_check(Comparison(op, ColumnRef("Age"), Literal(38)))

    def test_null_comparison_is_false(self):
        fn = compile_expression(
            Comparison("=", ColumnRef("Age"), Literal(None)),
            schema_resolver(SCHEMA))
        assert all(fn(row) is False for row in ROWS)
        cross_check(Comparison("<", ColumnRef("Age"), Literal(None)))

    def test_comparison_type_error_message(self):
        cross_check(Comparison("<", ColumnRef("Name"), Literal(3)))

    def test_arithmetic(self):
        for op in ("+", "-", "*", "/"):
            cross_check(Arithmetic(op, ColumnRef("Salary"), Literal(2)))

    def test_arithmetic_null_is_null(self):
        fn = compile_expression(
            Arithmetic("+", ColumnRef("Salary"), Literal(1)),
            schema_resolver(SCHEMA))
        assert fn(("dave", 29, None)) is None

    def test_division_by_zero_message(self):
        cross_check(Arithmetic("/", ColumnRef("Salary"), Literal(0)))

    def test_is_null_and_negation(self):
        cross_check(IsNull(ColumnRef("Age")))
        cross_check(IsNull(ColumnRef("Age"), negated=True))

    def test_boolean_connectives(self):
        age = Comparison(">", ColumnRef("Age"), Literal(30))
        pay = Comparison(">", ColumnRef("Salary"), Literal(7800.0))
        cross_check(And([age, pay]))
        cross_check(Or([age, pay]))
        cross_check(Not(age))

    def test_and_short_circuits(self):
        # The second conjunct would raise a type error on every row; a
        # false first conjunct must prevent that, as in the interpreter.
        never = Comparison("=", ColumnRef("Age"), Literal(-1))
        boom = Comparison("<", ColumnRef("Name"), Literal(3))
        fn = compile_expression(And([never, boom]),
                                schema_resolver(SCHEMA))
        assert all(fn(row) is False for row in ROWS)

    def test_qualified_reference(self):
        cross_check(Comparison(
            "=", ColumnRef("Name", qualifier="EMP"), Literal("bob")))


class TestResolvers:
    def test_schema_resolver_unknown_column(self):
        with pytest.raises(ExpressionError, match="unknown column"):
            compile_expression(ColumnRef("Bogus"),
                               schema_resolver(SCHEMA))

    def test_schema_resolver_unknown_qualifier(self):
        with pytest.raises(ExpressionError,
                           match="unknown range variable or relation"):
            compile_expression(ColumnRef("Age", qualifier="other"),
                               schema_resolver(SCHEMA, ["emp"]))

    def test_schema_resolver_qualifier_missing_column(self):
        with pytest.raises(ExpressionError, match="has no column"):
            compile_expression(ColumnRef("Bogus", qualifier="EMP"),
                               schema_resolver(SCHEMA, ["emp"]))

    def test_slot_resolver_qualified(self):
        resolve = slot_resolver([("e", SCHEMA), ("d", DEPT_SCHEMA)])
        fn = compile_expression(ColumnRef("Head", qualifier="d"), resolve)
        assert fn((ROWS[0], ("eng", "alice"))) == "alice"

    def test_slot_resolver_unqualified_unambiguous(self):
        resolve = slot_resolver([("e", SCHEMA), ("d", DEPT_SCHEMA)])
        fn = compile_expression(ColumnRef("Salary"), resolve)
        assert fn((ROWS[1], ("eng", "alice"))) == 7500.0

    def test_slot_resolver_ambiguous(self):
        resolve = slot_resolver([("a", SCHEMA), ("b", SCHEMA)])
        with pytest.raises(ExpressionError, match="ambiguous column"):
            compile_expression(ColumnRef("Age"), resolve)


class TestFallbacks:
    class _Unknown(Expression):
        def evaluate(self, environment):
            return 42

        def render(self):
            return "unknown()"

        def references(self):
            return []

    def test_unsupported_node_takes_fallback(self):
        sentinel = lambda row: "fallback"
        test = compile_predicate(self._Unknown(),
                                 schema_resolver(SCHEMA),
                                 fallback=lambda: sentinel)
        assert test is sentinel

    def test_disabled_flag_takes_fallback(self, monkeypatch):
        monkeypatch.setattr(compiled, "ENABLED", False)
        sentinel = lambda row: "fallback"
        test = compile_predicate(
            Comparison("=", ColumnRef("Age"), Literal(38)),
            schema_resolver(SCHEMA), fallback=lambda: sentinel)
        assert test is sentinel

    def test_compile_expressions_all_or_none(self):
        good = Comparison("=", ColumnRef("Age"), Literal(38))
        assert compile_expressions([good], schema_resolver(SCHEMA))
        assert compile_expressions([good, self._Unknown()],
                                   schema_resolver(SCHEMA)) is None

    def test_compile_expressions_disabled(self, monkeypatch):
        monkeypatch.setattr(compiled, "ENABLED", False)
        good = Comparison("=", ColumnRef("Age"), Literal(38))
        assert compile_expressions([good],
                                   schema_resolver(SCHEMA)) is None


class TestBatchAccessors:
    def relation(self):
        return Relation(SCHEMA, ROWS)

    def test_iter_batches_partitions_rows(self):
        relation = self.relation()
        batches = list(relation.iter_batches(3))
        assert [len(b) for b in batches] == [3, 1]
        assert [row for batch in batches for row in batch] == ROWS

    def test_iter_batches_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            list(self.relation().iter_batches(0))

    def test_columns_positional(self):
        names, ages = self.relation().columns("Name", "Age")
        assert names == ("alice", "bob", "carol", "dave")
        assert ages == (41, 38, None, 29)

    def test_column_arrays_transpose(self):
        arrays = self.relation().column_arrays()
        assert arrays[1] == (41, 38, None, 29)
        empty = Relation(SCHEMA, [])
        assert empty.column_arrays() == [(), (), ()]

    def test_row_view_mapping_interface(self):
        relation = self.relation()
        view = relation.row_view()
        view.bind(ROWS[0])
        assert view["Name"] == "alice"
        assert view["age"] == 41  # case-insensitive, like record dicts
        assert "salary" in view
        assert len(view) == 3
        assert dict(view) == {"Name": "alice", "Age": 41,
                              "Salary": 9000.0}
        view.bind(ROWS[1])  # rebinding repoints, no reallocation
        assert view["Name"] == "bob"
        with pytest.raises(KeyError):
            view["Bogus"]
