"""Unit tests for column data types."""

import datetime

import pytest

from repro.errors import TypeMismatchError
from repro.relational.datatypes import (
    CharType, DateType, IntegerType, RealType, INTEGER, REAL, DATE,
    STRING, char, comparable, infer_type,
)


class TestIntegerType:
    def test_validates_ints(self):
        assert INTEGER.validate(5)
        assert INTEGER.validate(-3)
        assert INTEGER.validate(None)

    def test_rejects_bool(self):
        assert not INTEGER.validate(True)

    def test_rejects_float_and_str(self):
        assert not INTEGER.validate(5.0)
        assert not INTEGER.validate("5")

    def test_coerces_integral_float(self):
        assert INTEGER.coerce(5.0) == 5

    def test_coerces_numeric_string(self):
        assert INTEGER.coerce(" 42 ") == 42

    def test_coerce_rejects_fractional(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.coerce(5.5)

    def test_coerce_rejects_garbage(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.coerce("abc")

    def test_is_numeric(self):
        assert INTEGER.is_numeric()


class TestRealType:
    def test_validates_floats_and_ints(self):
        assert REAL.validate(5.5)
        assert REAL.validate(5)
        assert REAL.validate(None)

    def test_rejects_bool(self):
        assert not REAL.validate(False)

    def test_coerces_int_to_float(self):
        value = REAL.coerce(5)
        assert value == 5.0
        assert isinstance(value, float)

    def test_coerces_string(self):
        assert REAL.coerce("2.5") == 2.5

    def test_coerce_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            REAL.coerce(True)


class TestCharType:
    def test_width_enforced_by_validate(self):
        ten = char(10)
        assert ten.validate("short")
        assert not ten.validate("much longer than ten")

    def test_coerce_truncates(self):
        assert char(4).coerce("SSBN730") == "SSBN"

    def test_unbounded(self):
        assert STRING.validate("x" * 1000)
        assert STRING.render() == "string"

    def test_render(self):
        assert char(20).render() == "char[20]"

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            char(0)

    def test_coerce_stringifies(self):
        assert char(10).coerce(42) == "42"


class TestDateType:
    def test_validates_dates(self):
        assert DATE.validate(datetime.date(2020, 1, 1))
        assert not DATE.validate("2020-01-01")

    def test_rejects_datetime(self):
        assert not DATE.validate(datetime.datetime(2020, 1, 1, 12))

    def test_coerces_iso_string(self):
        assert DATE.coerce("2020-06-15") == datetime.date(2020, 6, 15)

    def test_coerces_datetime(self):
        assert DATE.coerce(
            datetime.datetime(2020, 1, 2, 3)) == datetime.date(2020, 1, 2)

    def test_coerce_rejects_garbage(self):
        with pytest.raises(TypeMismatchError):
            DATE.coerce("not a date")


class TestEqualityAndInference:
    def test_structural_equality(self):
        assert char(10) == char(10)
        assert char(10) != char(20)
        assert IntegerType() == INTEGER
        assert INTEGER != REAL

    def test_hashable(self):
        assert len({char(10), char(10), char(20)}) == 2

    def test_infer_type(self):
        assert infer_type(5) == INTEGER
        assert infer_type(5.0) == REAL
        assert infer_type("x") == STRING
        assert infer_type(datetime.date(2020, 1, 1)) == DATE
        assert infer_type(None) == STRING

    def test_infer_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            infer_type(True)

    def test_comparable(self):
        assert comparable(INTEGER, REAL)
        assert comparable(char(4), char(30))
        assert not comparable(INTEGER, char(4))
        assert comparable(DATE, DateType())
