"""Unit tests for the expression AST."""

import pytest

from repro.errors import ExpressionError
from repro.relational.datatypes import INTEGER, char
from repro.relational.expressions import (
    And, Arithmetic, ColumnRef, Comparison, Environment, Literal, Not, Or,
    TRUE, conjoin, conjuncts,
)
from repro.relational.schema import Column, RelationSchema

SCHEMA = RelationSchema("T", [Column("A", char(4)), Column("N", INTEGER)])


def env(a="x", n=5):
    return Environment.for_row(SCHEMA, (a, n))


class TestEnvironment:
    def test_default_scope(self):
        assert ColumnRef("N").evaluate(env()) == 5

    def test_qualified_by_relation_name(self):
        assert ColumnRef("A", "T").evaluate(env()) == "x"

    def test_explicit_qualifier(self):
        scope = Environment.for_row(SCHEMA, ("x", 5), qualifier="r")
        assert ColumnRef("N", "r").evaluate(scope) == 5

    def test_unknown_qualifier(self):
        with pytest.raises(ExpressionError, match="unknown range variable"):
            ColumnRef("N", "bogus").evaluate(env())

    def test_unknown_column(self):
        with pytest.raises(ExpressionError, match="no column"):
            ColumnRef("Z", "T").evaluate(env())

    def test_ambiguous_column(self):
        other = RelationSchema("U", [Column("N", INTEGER)])
        scope = Environment()
        scope.bind("t", SCHEMA, ("x", 1))
        scope.bind("u", other, (2,))
        with pytest.raises(ExpressionError, match="ambiguous"):
            ColumnRef("N").evaluate(scope)


class TestComparison:
    @pytest.mark.parametrize("op,expected", [
        ("=", False), ("!=", True), ("<", True), ("<=", True),
        (">", False), (">=", False),
    ])
    def test_operators(self, op, expected):
        comparison = Comparison(op, ColumnRef("N"), Literal(9))
        assert comparison.evaluate(env()) is expected

    def test_null_operand_is_false(self):
        comparison = Comparison("=", ColumnRef("A"), Literal(None))
        assert comparison.evaluate(env()) is False

    def test_string_comparison(self):
        comparison = Comparison("<=", ColumnRef("A"), Literal("z"))
        assert comparison.evaluate(env("BQS")) is True

    def test_negated(self):
        assert Comparison("<", Literal(1), Literal(2)).negated().op == ">="

    def test_flipped(self):
        flipped = Comparison("<", Literal(1), ColumnRef("N")).flipped()
        assert flipped.op == ">"
        assert isinstance(flipped.left, ColumnRef)

    def test_mixed_type_comparison_raises(self):
        comparison = Comparison("<", ColumnRef("A"), Literal(5))
        with pytest.raises(ExpressionError, match="type error"):
            comparison.evaluate(env())

    def test_unknown_operator(self):
        with pytest.raises(ExpressionError):
            Comparison("~~", Literal(1), Literal(2))


class TestLogical:
    def test_and(self):
        expr = And([Comparison(">", ColumnRef("N"), Literal(1)),
                    Comparison("<", ColumnRef("N"), Literal(9))])
        assert expr.evaluate(env()) is True

    def test_or(self):
        expr = Or([Comparison(">", ColumnRef("N"), Literal(9)),
                   Comparison("=", ColumnRef("A"), Literal("x"))])
        assert expr.evaluate(env()) is True

    def test_not(self):
        assert Not(TRUE).evaluate(env()) is False

    def test_empty_conjunction_rejected(self):
        with pytest.raises(ExpressionError):
            And([])

    def test_empty_disjunction_rejected(self):
        with pytest.raises(ExpressionError):
            Or([])


class TestArithmetic:
    def test_add(self):
        expr = Arithmetic("+", ColumnRef("N"), Literal(3))
        assert expr.evaluate(env()) == 8

    def test_null_propagates(self):
        expr = Arithmetic("*", ColumnRef("N"), Literal(None))
        assert expr.evaluate(env()) is None

    def test_division_by_zero(self):
        expr = Arithmetic("/", Literal(1), Literal(0))
        with pytest.raises(ExpressionError):
            expr.evaluate(env())

    def test_unknown_op(self):
        with pytest.raises(ExpressionError):
            Arithmetic("%", Literal(1), Literal(2))


class TestConjuncts:
    def test_none_is_empty(self):
        assert conjuncts(None) == []

    def test_flattens_nested_and(self):
        a = Comparison("=", ColumnRef("A"), Literal("x"))
        b = Comparison(">", ColumnRef("N"), Literal(1))
        c = Comparison("<", ColumnRef("N"), Literal(9))
        assert conjuncts(And([a, And([b, c])])) == [a, b, c]

    def test_or_is_single_conjunct(self):
        expr = Or([TRUE, TRUE])
        assert conjuncts(expr) == [expr]

    def test_conjoin_roundtrip(self):
        a = Comparison("=", ColumnRef("A"), Literal("x"))
        b = Comparison(">", ColumnRef("N"), Literal(1))
        assert conjuncts(conjoin([a, b])) == [a, b]

    def test_conjoin_empty_is_true(self):
        assert conjoin([]) is TRUE

    def test_conjoin_single(self):
        a = Comparison("=", ColumnRef("A"), Literal("x"))
        assert conjoin([a]) is a


class TestRendering:
    def test_references(self):
        expr = And([Comparison("=", ColumnRef("A", "t"), Literal("x")),
                    Comparison(">", ColumnRef("N"), Literal(1))])
        assert [r.render() for r in expr.references()] == ["t.A", "N"]

    def test_render_shapes(self):
        expr = Comparison("<=", ColumnRef("N", "r"), Literal(5))
        assert expr.render() == "r.N <= 5"
        assert Literal("a\"b").render() == '"a\\"b"'
        assert Not(TRUE).render() == "not (True)"
