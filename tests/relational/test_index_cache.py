"""IndexCache: version-checked reuse of hash and sorted indexes."""

from repro.relational.database import Database
from repro.relational.datatypes import INTEGER, char
from repro.relational.indexes import IndexCache
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema


def make_relation(name="T"):
    schema = RelationSchema(name, [Column("K", char(4)),
                                   Column("V", INTEGER)])
    return Relation(schema, [("a", 1), ("b", 2), ("a", 3)])


class TestIndexCache:
    def test_reuse_while_unchanged(self):
        cache = IndexCache()
        relation = make_relation()
        first = cache.hash_index(relation, "K")
        assert cache.hash_index(relation, "K") is first
        assert cache.rebuilds == 1

    def test_mutation_rebuilds(self):
        cache = IndexCache()
        relation = make_relation()
        index = cache.hash_index(relation, "K")
        assert len(index.lookup("c")) == 0
        relation.insert(("c", 4))
        rebuilt = cache.hash_index(relation, "K")
        assert rebuilt is not index
        assert len(rebuilt.lookup("c")) == 1
        assert cache.rebuilds == 2

    def test_hash_and_sorted_cached_separately(self):
        cache = IndexCache()
        relation = make_relation()
        cache.hash_index(relation, "V")
        cache.sorted_index(relation, "V")
        assert cache.rebuilds == 2
        cache.hash_index(relation, "V")
        cache.sorted_index(relation, "V")
        assert cache.rebuilds == 2

    def test_replaced_relation_rebuilds(self):
        cache = IndexCache()
        cache.hash_index(make_relation(), "K")
        other = make_relation()  # same name, different object
        cache.hash_index(other, "K")
        assert cache.rebuilds == 2

    def test_staleness_flag(self):
        relation = make_relation()
        cache = IndexCache()
        index = cache.hash_index(relation, "K")
        assert not index.is_stale
        relation.insert(("z", 9))
        assert index.is_stale

    def test_database_owns_a_cache(self):
        database = Database()
        assert isinstance(database.indexes, IndexCache)

    def test_invalidate_clears(self):
        cache = IndexCache()
        relation = make_relation()
        cache.hash_index(relation, "K")
        assert len(cache) == 1
        cache.invalidate()
        assert len(cache) == 0
