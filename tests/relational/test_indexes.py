"""Unit tests for hash and sorted indexes."""

import pytest

from repro.relational.datatypes import INTEGER, char
from repro.relational.indexes import HashIndex, SortedIndex
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema


@pytest.fixture()
def rel():
    schema = RelationSchema("T", [Column("K", char(4)),
                                  Column("V", INTEGER)])
    return Relation(schema, [
        ("a", 5), ("b", 3), ("a", 7), ("c", None), ("d", 1)])


class TestHashIndex:
    def test_lookup(self, rel):
        index = HashIndex(rel, "K")
        assert len(index.lookup("a")) == 2
        assert index.lookup("zz") == []

    def test_contains_and_len(self, rel):
        index = HashIndex(rel, "K")
        assert "b" in index
        assert len(index) == 4

    def test_null_is_indexable(self, rel):
        index = HashIndex(rel, "V")
        assert len(index.lookup(None)) == 1

    def test_distinct_values(self, rel):
        index = HashIndex(rel, "K")
        assert set(index.distinct_values()) == {"a", "b", "c", "d"}


class TestSortedIndex:
    def test_range_inclusive(self, rel):
        index = SortedIndex(rel, "V")
        values = [row[1] for row in index.range(3, 7)]
        assert values == [3, 5, 7]

    def test_range_exclusive(self, rel):
        index = SortedIndex(rel, "V")
        values = [row[1] for row in index.range(3, 7, low_inclusive=False,
                                                high_inclusive=False)]
        assert values == [5]

    def test_open_ended(self, rel):
        index = SortedIndex(rel, "V")
        assert [row[1] for row in index.range(low=5)] == [5, 7]
        assert [row[1] for row in index.range(high=3)] == [1, 3]

    def test_nulls_excluded(self, rel):
        index = SortedIndex(rel, "V")
        assert len(index) == 4

    def test_count_range(self, rel):
        index = SortedIndex(rel, "V")
        assert index.count_range(2, 6) == 2
        assert index.count_range() == 4

    def test_min_max(self, rel):
        index = SortedIndex(rel, "V")
        assert index.min() == 1
        assert index.max() == 7

    def test_empty(self):
        schema = RelationSchema("E", [Column("V", INTEGER)])
        index = SortedIndex(Relation(schema), "V")
        assert index.min() is None
        assert list(index.range(0, 10)) == []

    def test_string_ranges(self, rel):
        index = SortedIndex(rel, "K")
        assert [row[0] for row in index.range("b", "d")] == ["b", "c", "d"]
