"""Unit tests for relation values."""

import pytest

from repro.errors import SchemaError
from repro.relational.datatypes import INTEGER, char
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema


@pytest.fixture()
def schema():
    return RelationSchema("T", [Column("A", char(4)),
                                Column("N", INTEGER)])


@pytest.fixture()
def rel(schema):
    return Relation(schema, [("x", 1), ("y", 2), ("x", 1), ("z", None)])


class TestConstruction:
    def test_rows_validated(self, schema):
        relation = Relation(schema, [("abc", "7")])
        assert relation.rows == [("abc", 7)]

    def test_from_dicts(self, schema):
        relation = Relation.from_dicts(
            schema, [{"a": "q", "n": 3}, {"A": "r"}])
        assert relation.rows == [("q", 3), ("r", None)]

    def test_from_dicts_unknown_column(self, schema):
        with pytest.raises(SchemaError, match="unknown columns"):
            Relation.from_dicts(schema, [{"bogus": 1}])

    def test_infer(self):
        relation = Relation.infer("T", ["A", "N"], [("x", 1), ("y", 2)])
        assert relation.schema.column("N").datatype == INTEGER

    def test_infer_empty_rejected(self):
        with pytest.raises(SchemaError):
            Relation.infer("T", ["A"], [])


class TestAccess:
    def test_value_by_name(self, rel):
        assert rel.value(rel.rows[0], "N") == 1

    def test_column_values(self, rel):
        assert rel.column_values("A") == ["x", "y", "x", "z"]

    def test_record(self, rel):
        assert rel.record(rel.rows[1]) == {"A": "y", "N": 2}

    def test_len_iter_bool(self, rel):
        assert len(rel) == 4
        assert list(rel)[0] == ("x", 1)
        assert rel
        assert not Relation(rel.schema)


class TestMutation:
    def test_insert(self, rel):
        rel.insert(("w", 9))
        assert len(rel) == 5

    def test_insert_many(self, rel):
        assert rel.insert_many([("a", 1), ("b", 2)]) == 2

    def test_delete_where(self, rel):
        deleted = rel.delete_where(lambda row: row[0] == "x")
        assert deleted == 2
        assert len(rel) == 2

    def test_clear(self, rel):
        rel.clear()
        assert not rel


class TestDerived:
    def test_distinct(self, rel):
        assert len(rel.distinct()) == 3

    def test_distinct_preserves_order(self, rel):
        assert rel.distinct().rows[0] == ("x", 1)

    def test_sorted_by(self, rel):
        ordered = rel.sorted_by("A")
        assert [row[0] for row in ordered] == ["x", "x", "y", "z"]

    def test_sorted_nulls_first(self, rel):
        ordered = rel.sorted_by("N")
        assert ordered.rows[0][1] is None

    def test_sorted_descending(self, rel):
        ordered = rel.sorted_by("A", descending=True)
        assert ordered.rows[0][0] == "z"

    def test_copy_independent(self, rel):
        clone = rel.copy()
        clone.insert(("q", 5))
        assert len(rel) == 4

    def test_copy_rename(self, rel):
        assert rel.copy("U").name == "U"


class TestEquality:
    def test_bag_equality_order_insensitive(self, schema):
        left = Relation(schema, [("a", 1), ("b", 2)])
        right = Relation(schema, [("b", 2), ("a", 1)])
        assert left == right

    def test_bag_equality_multiplicity(self, schema):
        left = Relation(schema, [("a", 1), ("a", 1)])
        right = Relation(schema, [("a", 1)])
        assert left != right

    def test_unhashable(self, rel):
        with pytest.raises(TypeError):
            hash(rel)


class TestRender:
    def test_render_contains_header_and_null(self, rel):
        text = rel.render()
        assert "A" in text and "N" in text
        assert "NULL" in text

    def test_render_max_rows(self, rel):
        text = rel.render(max_rows=2)
        assert "more" in text
