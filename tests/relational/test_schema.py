"""Unit tests for relation schemas."""

import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.relational.datatypes import INTEGER, char
from repro.relational.schema import Column, RelationSchema


@pytest.fixture()
def emp_schema():
    return RelationSchema(
        "EMP",
        [Column("Name", char(20)), Column("Age", INTEGER),
         Column("Dept", char(8))],
        key=["Name"])


class TestColumn:
    def test_check_passes_valid(self):
        assert Column("Age", INTEGER).check(5) == 5

    def test_check_coerces(self):
        assert Column("Age", INTEGER).check("5") == 5

    def test_non_nullable(self):
        with pytest.raises(TypeMismatchError):
            Column("Age", INTEGER, nullable=False).check(None)

    def test_bad_name(self):
        with pytest.raises(SchemaError):
            Column("", INTEGER)


class TestRelationSchema:
    def test_position_case_insensitive(self, emp_schema):
        assert emp_schema.position("name") == 0
        assert emp_schema.position("AGE") == 1

    def test_position_unknown(self, emp_schema):
        with pytest.raises(SchemaError, match="no column"):
            emp_schema.position("Salary")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            RelationSchema("T", [Column("A", INTEGER),
                                 Column("a", INTEGER)])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("T", [])

    def test_key_resolution(self, emp_schema):
        assert emp_schema.key == ("Name",)

    def test_key_unknown_column(self):
        with pytest.raises(SchemaError, match="key column"):
            RelationSchema("T", [Column("A", INTEGER)], key=["B"])

    def test_check_row(self, emp_schema):
        assert emp_schema.check_row(["ann", 30, "ops"]) == ("ann", 30, "ops")

    def test_check_row_arity(self, emp_schema):
        with pytest.raises(SchemaError, match="expects 3"):
            emp_schema.check_row(["ann", 30])

    def test_project(self, emp_schema):
        projected = emp_schema.project(["Age", "Name"])
        assert projected.column_names() == ["Age", "Name"]

    def test_rename(self, emp_schema):
        assert emp_schema.rename("STAFF").name == "STAFF"
        assert emp_schema.rename("STAFF").key == ("Name",)

    def test_renamed_columns(self, emp_schema):
        renamed = emp_schema.renamed_columns({"Age": "Years"})
        assert renamed.column_names() == ["Name", "Years", "Dept"]

    def test_concat_prefixes_collisions(self, emp_schema):
        other = RelationSchema("DEPT", [Column("Dept", char(8)),
                                        Column("Head", char(20))])
        combined = emp_schema.concat(other, "J")
        names = combined.column_names()
        assert "EMP_Dept" in names and "DEPT_Dept" in names
        assert "Head" in names and "Name" in names

    def test_equality(self, emp_schema):
        clone = RelationSchema(
            "emp", [Column("Name", char(20)), Column("Age", INTEGER),
                    Column("Dept", char(8))])
        assert emp_schema == clone

    def test_render(self, emp_schema):
        assert emp_schema.render() == (
            "EMP(Name char[20], Age integer, Dept char[8])")

    def test_iteration(self, emp_schema):
        assert [c.name for c in emp_schema] == ["Name", "Age", "Dept"]
