"""Catalog.stats_version and Relation mutation hooks: the invalidation
signal the planner's caches (statistics, indexes) ride on."""

import pytest

from repro.relational.database import Database
from repro.relational.datatypes import INTEGER, char
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema


def make_relation(name="T", rows=((("a"), 1),)):
    schema = RelationSchema(name, [Column("K", char(4)),
                                   Column("V", INTEGER)])
    return Relation(schema, [("a", 1), ("b", 2)])


class TestRelationVersion:
    def test_mutations_bump_version(self):
        relation = make_relation()
        version = relation.version
        relation.insert(("c", 3))
        assert relation.version > version
        version = relation.version
        relation.delete_where(lambda row: row[0] == "c")
        assert relation.version > version
        version = relation.version
        relation.replace_where(lambda row: row[0] == "a",
                               lambda row: ("a", 9))
        assert relation.version > version

    def test_no_op_mutations_do_not_bump(self):
        relation = make_relation()
        version = relation.version
        relation.delete_where(lambda row: False)
        relation.replace_where(lambda row: False, lambda row: ("x", 0))
        relation.insert_many([])
        assert relation.version == version

    def test_insert_many_bumps_once(self):
        relation = make_relation()
        version = relation.version
        relation.insert_many([("c", 3), ("d", 4)])
        assert relation.version == version + 1

    def test_hooks_fire_and_detach(self):
        relation = make_relation()
        seen = []
        token = relation.add_mutation_hook(seen.append)
        relation.insert(("c", 3))
        assert seen == [relation]
        relation.remove_mutation_hook(token)
        relation.insert(("d", 4))
        assert seen == [relation]


class TestCatalogStatsVersion:
    def test_register_and_drop_bump(self):
        database = Database()
        version = database.catalog.stats_version()
        database.catalog.register(make_relation())
        assert database.catalog.stats_version() > version
        version = database.catalog.stats_version()
        database.catalog.drop("T")
        assert database.catalog.stats_version() > version

    def test_mutation_bumps_through_catalog(self):
        database = Database()
        relation = make_relation()
        database.catalog.register(relation)
        version = database.catalog.stats_version()
        relation.insert(("c", 3))
        assert database.catalog.stats_version() > version

    def test_dropped_relation_stops_bumping(self):
        database = Database()
        relation = make_relation()
        database.catalog.register(relation)
        database.catalog.drop("T")
        version = database.catalog.stats_version()
        relation.insert(("c", 3))
        assert database.catalog.stats_version() == version

    def test_drop_then_reregister_tracks_new_relation_only(self):
        database = Database()
        old = make_relation()
        database.catalog.register(old)
        database.catalog.drop("T")
        new = make_relation()
        database.catalog.register(new)
        version = database.catalog.stats_version()
        old.insert(("zz", 0))  # detached: must not bump
        assert database.catalog.stats_version() == version
        new.insert(("c", 3))
        assert database.catalog.stats_version() > version

    def test_replacing_register_detaches_old(self):
        database = Database()
        old = make_relation()
        database.catalog.register(old)
        new = make_relation()
        database.catalog.register(new, replace=True)
        version = database.catalog.stats_version()
        old.insert(("zz", 0))
        assert database.catalog.stats_version() == version
