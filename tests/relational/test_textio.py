"""Unit tests for the text serialization format."""

import datetime
import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.relational import Database, INTEGER, REAL, DATE, char
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema
from repro.relational.textio import (
    dumps_database, dumps_relation, loads_database, loads_relations,
)
from repro.testbed import ship_database


def make_relation():
    schema = RelationSchema("MIX", [
        Column("S", char(20)), Column("I", INTEGER), Column("R", REAL),
        Column("D", DATE)], key=["S"])
    return Relation(schema, [
        ("plain", 1, 2.5, datetime.date(2020, 1, 2)),
        ("pipe|and\nnewline\\", -7, 0.125, None),
        (None, None, None, None),
    ])


class TestRoundTrip:
    def test_relation_roundtrip(self):
        original = make_relation()
        loaded = loads_relations(dumps_relation(original))
        assert len(loaded) == 1
        assert loaded[0] == original
        assert loaded[0].schema.key == ("S",)

    def test_types_preserved(self):
        loaded = loads_relations(dumps_relation(make_relation()))[0]
        row = loaded.rows[0]
        assert isinstance(row[1], int)
        assert isinstance(row[2], float)
        assert isinstance(row[3], datetime.date)

    def test_escaping(self):
        loaded = loads_relations(dumps_relation(make_relation()))[0]
        assert loaded.rows[1][0] == "pipe|and\nnewline\\"

    def test_database_roundtrip(self):
        db = ship_database()
        loaded = loads_database(dumps_database(db))
        assert loaded.name == "ships"
        assert loaded.catalog.names() == db.catalog.names()
        for name in db.catalog.names():
            assert loaded.relation(name) == db.relation(name)


class TestErrors:
    def test_row_arity_mismatch(self):
        text = "%relation T\nA:integer\n1|2\n%end\n"
        with pytest.raises(SchemaError, match="fields"):
            loads_relations(text)

    def test_unterminated_block(self):
        with pytest.raises(SchemaError, match="unterminated"):
            loads_relations("%relation T\nA:integer\n1\n")

    def test_unknown_type(self):
        with pytest.raises(SchemaError, match="unknown column type"):
            loads_relations("%relation T\nA:blob\n%end\n")

    def test_stray_line(self):
        with pytest.raises(SchemaError, match="stray"):
            loads_relations("hello\n")

    def test_bad_column_spec(self):
        with pytest.raises(SchemaError, match="bad column spec"):
            loads_relations("%relation T\nAinteger\n%end\n")


class TestFormatDetails:
    def test_empty_relation(self):
        schema = RelationSchema("E", [Column("A", INTEGER)])
        text = dumps_relation(Relation(schema))
        loaded = loads_relations(text)[0]
        assert len(loaded) == 0

    def test_database_name_parsed(self):
        db = Database("orig")
        db.create("T", [("A", INTEGER)], rows=[(1,)])
        loaded = loads_database(dumps_database(db))
        assert loaded.name == "orig"

    def test_null_token(self):
        text = dumps_relation(make_relation())
        assert "\\N" in text


class TestRoundTripProperties:
    """Hypothesis round-trips: any representable value must survive
    dump -> load unchanged (the regression cases below were all real
    fragilities: %-prefixed strings shadowing directives, carriage
    returns, blank lines that are legitimate empty-string rows)."""

    @given(st.lists(
        st.tuples(
            st.text(
                alphabet=st.characters(blacklist_categories=("Cs",)),
                max_size=40) | st.none(),
            st.integers(min_value=-10**9, max_value=10**9) | st.none()),
        max_size=20))
    def test_string_integer_rows_roundtrip(self, rows):
        schema = RelationSchema("P", [Column("S", char(200)),
                                      Column("I", INTEGER)])
        original = Relation(schema, rows)
        loaded = loads_relations(dumps_relation(original))
        assert len(loaded) == 1
        assert loaded[0].rows == original.rows

    @pytest.mark.parametrize("value", [
        "%end", "%relation X", "%database y", "%meta", "%",
        "", " ", "\t", "\r", "\r\n", "a\rb", "\\N", "\\n", "\\",
        "|", "a|b|c", "\\|", "N",
    ])
    def test_regression_values(self, value):
        schema = RelationSchema("P", [Column("S", char(40))])
        original = Relation(schema, [(value,)])
        loaded = loads_relations(dumps_relation(original))
        assert loaded[0].rows == [(value,)]

    def test_empty_string_row_is_not_skipped(self):
        """A single empty-string cell serializes to a blank line; the
        loader must read it as a row, not skip it."""
        schema = RelationSchema("P", [Column("S", char(10))])
        original = Relation(schema, [("",), ("x",), ("",)])
        loaded = loads_relations(dumps_relation(original))
        assert loaded[0].rows == [("",), ("x",), ("",)]
