"""Unit tests for the report table renderer."""

from repro.reporting import render_table


class TestRenderTable:
    def test_headers_and_rows(self):
        text = render_table(["a", "b"], [[1, "x"], [22, "yy"]])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_numeric_right_aligned(self):
        text = render_table(["n"], [[1], [100]])
        lines = text.splitlines()
        assert lines[2].endswith("1")
        assert lines[3].endswith("100")

    def test_title(self):
        text = render_table(["a"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"
        assert set(text.splitlines()[1]) == {"="}

    def test_none_rendered_as_dash(self):
        assert "-" in render_table(["a"], [[None]]).splitlines()[2]

    def test_float_formatting(self):
        text = render_table(["f"], [[0.123456]])
        assert "0.1235" in text

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert len(text.splitlines()) == 2
