"""Unit tests for intervals, attribute refs and clauses."""

import pytest

from repro.errors import RuleError
from repro.rules.clause import (
    AttributeRef, Clause, Interval, merge_point_clauses,
)


class TestIntervalConstruction:
    def test_closed(self):
        interval = Interval.closed(1, 5)
        assert interval.low == 1 and interval.high == 5

    def test_point(self):
        assert Interval.point(3).is_point()

    def test_point_needs_value(self):
        with pytest.raises(RuleError):
            Interval.point(None)

    def test_empty_rejected(self):
        with pytest.raises(RuleError, match="empty interval"):
            Interval.closed(5, 1)

    def test_degenerate_open_rejected(self):
        with pytest.raises(RuleError, match="empty"):
            Interval(3, 3, low_open=True)

    def test_incomparable_bounds(self):
        with pytest.raises(RuleError, match="not comparable"):
            Interval("a", 5)

    def test_from_comparison(self):
        assert Interval.from_comparison("=", 5) == Interval.point(5)
        assert Interval.from_comparison(">", 5) == Interval.at_least(
            5, strict=True)
        assert Interval.from_comparison("<=", 5) == Interval.at_most(5)

    def test_from_comparison_rejects_ne(self):
        with pytest.raises(RuleError):
            Interval.from_comparison("!=", 5)

    def test_everything(self):
        assert Interval.everything().is_unbounded()


class TestContainsValue:
    def test_closed_bounds_inclusive(self):
        interval = Interval.closed(1, 5)
        assert interval.contains_value(1)
        assert interval.contains_value(5)
        assert not interval.contains_value(0)
        assert not interval.contains_value(6)

    def test_open_bounds_exclusive(self):
        interval = Interval(1, 5, low_open=True, high_open=True)
        assert not interval.contains_value(1)
        assert not interval.contains_value(5)
        assert interval.contains_value(3)

    def test_unbounded_sides(self):
        assert Interval.at_least(3).contains_value(1000000)
        assert Interval.at_most(3).contains_value(-1000000)

    def test_null_never_contained(self):
        assert not Interval.everything().contains_value(None)

    def test_strings(self):
        interval = Interval.closed("BQQ-2", "BQQ-8")
        assert interval.contains_value("BQQ-5")
        assert not interval.contains_value("BQS-04")


class TestContainment:
    def test_containment(self):
        assert Interval.closed(1, 10).contains(Interval.closed(2, 9))
        assert Interval.closed(1, 10).contains(Interval.closed(1, 10))
        assert not Interval.closed(1, 10).contains(Interval.closed(0, 5))

    def test_paper_example(self):
        # Displacement > 8000 within domain high 30000 is subsumed by
        # [7250, 30000].
        premise = Interval.closed(7250, 30000)
        condition = Interval(8000, 30000, low_open=True)
        assert premise.contains(condition)

    def test_unbounded_condition_not_contained(self):
        assert not Interval.closed(7250, 30000).contains(
            Interval.at_least(8000, strict=True))

    def test_open_boundary_matters(self):
        open_premise = Interval(1, 5, high_open=True)
        assert not open_premise.contains(Interval.closed(1, 5))
        assert open_premise.contains(Interval(1, 5, high_open=True))


class TestOverlapsIntersect:
    def test_overlap(self):
        assert Interval.closed(1, 5).overlaps(Interval.closed(5, 9))
        assert not Interval.closed(1, 4).overlaps(Interval.closed(5, 9))

    def test_touching_open_no_overlap(self):
        assert not Interval(1, 5, high_open=True).overlaps(
            Interval.closed(5, 9))

    def test_intersect(self):
        merged = Interval.closed(1, 7).intersect(Interval.closed(4, 9))
        assert merged == Interval.closed(4, 7)

    def test_intersect_disjoint_none(self):
        assert Interval.closed(1, 2).intersect(
            Interval.closed(5, 6)) is None

    def test_intersect_keeps_strictness(self):
        merged = Interval.at_least(5, strict=True).intersect(
            Interval.closed(5, 9))
        assert merged == Interval(5, 9, low_open=True)

    def test_intersect_with_unbounded(self):
        merged = Interval.everything().intersect(Interval.closed(1, 2))
        assert merged == Interval.closed(1, 2)


class TestRendering:
    def test_point(self):
        assert Interval.point(5).render("X") == "X = 5"

    def test_closed(self):
        assert Interval.closed(1, 5).render("X") == "1 <= X <= 5"

    def test_half_open(self):
        assert Interval.at_least(5, strict=True).render("X") == "5 < X"
        assert Interval.at_most(5).render("X") == "X <= 5"

    def test_unbounded(self):
        assert "anything" in Interval.everything().render("X")


class TestAttributeRef:
    def test_parse(self):
        ref = AttributeRef.parse("CLASS.Displacement")
        assert ref.relation == "CLASS"
        assert ref.attribute == "Displacement"

    def test_parse_requires_dot(self):
        with pytest.raises(RuleError):
            AttributeRef.parse("Displacement")

    def test_case_insensitive_equality(self):
        assert AttributeRef("class", "TYPE") == AttributeRef(
            "CLASS", "Type")
        assert hash(AttributeRef("class", "TYPE")) == hash(
            AttributeRef("CLASS", "Type"))


class TestClause:
    def test_between_and_equals(self):
        between = Clause.between("T.A", 1, 5)
        assert between.lvalue == 1 and between.uvalue == 5
        assert Clause.equals("T.A", 3).is_equality()

    def test_satisfied_by(self):
        assert Clause.between("T.A", 1, 5).satisfied_by(3)
        assert not Clause.between("T.A", 1, 5).satisfied_by(None)

    def test_implies(self):
        wide = Clause.between("T.A", 1, 10)
        narrow = Clause.between("T.A", 3, 4)
        assert narrow.implies(wide)
        assert not wide.implies(narrow)

    def test_implies_different_attribute(self):
        assert not Clause.between("T.A", 1, 5).implies(
            Clause.between("T.B", 1, 5))

    def test_render(self):
        assert Clause.between("T.A", 1, 5).render() == "1 <= T.A <= 5"


class TestMergePointClauses:
    def test_merges_same_attribute(self):
        merged = merge_point_clauses([
            Clause.between("T.A", 1, 10), Clause.between("T.A", 5, 20)])
        assert merged == [Clause.between("T.A", 5, 10)]

    def test_keeps_distinct_attributes(self):
        merged = merge_point_clauses([
            Clause.between("T.A", 1, 10), Clause.between("T.B", 5, 20)])
        assert len(merged) == 2

    def test_contradiction_raises(self):
        with pytest.raises(RuleError, match="contradictory"):
            merge_point_clauses([
                Clause.between("T.A", 1, 2), Clause.between("T.A", 5, 6)])
