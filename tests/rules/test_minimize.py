"""Unit tests for subsumption-based rule-set minimization."""

from repro.rules import Clause, Rule, RuleSet
from repro.rules.minimize import minimize_ruleset


def rule(low, high, label, support=1, attribute="T.X", target="T.Y"):
    return Rule([Clause.between(attribute, low, high)],
                Clause.equals(target, label), support=support)


class TestMinimize:
    def test_identical_rules_collapse(self):
        rules = RuleSet([rule(1, 10, "a", support=5),
                         rule(1, 10, "a", support=2)])
        result = minimize_ruleset(rules)
        assert result.kept == 1
        assert result.minimized[1].support == 5

    def test_narrower_premise_dropped(self):
        rules = RuleSet([rule(1, 10, "a", support=9),
                         rule(3, 5, "a", support=3)])
        result = minimize_ruleset(rules)
        assert result.kept == 1
        assert result.minimized[1].lhs[0].interval.high == 10
        ((dropped, subsumer),) = result.dropped
        assert dropped.lhs[0].interval.low == 3
        assert subsumer.lhs[0].interval.high == 10

    def test_different_conclusions_kept(self):
        rules = RuleSet([rule(1, 10, "a"), rule(3, 5, "b")])
        assert minimize_ruleset(rules).kept == 2

    def test_different_attributes_kept(self):
        rules = RuleSet([rule(1, 10, "a"),
                         rule(1, 10, "a", attribute="T.Z")])
        assert minimize_ruleset(rules).kept == 2

    def test_disjoint_ranges_kept(self):
        rules = RuleSet([rule(1, 5, "a"), rule(6, 9, "a")])
        assert minimize_ruleset(rules).kept == 2

    def test_original_order_preserved(self):
        rules = RuleSet([rule(1, 5, "a"), rule(20, 30, "b"),
                         rule(2, 3, "a")])
        result = minimize_ruleset(rules)
        assert [r.rhs.interval.low for r in result.minimized] == ["a", "b"]

    def test_forward_power_preserved_on_ship_rules(self, ship_rules,
                                                   ship_binding):
        """Minimizing the induced+schema knowledge base never loses a
        forward conclusion on the worked-example conditions."""
        from repro.inference import TypeInferenceEngine
        from repro.rules.clause import Clause as C

        merged = ship_rules.merged_with(ship_binding.schema_rules())
        result = minimize_ruleset(merged)
        assert result.kept < len(merged)  # duplicates exist

        full_engine = TypeInferenceEngine(merged, binding=ship_binding)
        minimal_engine = TypeInferenceEngine(result.minimized,
                                             binding=ship_binding)
        for conditions in (
                [C.between("CLASS.Displacement", 9000, 30000)],
                [C.equals("INSTALL.Sonar", "BQS-04")],
        ):
            full = full_engine.infer(conditions)
            minimal = minimal_engine.infer(conditions)
            assert set(full.forward_subtypes()) == set(
                minimal.forward_subtypes())

    def test_render(self):
        rules = RuleSet([rule(1, 10, "a", support=9), rule(3, 5, "a")])
        text = minimize_ruleset(rules).render()
        assert "kept 1, dropped 1" in text
        assert "subsumed by" in text
