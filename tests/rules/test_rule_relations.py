"""Unit tests for the rule-relation encoding (Section 5.2.2)."""

import pytest

from repro.errors import RuleError
from repro.relational import Database, INTEGER
from repro.rules import (
    Clause, Interval, Rule, RuleSet,
    decode_rule_relations, encode_rule_relations,
    RULE_RELATION_NAME, ATTRIBUTE_MAP_NAME, VALUE_MAP_NAME,
    SUPPORT_RELATION_NAME,
)
from repro.rules.rule_relations import RuleRelationBundle


def sample_rules():
    rules = RuleSet()
    rules.add(Rule([Clause.between("CLASS.Displacement", 7250, 30000)],
                   Clause.equals("CLASS.Type", "SSBN"),
                   support=4, rhs_subtype="SSBN"))
    rules.add(Rule([Clause.between("SUBMARINE.Id", "SSN648", "SSN666"),
                    Clause.equals("SUBMARINE.Class", "0204")],
                   Clause.equals("SONAR.SonarType", "BQQ"),
                   support=3, source="induced"))
    return rules


def rules_equal(left, right):
    return [(r.lhs, r.rhs, r.support, r.rhs_subtype, r.source)
            for r in left] == [
        (r.lhs, r.rhs, r.support, r.rhs_subtype, r.source) for r in right]


class TestEncoding:
    def test_clause_rows(self):
        bundle = encode_rule_relations(sample_rules())
        assert len(bundle.clauses) == 5  # 3 LHS + 2 RHS

    def test_paper_projection_shape(self):
        bundle = encode_rule_relations(sample_rules())
        projection = bundle.paper_projection()
        assert projection.schema.column_names() == [
            "RuleNo", "Role", "Lvalue", "Att_no", "Uvalue"]

    def test_value_codes_order_preserving(self):
        bundle = encode_rule_relations(sample_rules())
        rows = {(row[0], row[2]): row[1] for row in bundle.values}
        # Displacement 7250 must encode lower than 30000.
        displacement_rows = sorted(
            (row for row in bundle.values if row[2] in ("7250", "30000")),
            key=lambda row: int(row[2]))
        assert displacement_rows[0][1] < displacement_rows[1][1]

    def test_attribute_types_recorded(self):
        bundle = encode_rule_relations(sample_rules())
        types = {row[1] + "." + row[2]: row[3]
                 for row in bundle.attributes}
        assert types["CLASS.Displacement"] == "integer"
        assert types["SUBMARINE.Id"] == "string"

    def test_mixed_types_on_attribute_rejected(self):
        rules = RuleSet()
        rules.add(Rule([Clause.between("T.A", 1, 5)],
                       Clause.equals("T.B", "x")))
        rules.add(Rule([Clause.equals("T.A", "oops")],
                       Clause.equals("T.B", "y")))
        with pytest.raises(RuleError, match="mixes clause value types"):
            encode_rule_relations(rules)


class TestRoundTrip:
    def test_roundtrip_identity(self):
        original = sample_rules()
        decoded = decode_rule_relations(encode_rule_relations(original))
        assert rules_equal(original, decoded)

    def test_open_and_unbounded_bounds(self):
        from repro.rules.clause import AttributeRef
        rules = RuleSet()
        rules.add(Rule(
            [Clause(AttributeRef.parse("T.A"),
                    Interval.at_least(10, strict=True))],
            Clause.equals("T.B", 1)))
        decoded = decode_rule_relations(encode_rule_relations(rules))
        assert rules_equal(rules, decoded)

    def test_empty_ruleset(self):
        decoded = decode_rule_relations(encode_rule_relations(RuleSet()))
        assert len(decoded) == 0


class TestRelocation:
    def test_register_and_reload(self, ship_rules, ship_db):
        bundle = encode_rule_relations(ship_rules)
        bundle.register_into(ship_db)
        for name in (RULE_RELATION_NAME, ATTRIBUTE_MAP_NAME,
                     VALUE_MAP_NAME, SUPPORT_RELATION_NAME):
            assert name in ship_db
        reloaded = RuleRelationBundle.from_database(ship_db)
        decoded = decode_rule_relations(reloaded)
        assert rules_equal(ship_rules, decoded)

    def test_relocation_through_text_dump(self, ship_rules, ship_db):
        from repro.relational.textio import dumps_database, loads_database
        encode_rule_relations(ship_rules).register_into(ship_db)
        relocated = loads_database(dumps_database(ship_db))
        decoded = decode_rule_relations(
            RuleRelationBundle.from_database(relocated))
        assert rules_equal(ship_rules, decoded)

    def test_total_rows(self, ship_rules):
        bundle = encode_rule_relations(ship_rules)
        assert bundle.total_rows() == sum(
            len(relation) for relation in bundle.relations())
