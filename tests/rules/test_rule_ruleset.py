"""Unit tests for rules and rule sets."""

import pytest

from repro.errors import RuleError
from repro.rules.clause import AttributeRef, Clause, Interval
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet


def displacement_rule():
    return Rule([Clause.between("CLASS.Displacement", 7250, 30000)],
                Clause.equals("CLASS.Type", "SSBN"),
                support=4, rhs_subtype="SSBN")


def class_rule():
    return Rule([Clause.between("CLASS.Class", "0101", "0103")],
                Clause.equals("CLASS.Type", "SSBN"),
                support=3, rhs_subtype="SSBN")


class TestRule:
    def test_requires_premise(self):
        with pytest.raises(RuleError):
            Rule([], Clause.equals("T.A", 1))

    def test_premise_satisfied_by(self):
        rule = displacement_rule()
        ref = AttributeRef("CLASS", "Displacement")
        assert rule.premise_satisfied_by({ref: 16600})
        assert not rule.premise_satisfied_by({ref: 5000})
        assert not rule.premise_satisfied_by({})

    def test_satisfied_by(self):
        rule = displacement_rule()
        record = {AttributeRef("CLASS", "Displacement"): 16600,
                  AttributeRef("CLASS", "Type"): "SSBN"}
        assert rule.satisfied_by(record)
        record[AttributeRef("CLASS", "Type")] = "SSN"
        assert not rule.satisfied_by(record)

    def test_sound_on(self):
        rule = displacement_rule()
        good = [{AttributeRef("CLASS", "Displacement"): 9000,
                 AttributeRef("CLASS", "Type"): "SSBN"}]
        bad = good + [{AttributeRef("CLASS", "Displacement"): 8000,
                       AttributeRef("CLASS", "Type"): "SSN"}]
        assert rule.sound_on(good)
        assert not rule.sound_on(bad)

    def test_render_isa_style(self):
        rule = displacement_rule()
        assert rule.render(isa_style=True).endswith("then x isa SSBN")
        assert "CLASS.Type = SSBN" in rule.render()

    def test_equality_ignores_support(self):
        left = displacement_rule()
        right = displacement_rule()
        right.support = 99
        assert left == right

    def test_scheme_key(self):
        assert displacement_rule().scheme_key() != class_rule().scheme_key()


class TestRuleSet:
    @pytest.fixture()
    def ruleset(self):
        rules = RuleSet()
        rules.add(displacement_rule())
        rules.add(class_rule())
        return rules

    def test_numbering(self, ruleset):
        assert [rule.number for rule in ruleset] == [1, 2]
        assert ruleset[1].rhs_subtype == "SSBN"
        with pytest.raises(IndexError):
            ruleset[3]

    def test_forward_index(self, ruleset):
        hits = ruleset.rules_with_premise_on(
            AttributeRef("CLASS", "Displacement"))
        assert len(hits) == 1

    def test_backward_index(self, ruleset):
        hits = ruleset.rules_concluding_on(AttributeRef("CLASS", "Type"))
        assert len(hits) == 2

    def test_premise_attributes(self, ruleset):
        names = {ref.render() for ref in ruleset.premise_attributes()}
        assert names == {"CLASS.Displacement", "CLASS.Class"}

    def test_schemes(self, ruleset):
        schemes = ruleset.schemes()
        assert len(schemes) == 2
        assert schemes[0].render() == (
            "CLASS.Displacement --> CLASS.Type")

    def test_filtered_renumbers(self, ruleset):
        kept = ruleset.filtered(lambda rule: rule.support >= 4)
        assert len(kept) == 1
        assert kept[1].support == 4

    def test_merged_with(self, ruleset):
        merged = ruleset.merged_with(ruleset)
        assert len(merged) == 4
        assert [rule.number for rule in merged] == [1, 2, 3, 4]

    def test_render(self, ruleset):
        text = ruleset.render(isa_style=True)
        assert text.splitlines()[0].startswith("R1:")
