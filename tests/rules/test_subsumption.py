"""Unit tests for subsumption/implication checks."""

from repro.rules.clause import AttributeRef, Clause, Interval
from repro.rules.rule import Rule
from repro.rules.subsumption import (
    clause_subsumes, interval_subsumes, rule_fires_forward,
    rule_matches_backward, rule_subsumed_by,
)

DISP = AttributeRef("CLASS", "Displacement")
TYPE = AttributeRef("CLASS", "Type")


class TestIntervalSubsumes:
    def test_plain_containment(self):
        assert interval_subsumes(Interval.closed(1, 10),
                                 Interval.closed(2, 9))

    def test_paper_domain_widening(self):
        premise = Interval.closed(7250, 30000)
        condition = Interval.at_least(8000, strict=True)
        domain = Interval.closed(2000, 30000)
        assert not interval_subsumes(premise, condition)
        assert interval_subsumes(premise, condition, domain)

    def test_condition_outside_domain_vacuous(self):
        premise = Interval.closed(1, 2)
        condition = Interval.at_least(99999)
        domain = Interval.closed(0, 100)
        assert interval_subsumes(premise, condition, domain)


class TestClauseSubsumes:
    def test_requires_same_attribute(self):
        premise = Clause(DISP, Interval.closed(1, 10))
        condition = Clause(TYPE, Interval.point("SSN"))
        assert not clause_subsumes(premise, condition)

    def test_with_domains(self):
        premise = Clause(DISP, Interval.closed(7250, 30000))
        condition = Clause(DISP, Interval.at_least(8000, strict=True))
        domains = {DISP: Interval.closed(2000, 30000)}
        assert clause_subsumes(premise, condition, domains)


class TestForwardFiring:
    RULE = Rule([Clause(DISP, Interval.closed(7250, 30000))],
                Clause(TYPE, Interval.point("SSBN")))

    def test_fires_on_subsumed_condition(self):
        conditions = {DISP: Interval.closed(9000, 10000)}
        assert rule_fires_forward(self.RULE, conditions)

    def test_blocked_without_condition(self):
        assert not rule_fires_forward(self.RULE, {})

    def test_blocked_on_wider_condition(self):
        conditions = {DISP: Interval.closed(5000, 10000)}
        assert not rule_fires_forward(self.RULE, conditions)

    def test_multi_premise_needs_all(self):
        rule = Rule([Clause(DISP, Interval.closed(1, 10)),
                     Clause(TYPE, Interval.point("SSN"))],
                    Clause(AttributeRef("CLASS", "Class"),
                           Interval.point("0201")))
        assert not rule_fires_forward(
            rule, {DISP: Interval.closed(2, 3)})
        assert rule_fires_forward(
            rule, {DISP: Interval.closed(2, 3),
                   TYPE: Interval.point("SSN")})


class TestBackwardMatching:
    RULE = Rule([Clause(AttributeRef("CLASS", "Class"),
                        Interval.closed("0101", "0103"))],
                Clause(TYPE, Interval.point("SSBN")))

    def test_matches_point_fact(self):
        assert rule_matches_backward(self.RULE, TYPE,
                                     Interval.point("SSBN"))

    def test_requires_fact_containing_consequence(self):
        assert not rule_matches_backward(self.RULE, TYPE,
                                         Interval.point("SSN"))

    def test_requires_matching_attribute(self):
        assert not rule_matches_backward(self.RULE, DISP,
                                         Interval.point("SSBN"))


class TestRuleSubsumption:
    def test_general_subsumes_specific(self):
        general = Rule([Clause(DISP, Interval.closed(1, 100))],
                       Clause(TYPE, Interval.point("SSN")))
        specific = Rule([Clause(DISP, Interval.closed(10, 20))],
                        Clause(TYPE, Interval.point("SSN")))
        assert rule_subsumed_by(general, specific)
        assert not rule_subsumed_by(specific, general)

    def test_different_consequence_not_subsumed(self):
        general = Rule([Clause(DISP, Interval.closed(1, 100))],
                       Clause(TYPE, Interval.point("SSN")))
        other = Rule([Clause(DISP, Interval.closed(10, 20))],
                     Clause(TYPE, Interval.point("SSBN")))
        assert not rule_subsumed_by(general, other)

    def test_missing_premise_attribute(self):
        general = Rule([Clause(TYPE, Interval.point("SSN"))],
                       Clause(DISP, Interval.closed(1, 10)))
        specific = Rule([Clause(DISP, Interval.closed(1, 5))],
                        Clause(DISP, Interval.closed(1, 10)))
        assert not rule_subsumed_by(general, specific)
