"""The chaos harness: schedule determinism, per-fault socket
semantics, and the seeded differential leg proving exactly-once DML
plus matching fingerprints through a faulty wire.

The full wide matrix runs in CI via ``python -m repro.synth --chaos``;
this suite pins the mechanics (every fault kind behaves as documented,
schedules replay identically) and runs 25 short seeded schedules as
the always-on regression floor.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.errors import ProtocolError
from repro.server import protocol
from repro.server.chaosproxy import (
    ChaosSchedule, ChaosSocket, FAULT_KINDS,
)
from repro.synth.chaos import (
    chaos_case_payload, mixed_rates, run_chaos,
)
from repro.synth.differential import case_payload, replay_case
from repro.synth.domains import build_instance
from repro.synth.workload import generate_program


def _pipe():
    left, right = socket.socketpair()
    left.settimeout(2.0)
    right.settimeout(2.0)
    return left, right


FRAME = protocol.encode_frame({"op": "sql", "sql": "SELECT 1"})


class TestChaosSchedule:
    def test_same_seed_replays_identically(self):
        rates = mixed_rates(0.4)
        first = ChaosSchedule(7, rates=rates)
        second = ChaosSchedule(7, rates=rates)
        decisions = [first.decide() for _ in range(200)]
        assert decisions == [second.decide() for _ in range(200)]
        assert any(decisions), "rate 0.4 over 200 frames injected nothing"
        assert first.injected == second.injected

    def test_zero_rates_do_not_shift_the_sequence(self):
        # The generator must consume the same randomness whether or not
        # other kinds have zero probability, or ddmin replay drifts.
        lean = ChaosSchedule(3, rates={"drop": 0.5})
        padded = ChaosSchedule(3, rates={"drop": 0.5, "delay": 0.0,
                                         "corrupt": 0.0})
        assert [lean.decide() for _ in range(100)] == \
            [padded.decide() for _ in range(100)]

    def test_script_overrides_rates(self):
        schedule = ChaosSchedule(0, rates={},
                                 script={0: "corrupt", 2: "drop"})
        assert [schedule.decide() for _ in range(4)] == \
            ["corrupt", None, "drop", None]
        assert schedule.injected == [(0, "corrupt"), (2, "drop")]

    def test_max_faults_caps_injection(self):
        schedule = ChaosSchedule(0, rates={"drop": 1.0}, max_faults=2)
        decisions = [schedule.decide() for _ in range(10)]
        assert decisions[:2] == ["drop", "drop"]
        assert decisions[2:] == [None] * 8

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            ChaosSchedule(0, rates={"gremlin": 0.5})
        with pytest.raises(ValueError, match="unknown fault kind"):
            ChaosSchedule(0, script={0: "gremlin"})

    def test_truncate_point_is_a_proper_prefix(self):
        schedule = ChaosSchedule(5)
        for size in (2, 10, 1000):
            for _ in range(20):
                keep = schedule.truncate_point(size)
                assert 1 <= keep < size


class TestChaosSocketFaults:
    def test_clean_frame_passes_through(self):
        left, right = _pipe()
        wrapped = ChaosSocket(left, ChaosSchedule(0))
        try:
            wrapped.sendall(FRAME)
            assert protocol.read_frame(right) == {"op": "sql",
                                                  "sql": "SELECT 1"}
        finally:
            wrapped.close()
            right.close()

    def test_drop_resets_before_delivery(self):
        left, right = _pipe()
        wrapped = ChaosSocket(left, ChaosSchedule(0,
                                                  script={0: "drop"}))
        try:
            with pytest.raises(ConnectionResetError, match="chaos"):
                wrapped.sendall(FRAME)
            assert protocol.read_frame(right) is None  # clean EOF
            # every later operation fails until a reconnect
            with pytest.raises(ConnectionResetError):
                wrapped.recv(1)
        finally:
            wrapped.close()
            right.close()

    def test_truncate_delivers_a_torn_frame(self):
        left, right = _pipe()
        wrapped = ChaosSocket(left,
                              ChaosSchedule(0, script={0: "truncate"}))
        try:
            with pytest.raises(ConnectionResetError, match="truncated"):
                wrapped.sendall(FRAME)
            with pytest.raises(ProtocolError):
                protocol.read_frame(right)
        finally:
            wrapped.close()
            right.close()

    def test_corrupt_delivers_undecodable_bytes(self):
        left, right = _pipe()
        wrapped = ChaosSocket(left,
                              ChaosSchedule(0, script={0: "corrupt"}))
        try:
            wrapped.sendall(FRAME)  # delivered, but poisoned
            with pytest.raises(ProtocolError):
                protocol.read_frame(right)
        finally:
            wrapped.close()
            right.close()

    def test_drop_reply_processes_then_loses_the_ack(self):
        # The ambiguous-ack shape: the peer receives and answers the
        # request; the client reads nothing and sees a reset.
        left, right = _pipe()
        wrapped = ChaosSocket(left,
                              ChaosSchedule(0, script={0: "drop_reply"}))
        served = {}

        def peer():
            served["request"] = protocol.read_frame(right)
            protocol.write_frame(right, {"ok": True, "count": 1})

        thread = threading.Thread(target=peer)
        thread.start()
        try:
            wrapped.sendall(FRAME)
            thread.join(2.0)
            assert served["request"] == {"op": "sql", "sql": "SELECT 1"}
            with pytest.raises(ConnectionResetError,
                               match="reply dropped"):
                protocol.read_frame(wrapped)
        finally:
            wrapped.close()
            right.close()

    def test_delay_uses_injected_sleep_then_delivers(self):
        left, right = _pipe()
        slept = []
        wrapped = ChaosSocket(left,
                              ChaosSchedule(0, script={0: "delay"},
                                            delay_s=0.007),
                              sleep=slept.append)
        try:
            wrapped.sendall(FRAME)
            assert slept == [0.007]
            assert protocol.read_frame(right) is not None
        finally:
            wrapped.close()
            right.close()

    def test_every_fault_kind_is_exercised_above(self):
        assert set(FAULT_KINDS) == {"drop", "truncate", "corrupt",
                                    "drop_reply", "delay", "reset"}


#: The always-on regression floor: 25 seeded schedules across two
#: domains and both schedule shapes (mixed faults, ambiguous-ack-only).
CHAOS_CELLS = (
    [("hospital", 0, fault_seed, None) for fault_seed in range(8)]
    + [("logistics", 0, fault_seed, None) for fault_seed in range(8, 15)]
    + [("hospital", 1, fault_seed, {"drop_reply": 0.3})
       for fault_seed in range(15, 20)]
    + [("ontology", 0, fault_seed, None)
       for fault_seed in range(20, 25)]
)


class TestChaosCells:
    def test_floor_is_twenty_five_schedules(self):
        assert len(CHAOS_CELLS) == 25
        assert len({fault_seed
                    for _, _, fault_seed, _ in CHAOS_CELLS}) == 25

    @pytest.mark.parametrize("domain,seed,fault_seed,rates", CHAOS_CELLS)
    def test_exactly_once_through_the_faulty_wire(self, domain, seed,
                                                  fault_seed, rates):
        report = run_chaos(domain, seed, fault_seed=fault_seed,
                           rate=0.2, rates=rates, n_statements=8,
                           workload_seed=fault_seed)
        assert report.ok, "\n" + report.render()

    def test_faults_actually_fire_across_the_floor(self):
        # Sanity against a silently fault-free matrix: the schedules
        # above inject at rate 0.2 over ~10+ frames each; a fresh
        # replay of one cell must show injections.
        report = run_chaos("hospital", 0, fault_seed=0, rate=0.9,
                           n_statements=8)
        assert report.ok, "\n" + report.render()


class TestChaosCorpusFormat:
    def test_chaos_payload_replays_through_replay_case(self):
        instance = build_instance("hospital", seed=0)
        statements = generate_program(instance, 6, seed=2)
        payload = chaos_case_payload(
            case_payload("hospital", 0, statements,
                         configs=("server",),
                         note="chaos format round-trip"),
            fault_seed=4, rate=0.25)
        assert payload["chaos"] == {"fault_seed": 4, "rate": 0.25}
        report = replay_case(payload)
        assert report.configs[1].startswith("chaos(")
        assert report.ok, "\n" + report.render()

    def test_explicit_rates_survive_the_payload(self):
        payload = chaos_case_payload(
            {"domain": "hospital", "seed": 0, "statements": []},
            fault_seed=1, rate=0.2, rates={"drop_reply": 0.2})
        assert payload["chaos"]["rates"] == {"drop_reply": 0.2}
