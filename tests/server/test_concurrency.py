"""Lock table / lock manager unit tests (S/X semantics, timeouts)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import LockTimeout
from repro.server.concurrency import (
    LockManager, LockTable, RULES_TOKEN, TXN_TOKEN,
)


@pytest.fixture()
def table():
    return LockTable(timeout_s=0.05)


class TestCompatibility:
    def test_shared_locks_coexist(self, table):
        table.slock("a", "r")
        table.slock("b", "r")
        assert table.holders("r") == (None, {"a", "b"})

    def test_exclusive_blocks_shared(self, table):
        table.xlock("a", "r")
        with pytest.raises(LockTimeout):
            table.slock("b", "r")

    def test_shared_blocks_exclusive(self, table):
        table.slock("a", "r")
        with pytest.raises(LockTimeout):
            table.xlock("b", "r")

    def test_exclusive_blocks_exclusive(self, table):
        table.xlock("a", "r")
        with pytest.raises(LockTimeout):
            table.xlock("b", "r")

    def test_names_are_case_insensitive(self, table):
        table.xlock("a", "SUBMARINE")
        with pytest.raises(LockTimeout):
            table.slock("b", "submarine")


class TestReentrancy:
    def test_shared_regrant_is_noop(self, table):
        table.slock("a", "r")
        table.slock("a", "r")
        table.release("a", ["r"])
        assert table.holders("r") == (None, set())

    def test_exclusive_implies_shared(self, table):
        table.xlock("a", "r")
        table.slock("a", "r")  # must not deadlock against itself
        assert table.holders("r") == ("a", set())

    def test_upgrade_when_sole_shared_holder(self, table):
        table.slock("a", "r")
        table.xlock("a", "r")
        assert table.holders("r") == ("a", set())

    def test_upgrade_blocked_by_second_reader(self, table):
        table.slock("a", "r")
        table.slock("b", "r")
        with pytest.raises(LockTimeout):
            table.xlock("a", "r")


class TestWaitAndRelease:
    def test_release_wakes_waiter(self):
        table = LockTable(timeout_s=5.0)
        table.xlock("a", "r")
        granted = threading.Event()

        def waiter():
            table.slock("b", "r")
            granted.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        assert not granted.wait(0.05)
        table.release("a", ["r"])
        assert granted.wait(2.0)
        thread.join(2.0)
        assert table.counters["waits"] == 1
        assert table.counters["timeouts"] == 0

    def test_release_all_drops_everything(self, table):
        table.xlock("a", "r1")
        table.slock("a", "r2")
        table.release_all("a")
        assert table.held_by("a") == set()
        table.xlock("b", "r1")
        table.xlock("b", "r2")

    def test_timeout_increments_counter(self, table):
        table.xlock("a", "r")
        with pytest.raises(LockTimeout):
            table.slock("b", "r", timeout_s=0.01)
        assert table.counters["timeouts"] == 1

    def test_idle_locks_are_garbage_collected(self, table):
        table.slock("a", "r")
        table.release_all("a")
        assert table.status()["locks"] == {}


class TestIntrospection:
    def test_status_and_render(self, table):
        table.xlock("a", "r1")
        table.slock("b", "r2")
        status = table.status()
        assert status["locks"]["r1"]["x"] == "a"
        assert status["locks"]["r2"]["s"] == ["b"]
        text = table.render()
        assert "grants" in text and "r1" in text

    def test_held_by(self, table):
        table.slock("a", "r1")
        table.xlock("a", "r2")
        assert table.held_by("a") == {"r1", "r2"}


class TestLockManager:
    def test_autocommit_statement_releases_early(self, table):
        manager = LockManager(table, "s1")
        manager.slock("r")
        manager.statement_done()
        assert table.held_by("s1") == set()

    def test_transaction_holds_to_end(self, table):
        manager = LockManager(table, "s1")
        manager.begin()
        manager.xlock(TXN_TOKEN)
        manager.xlock("r")
        manager.statement_done()  # no-op mid-transaction
        assert table.held_by("s1") == {TXN_TOKEN, "r"}
        manager.end()
        assert table.held_by("s1") == set()
        assert not manager.in_transaction

    def test_two_managers_conflict_across_sessions(self, table):
        one = LockManager(table, "s1")
        two = LockManager(table, "s2")
        one.begin()
        one.xlock("r")
        with pytest.raises(LockTimeout):
            two.slock("r")
        one.end()
        two.slock("r")

    def test_rules_token_is_shared(self, table):
        one = LockManager(table, "s1")
        two = LockManager(table, "s2")
        one.slock(RULES_TOKEN)
        two.slock(RULES_TOKEN)
        assert table.holders(RULES_TOKEN)[1] == {"s1", "s2"}
