"""Property-based isolation tests: two sessions, arbitrary
interleavings of DML, ask(), and transaction control, checked against
a committed-prefix model.

The model is a multiset of test-row ids per state:

* ``committed`` -- rows every session must see;
* per-session ``overlay`` -- the open transaction's pending effects,
  visible only to its own session.

The driver applies a hypothesis-generated interleaving one operation
at a time and branches on the *actual* outcome: a ``LockTimeout`` is
the concurrency control working (the blocked statement observed
nothing), any success must match the model exactly.  Invariants:

1. a read never shows another session's uncommitted rows and never
   misses a committed row (no stale cache entry, private or wire-memo,
   can leak across sessions);
2. DML row counts equal the model's (no lost updates);
3. a read can only time out when the *other* session holds a write
   lock on the relation, and a write can only time out when the other
   session holds the transaction token or the relation.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import ServerError
from repro.query import IntensionalQueryProcessor
from repro.server import IntensionalQueryServer
from repro.server.client import Client
from repro.testbed import ship_database, ship_ker_schema

IDS = ["T1", "T2", "T3"]

operations = st.lists(
    st.tuples(
        st.integers(0, 1),
        st.one_of(
            st.just(("begin",)),
            st.just(("commit",)),
            st.just(("rollback",)),
            st.just(("read",)),
            st.just(("ask",)),
            st.tuples(st.just("insert"), st.sampled_from(IDS)),
            st.tuples(st.just("delete"), st.sampled_from(IDS)),
        )),
    max_size=9)


@pytest.fixture(scope="module")
def harness(tmp_path_factory):
    system = IntensionalQueryProcessor.from_database(
        ship_database(), ker_schema=ship_ker_schema(),
        relation_order=["SUBMARINE", "CLASS", "SONAR", "INSTALL"])
    system.attach_storage(
        str(tmp_path_factory.mktemp("isolation") / "data"))
    system.storage.checkpoint()
    server = IntensionalQueryServer(system, lock_timeout_s=0.1)
    server.start()
    clients = [Client("127.0.0.1", server.port).connect()
               for _ in range(2)]
    yield server, clients
    for client in clients:
        client.close()
    server.shutdown()


class Model:
    """Committed-prefix visibility over the test rows."""

    def __init__(self):
        self.committed: Counter = Counter()
        self.in_tx = [False, False]
        #: pending (op, id) effects of each session's open transaction.
        self.overlay: list[list[tuple[str, str]]] = [[], []]

    def visible_to(self, session: int) -> Counter:
        view = self.committed.copy()
        if self.in_tx[session]:
            for op, row_id in self.overlay[session]:
                if op == "insert":
                    view[row_id] += 1
                else:
                    view[row_id] = 0
        return +view

    def apply(self, session: int, op: str, row_id: str) -> int:
        """Apply a *successful* DML; returns the expected row count."""
        if self.in_tx[session]:
            affected = (self.visible_to(session)[row_id]
                        if op == "delete" else 1)
            self.overlay[session].append((op, row_id))
            return affected
        if op == "insert":
            self.committed[row_id] += 1
            return 1
        affected = self.committed.pop(row_id, 0)
        return affected

    def finish(self, session: int, commit: bool) -> None:
        if commit:
            self.committed = self.visible_to(session)
        self.in_tx[session] = False
        self.overlay[session] = []

    def other_blocks_read(self, session: int) -> bool:
        other = 1 - session
        return self.in_tx[other] and bool(self.overlay[other])

    def other_blocks_write(self, session: int) -> bool:
        return self.in_tx[1 - session]


def _reset(clients, model_rows=IDS):
    for client in clients:
        try:
            client.rollback()
        except ServerError:
            pass
    for row_id in model_rows:
        clients[0].sql(
            f"DELETE FROM SUBMARINE WHERE Id = '{row_id}'")


def _read_ids(client, via_ask: bool) -> Counter:
    sql = "SELECT Id FROM SUBMARINE"
    rows = (client.ask(sql).extensional if via_ask
            else client.sql(sql))
    return Counter(row[0] for row in rows if str(row[0]) in IDS)


@settings(max_examples=12, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(plan=operations)
def test_no_lost_updates_and_committed_prefix_visibility(harness, plan):
    _server, clients = harness
    _reset(clients)
    model = Model()
    for session, op in plan:
        client = clients[session]
        kind = op[0]
        try:
            if kind == "begin":
                client.begin()
                assert not model.in_tx[session]
                assert not model.other_blocks_write(session)
                model.in_tx[session] = True
            elif kind in ("commit", "rollback"):
                getattr(client, kind)()
                assert model.in_tx[session]
                model.finish(session, commit=kind == "commit")
            elif kind in ("read", "ask"):
                seen = _read_ids(client, via_ask=kind == "ask")
                assert seen == model.visible_to(session), \
                    f"read saw {seen}, model says " \
                    f"{model.visible_to(session)}"
            elif kind == "insert":
                row_id = op[1]
                count = client.sql(
                    f"INSERT INTO SUBMARINE VALUES "
                    f"('{row_id}', 'Prop', '0102')")
                expected = model.apply(session, "insert", row_id)
                assert count == expected
            elif kind == "delete":
                row_id = op[1]
                count = client.sql(
                    f"DELETE FROM SUBMARINE WHERE Id = '{row_id}'")
                expected = model.apply(session, "delete", row_id)
                assert count == expected, \
                    f"delete affected {count}, model says {expected}"
        except ServerError as error:
            if error.remote_type == "LockTimeout":
                # Blocking is only legal when the other session
                # actually holds a conflicting lock.
                if kind in ("read", "ask"):
                    assert model.other_blocks_read(session)
                else:
                    assert model.other_blocks_write(session)
                if error.aborted:
                    model.finish(session, commit=False)
            elif error.remote_type == "StorageError":
                # begin-inside-tx / commit-without-tx misuse.
                if kind == "begin":
                    assert model.in_tx[session]
                else:
                    assert kind in ("commit", "rollback")
                    assert not model.in_tx[session]
            else:  # pragma: no cover - unexpected failure class
                raise
    _reset(clients)
    # After cleanup both sessions converge on the same committed view.
    assert _read_ids(clients[0], False) == Counter()
    assert _read_ids(clients[1], True) == Counter()


@settings(max_examples=8, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(row_id=st.sampled_from(IDS), via_ask=st.booleans())
def test_private_cache_entries_never_leak(harness, row_id, via_ask):
    """A read cached inside one session's transaction must not be
    served to the other session after rollback."""
    _server, clients = harness
    _reset(clients)
    one, two = clients
    one.begin()
    one.sql(f"INSERT INTO SUBMARINE VALUES ('{row_id}', 'P', '0102')")
    # Prime every cache layer from inside the transaction.
    assert _read_ids(one, via_ask)[row_id] == 1
    one.rollback()
    assert _read_ids(two, via_ask)[row_id] == 0
    assert _read_ids(one, via_ask)[row_id] == 0
