"""Two-session 2PL isolation when statements execute on worker pools.

The server executes every statement in-process, so shrinking the DOP
thresholds makes its reads genuinely fan out across the shared worker
pool (``EXPLAIN`` over the wire proves the exchange operator is in the
plan).  The scripted interleaving and the seeded concurrent burst then
check that parallel execution changes nothing about two-phase locking:

* a reader never observes another session's uncommitted rows -- it
  either blocks on the writer's exclusive lock (``LockTimeout``) or
  sees a committed count;
* rolled-back work is invisible;
* every successful read during a concurrent writer burst lands exactly
  on a committed transaction boundary, never between the statements of
  an open transaction.
"""

import random
import threading
import time

import pytest

from repro.errors import ServerError
from repro.plan import parallel
from repro.query import IntensionalQueryProcessor
from repro.relational.database import Database
from repro.relational.datatypes import INTEGER, char
from repro.server import IntensionalQueryServer
from repro.server.client import Client

ROWS = 6000
COUNT_SQL = "SELECT COUNT(*) FROM EVENT WHERE EVENT.V != 500"
SCAN_SQL = "SELECT EVENT.Id FROM EVENT WHERE EVENT.V != 500"


def event_database() -> Database:
    db = Database("parallel-server-bed")
    db.create("EVENT", [("Id", INTEGER), ("V", INTEGER),
                        ("Cat", char(8))],
              [(i, (i * 7919) % 1000, f"c{i % 5}")
               for i in range(ROWS)])
    return db


@pytest.fixture(scope="module")
def harness(tmp_path_factory):
    """Server plus two clients, with DOP thresholds shrunk so the
    6000-row table plans four-way parallel pipelines in the server."""
    workers_before = parallel.FORCED
    per_before = parallel.ROWS_PER_WORKER
    morsel_before = parallel.MORSEL_ROWS
    parallel.set_workers(4)
    parallel.ROWS_PER_WORKER = 256
    parallel.MORSEL_ROWS = 512
    system = IntensionalQueryProcessor.from_database(event_database())
    system.attach_storage(
        str(tmp_path_factory.mktemp("parallel-server") / "data"))
    system.storage.checkpoint()
    server = IntensionalQueryServer(system, lock_timeout_s=0.25)
    server.start()
    clients = [Client("127.0.0.1", server.port).connect()
               for _ in range(2)]
    yield server, clients
    for client in clients:
        client.close()
    server.shutdown()
    parallel.set_workers(workers_before)
    parallel.ROWS_PER_WORKER = per_before
    parallel.MORSEL_ROWS = morsel_before


def _count(client) -> int:
    return client.sql(COUNT_SQL).rows[0][0]


def _reset(clients):
    for client in clients:
        try:
            client.rollback()
        except ServerError:
            pass
    clients[0].sql(f"DELETE FROM EVENT WHERE EVENT.Id >= {ROWS}")


def test_server_executes_parallel_plans(harness):
    _server, clients = harness
    rendered = clients[0].explain(SCAN_SQL)
    assert "MergeExchange [dop=4]" in rendered
    assert _count(clients[0]) == _count(clients[1])


def test_uncommitted_writes_block_the_other_session(harness):
    _server, clients = harness
    _reset(clients)
    writer, reader = clients
    base = _count(reader)
    writer.begin()
    try:
        writer.sql(f"INSERT INTO EVENT VALUES ({ROWS}, 1, 'new')")
        # 2PL: the writer holds an exclusive lock, so the parallel
        # read cannot observe the uncommitted row -- it must block
        # until the lock timeout instead of returning a dirty count.
        with pytest.raises(ServerError) as exc:
            reader.sql(COUNT_SQL)
        assert exc.value.remote_type == "LockTimeout"
    finally:
        writer.commit()
    assert _count(reader) == base + 1
    _reset(clients)


def test_rolled_back_writes_stay_invisible(harness):
    _server, clients = harness
    _reset(clients)
    writer, reader = clients
    base = _count(reader)
    writer.begin()
    writer.sql(f"INSERT INTO EVENT VALUES ({ROWS + 1}, 1, 'gone')")
    writer.rollback()
    assert _count(reader) == base
    assert _count(writer) == base
    _reset(clients)


def test_seeded_burst_reads_only_committed_boundaries(harness):
    """Seeded concurrent burst: the writer commits in strides of
    TX_ROWS rows while the reader hammers parallel COUNTs.  Every
    successful read must land on a commit boundary -- an intermediate
    count would mean a worker-pool scan saw half a transaction."""
    _server, clients = harness
    _reset(clients)
    writer, reader = clients
    rng = random.Random(1234)
    base = _count(reader)
    tx_rows, tx_count = 10, 5
    committed = {base + tx_rows * j for j in range(tx_count + 1)}
    violations: list[int] = []
    done = threading.Event()

    def read_loop():
        while not done.is_set():
            try:
                seen = _count(reader)
            except ServerError as error:  # blocked on the writer: fine
                assert error.remote_type == "LockTimeout"
            else:
                if seen not in committed:
                    violations.append(seen)

    thread = threading.Thread(target=read_loop, daemon=True)
    thread.start()
    try:
        for j in range(tx_count):
            time.sleep(rng.uniform(0.0, 0.01))  # seeded interleaving
            writer.begin()
            for i in range(tx_rows):
                row_id = ROWS + 100 + j * tx_rows + i
                writer.sql(
                    f"INSERT INTO EVENT VALUES ({row_id}, 1, 'b')")
            writer.commit()
    finally:
        done.set()
        thread.join(10.0)
    assert not thread.is_alive()
    assert violations == []
    assert _count(reader) == base + tx_rows * tx_count
    _reset(clients)
