"""Wire protocol unit tests: framing, limits, error mapping."""

from __future__ import annotations

import socket
import struct

import pytest

from repro.errors import LockTimeout, ProtocolError, SqlError
from repro.server import protocol
from repro.testbed import ship_database


def _pipe():
    left, right = socket.socketpair()
    left.settimeout(2.0)
    right.settimeout(2.0)
    return left, right


class TestFraming:
    def test_round_trip(self):
        left, right = _pipe()
        try:
            message = {"op": "sql", "sql": "SELECT 1", "n": 7,
                       "unicode": "sous-marin é"}
            protocol.write_frame(left, message)
            assert protocol.read_frame(right) == message
        finally:
            left.close()
            right.close()

    def test_many_frames_in_sequence(self):
        left, right = _pipe()
        try:
            for index in range(5):
                protocol.write_frame(left, {"i": index})
            for index in range(5):
                assert protocol.read_frame(right) == {"i": index}
        finally:
            left.close()
            right.close()

    def test_clean_eof_returns_none(self):
        left, right = _pipe()
        left.close()
        try:
            assert protocol.read_frame(right) is None
        finally:
            right.close()

    def test_eof_mid_frame_raises(self):
        left, right = _pipe()
        try:
            frame = protocol.encode_frame({"op": "ping"})
            left.sendall(frame[:len(frame) - 2])  # torn body
            left.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                protocol.read_frame(right)
        finally:
            right.close()

    def test_eof_between_header_and_body(self):
        left, right = _pipe()
        try:
            left.sendall(struct.pack(">I", 10))
            left.close()
            with pytest.raises(ProtocolError):
                protocol.read_frame(right)
        finally:
            right.close()

    def test_oversized_announcement_refused_unread(self):
        left, right = _pipe()
        try:
            left.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="limit"):
                protocol.read_frame(right)
        finally:
            left.close()
            right.close()

    def test_oversized_body_refused_on_encode(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.encode_frame({"pad": "x" * (protocol.MAX_FRAME_BYTES
                                                 + 16)})

    def test_zero_length_frame_is_empty_object(self):
        left, right = _pipe()
        try:
            left.sendall(struct.pack(">I", 0))
            assert protocol.read_frame(right) == {}
        finally:
            left.close()
            right.close()


class TestDecode:
    def test_bad_json(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            protocol.decode_frame(b"{nope")

    def test_bad_utf8(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b"\xff\xfe{}")

    def test_non_object_body(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.decode_frame(b"[1, 2, 3]")


class TestErrorFrames:
    def test_repro_error_keeps_type_and_hint(self):
        frame = protocol.error_frame(SqlError("bad query"))
        assert frame["ok"] is False
        assert frame["error"]["type"] == "SqlError"
        assert frame["error"]["message"] == "bad query"

    def test_lock_timeout_carries_class_hint(self):
        frame = protocol.error_frame(LockTimeout("waited too long"),
                                     aborted=True)
        assert frame["error"]["type"] == "LockTimeout"
        assert frame["error"]["aborted"] is True
        assert "retry" in frame["error"]["hint"]

    def test_foreign_exception_becomes_internal_error(self):
        frame = protocol.error_frame(ValueError("oops"))
        assert frame["error"]["type"] == "InternalError"
        assert frame["error"]["message"] == "oops"

    def test_aborted_defaults_off(self):
        frame = protocol.error_frame(SqlError("x"))
        assert "aborted" not in frame["error"]


class TestRelationPayload:
    def test_relation_round_trips(self):
        relation = ship_database().relation("SUBMARINE")
        payload = protocol.encode_relation_payload(relation)
        decoded = protocol.decode_relation_payload(payload)
        assert decoded.name == relation.name
        assert list(decoded) == list(relation)

    def test_payload_is_json_safe(self):
        import json
        relation = ship_database().relation("CLASS")
        payload = protocol.encode_relation_payload(relation)
        assert json.loads(json.dumps(payload)) == payload

    def test_bad_payload_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="bad relation payload"):
            protocol.decode_relation_payload({"schema": "garbage"})
