"""Property tests: the frame decoder against torn, truncated,
corrupted, and hostile byte streams.

The invariant under test is total: for *any* byte prefix a failing
network can deliver, :func:`repro.server.protocol.read_frame` either
returns a decoded dict, returns ``None`` (clean EOF between frames),
or raises :class:`~repro.errors.ProtocolError` -- it never hangs once
the peer is gone, never raises anything else, and never reinterprets
damage as a different valid frame.
"""

from __future__ import annotations

import socket
import struct

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import ProtocolError
from repro.server import protocol

#: A representative frame with nested values and multi-byte UTF-8, so
#: truncation points can land inside a code point.
MESSAGE = {"op": "sql", "sql": "SELECT Name FROM SOUS_MARIN é中",
           "deadline_ms": 1500, "nested": {"ok": True, "n": [1, 2, 3]}}
FRAME = protocol.encode_frame(MESSAGE)

FAULT_SETTINGS = settings(
    max_examples=60, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


def deliver(data: bytes):
    """Write *data* to a dead-ending pipe and decode from the far side:
    exactly what a server session sees when a client dies mid-send."""
    left, right = socket.socketpair()
    right.settimeout(2.0)
    try:
        if data:
            left.sendall(data)
        left.close()
        return protocol.read_frame(right)
    finally:
        right.close()


class TestTornFrames:
    @FAULT_SETTINGS
    @given(cut=st.integers(min_value=0, max_value=len(FRAME)))
    def test_every_truncation_point_is_handled(self, cut):
        prefix = FRAME[:cut]
        if cut == len(FRAME):
            assert deliver(prefix) == MESSAGE
        elif cut == 0:
            assert deliver(prefix) is None  # clean EOF between frames
        else:
            # Torn header, torn length/body boundary, or torn body --
            # all must surface as ProtocolError, never a partial dict.
            with pytest.raises(ProtocolError):
                deliver(prefix)

    @FAULT_SETTINGS
    @given(announced=st.integers(min_value=1, max_value=1 << 20),
           short=st.integers(min_value=0, max_value=64))
    def test_body_shorter_than_announced(self, announced, short):
        body = FRAME[4:]
        delivered = body[:max(0, min(len(body), announced - short - 1))]
        with pytest.raises(ProtocolError):
            deliver(struct.pack(">I", announced) + delivered)


class TestOversizedFrames:
    @FAULT_SETTINGS
    @given(length=st.integers(min_value=protocol.MAX_FRAME_BYTES + 1,
                              max_value=2 ** 32 - 1))
    def test_oversized_announcement_refused_before_reading(self, length):
        # The decoder must refuse on the 4 header bytes alone -- never
        # try to allocate or read a body the announcement sized.
        with pytest.raises(ProtocolError, match="limit"):
            deliver(struct.pack(">I", length))


class TestCorruptedFrames:
    @FAULT_SETTINGS
    @given(position=st.integers(min_value=0, max_value=len(FRAME) - 5),
           value=st.integers(min_value=0, max_value=255))
    def test_flipped_body_byte_never_escapes_as_success(self, position,
                                                        value):
        # Corrupt one body byte (headers stay intact so length still
        # matches): the decode either fails as ProtocolError or yields
        # a JSON object -- never a crash, never a non-dict.
        body_at = 4 + position
        corrupted = (FRAME[:body_at] + bytes([value])
                     + FRAME[body_at + 1:])
        try:
            result = deliver(corrupted)
        except ProtocolError:
            return
        assert isinstance(result, dict)

    @FAULT_SETTINGS
    @given(data=st.binary(max_size=4096))
    def test_arbitrary_garbage_is_total(self, data):
        # Any byte soup: a dict, a clean None, or ProtocolError.
        try:
            result = deliver(data)
        except ProtocolError:
            return
        assert result is None or isinstance(result, dict)


class TestServerSurvivesTornFrames:
    def test_session_cleanup_after_torn_frame(self):
        # A live server fed a torn frame must drop that session cleanly
        # and keep serving new connections.
        from repro.query import IntensionalQueryProcessor
        from repro.server import IntensionalQueryServer
        from repro.server.client import Client
        from repro.testbed import ship_database, ship_ker_schema
        system = IntensionalQueryProcessor.from_database(
            ship_database(), ker_schema=ship_ker_schema(),
            relation_order=["SUBMARINE", "CLASS", "SONAR", "INSTALL"])
        with IntensionalQueryServer(system, lock_timeout_s=0.3) as live:
            raw = socket.create_connection(("127.0.0.1", live.port),
                                           timeout=2.0)
            try:
                assert protocol.read_frame(raw)["kind"] == "hello"
                raw.sendall(FRAME[:len(FRAME) // 2])
            finally:
                raw.close()
            with Client("127.0.0.1", live.port) as client:
                assert client.ping() >= 0.0
