"""The resilience layer: deadlines, retries, circuit breaking,
admission control, idempotent DML dedup, statement timeouts, connect
timeouts, and the idle reaper.

Unit tests drive every primitive with injected clocks (no real time);
wire tests run real sockets against a live server, with the scripted
:class:`~repro.server.chaosproxy.ChaosSocket` standing in for the
network when a test needs a fault at an exact frame.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.errors import (
    CircuitOpen, DeadlineExceeded, ProtocolError, RetryLater,
    ServerError,
)
from repro.plan import plans
from repro.query import IntensionalQueryProcessor
from repro.server import IntensionalQueryServer
from repro.server.chaosproxy import ChaosSchedule, ChaosSocket
from repro.server.client import Client
from repro.server.resilience import (
    AdmissionController, CircuitBreaker, Deadline, DedupTable,
    RetryPolicy, TokenSource,
)
from repro.testbed import ship_database, ship_ker_schema

EXAMPLE_1 = (
    "SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE "
    "FROM SUBMARINE, CLASS "
    "WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000")


def _ship_system():
    return IntensionalQueryProcessor.from_database(
        ship_database(), ker_schema=ship_ker_schema(),
        relation_order=["SUBMARINE", "CLASS", "SONAR", "INSTALL"])


@pytest.fixture()
def server():
    with IntensionalQueryServer(_ship_system(),
                                lock_timeout_s=0.3) as live:
        yield live


@pytest.fixture()
def client(server):
    with Client("127.0.0.1", server.port) as live:
        yield live


def _fast_retry(**overrides) -> RetryPolicy:
    options = dict(max_attempts=5, base_delay_s=0.001,
                   max_delay_s=0.01, seed=7)
    options.update(overrides)
    return RetryPolicy(**options)


# ---------------------------------------------------------------------------
# primitives (injected clocks, no wall time)


class TestDeadline:
    def test_remaining_and_expiry(self):
        now = [100.0]
        deadline = Deadline.after(5.0, clock=lambda: now[0])
        assert deadline.remaining() == pytest.approx(5.0)
        assert not deadline.expired
        now[0] += 5.5
        assert deadline.expired
        assert deadline.remaining() == pytest.approx(-0.5)

    def test_check_raises_with_context(self):
        deadline = Deadline.after(-1.0, clock=lambda: 0.0)
        with pytest.raises(DeadlineExceeded, match="parsing the query"):
            deadline.check("parsing the query")

    def test_wire_form_floors_at_zero(self):
        now = [0.0]
        deadline = Deadline.after(0.5, clock=lambda: now[0])
        assert deadline.remaining_ms() == 500
        now[0] += 2.0
        assert deadline.remaining_ms() == 0


class TestRetryPolicy:
    def test_same_seed_same_delays(self):
        first = RetryPolicy(seed=42)
        second = RetryPolicy(seed=42)
        assert [first.delay(n) for n in range(5)] == \
            [second.delay(n) for n in range(5)]

    def test_delays_bounded_by_exponential_envelope(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0,
                             max_delay_s=1.0, jitter=0.5, seed=1)
        for attempt in range(8):
            raw = min(1.0, 0.1 * 2 ** attempt)
            delay = policy.delay(attempt)
            assert raw * 0.5 <= delay <= raw

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(base_delay_s=0.25, multiplier=2.0,
                             max_delay_s=10.0, jitter=0.0)
        assert [policy.delay(n) for n in range(3)] == [0.25, 0.5, 1.0]

    def test_attempt_range(self):
        assert list(RetryPolicy(max_attempts=3).attempts()) == [0, 1, 2]


class TestCircuitBreaker:
    def test_opens_after_threshold_and_fails_fast(self):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=3, reset_after_s=2.0,
                                 clock=lambda: now[0])
        for _ in range(2):
            breaker.record_failure()
        breaker.admit()  # still closed
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpen) as info:
            breaker.admit()
        assert info.value.retry_after_s == pytest.approx(2.0)
        assert breaker.stats["opened"] == 1
        assert breaker.stats["fast_failures"] == 1

    def test_half_open_probe_then_close(self):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=1.0,
                                 clock=lambda: now[0])
        breaker.record_failure()
        now[0] += 1.5
        assert breaker.state == "half-open"
        breaker.admit()  # the single probe
        with pytest.raises(CircuitOpen):
            breaker.admit()  # racing second caller is refused
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.admit()

    def test_failed_probe_rearms_cooldown(self):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=1.0,
                                 clock=lambda: now[0])
        breaker.record_failure()
        now[0] += 1.5
        breaker.admit()  # probe...
        breaker.record_failure()  # ...fails
        with pytest.raises(CircuitOpen):
            breaker.admit()

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestTokenSource:
    def test_tokens_are_scoped_and_unique(self):
        source = TokenSource("c-abc")
        first, second = source.next(), source.next()
        assert first == "c-abc:1"
        assert second == "c-abc:2"
        assert first != second


class TestAdmissionController:
    def test_admit_and_release(self):
        gate = AdmissionController(max_in_flight=2, max_queue=0)
        with gate.admit():
            with gate.admit():
                assert gate.status()["in_flight"] == 2
        assert gate.status()["in_flight"] == 0
        assert gate.stats["admitted"] == 2

    def test_full_queue_sheds_with_hint(self):
        gate = AdmissionController(max_in_flight=1, max_queue=0,
                                   retry_after_s=0.05)
        with gate.admit():
            with pytest.raises(RetryLater) as info:
                gate.admit()
        assert info.value.retryable
        assert info.value.retry_after_s >= 0.05
        assert gate.stats["shed"] == 1

    def test_queue_timeout_sheds(self):
        gate = AdmissionController(max_in_flight=1, max_queue=4,
                                   queue_timeout_s=0.05)
        with gate.admit():
            start = time.monotonic()
            with pytest.raises(RetryLater, match="queued past"):
                gate.admit()
            assert time.monotonic() - start >= 0.04

    def test_queued_request_admitted_on_release(self):
        gate = AdmissionController(max_in_flight=1, max_queue=4,
                                   queue_timeout_s=2.0)
        ticket = gate.admit()
        admitted = threading.Event()

        def waiter():
            with gate.admit():
                admitted.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        try:
            time.sleep(0.02)
            assert not admitted.is_set()
            ticket.__exit__()
            assert admitted.wait(2.0)
        finally:
            thread.join(2.0)
        assert gate.stats["queued"] == 1

    def test_expired_deadline_is_shed_without_waiting(self):
        gate = AdmissionController(max_in_flight=1, max_queue=4)
        with gate.admit():
            with pytest.raises(RetryLater, match="no wait budget"):
                gate.admit(Deadline.after(-1.0))

    def test_overloaded_after_shed(self):
        gate = AdmissionController(max_in_flight=1, max_queue=0)
        assert not gate.overloaded()
        with gate.admit():
            with pytest.raises(RetryLater):
                gate.admit()
        assert gate.overloaded()
        assert not gate.overloaded(shed_memory_s=0.0)


class TestDedupTable:
    def test_miss_then_hit_returns_copy(self):
        table = DedupTable()
        assert table.get("k") is None
        table.put("k", {"count": 1})
        entry = table.get("k")
        assert entry == {"count": 1}
        entry["count"] = 99
        assert table.get("k") == {"count": 1}
        assert table.stats == {"hits": 2, "misses": 1, "recovered": 0}

    def test_fifo_eviction_at_capacity(self):
        table = DedupTable(capacity=2)
        table.put("a", {"n": 1})
        table.put("b", {"n": 2})
        table.put("c", {"n": 3})
        assert table.get("a") is None
        assert table.get("b") == {"n": 2}
        assert len(table) == 2

    def test_seed_counts_recovered_entries(self):
        table = DedupTable()
        assert table.seed([("x", {"n": 1}), ("y", {"n": 2})]) == 2
        assert table.stats["recovered"] == 2
        assert table.get("y") == {"n": 2}


# ---------------------------------------------------------------------------
# deadlines and timeouts over the wire


class TestWireDeadlines:
    def test_expired_deadline_refused_before_execution(self, client):
        before = len(client.sql("SELECT Name FROM SUBMARINE"))
        with pytest.raises(ServerError) as info:
            client.request({
                "op": "sql", "deadline_ms": 0,
                "sql": "INSERT INTO SUBMARINE VALUES "
                       "('9901', 'Late', '1301')"})
        assert info.value.remote_type == "DeadlineExceeded"
        assert "nothing was executed" in str(info.value)
        assert len(client.sql("SELECT Name FROM SUBMARINE")) == before

    def test_client_checks_deadline_before_sending(self, client):
        with pytest.raises(DeadlineExceeded, match="before sending"):
            client.request({"op": "ping"}, deadline=Deadline.after(-1.0))

    def test_bad_deadline_header_is_protocol_error(self, client):
        with pytest.raises(ServerError) as info:
            client.request({"op": "sql", "sql": "SELECT 1",
                            "deadline_ms": "soonish"})
        assert info.value.remote_type == "ProtocolError"

    def test_statement_timeout_cancels_streaming_plan(self):
        system = _ship_system()
        with IntensionalQueryServer(system, lock_timeout_s=0.3,
                                    statement_timeout_s=0.05) as server:
            with Client("127.0.0.1", server.port,
                        timeout_s=5.0) as client:
                plans.set_batch_observer(
                    lambda plan, batch: time.sleep(0.03))
                try:
                    with pytest.raises(ServerError) as info:
                        client.sql(EXAMPLE_1)
                finally:
                    plans.set_batch_observer(None)
                assert info.value.remote_type == "StatementTimeout"
                assert not info.value.retryable
                # the session survives a cancelled statement
                assert client.ping() >= 0.0
                rows = client.sql("SELECT Name FROM SUBMARINE "
                                  "WHERE Class = '1301'")
                assert len(rows) > 0


# ---------------------------------------------------------------------------
# admission control and degraded serving over the wire


class TestAdmissionOverWire:
    # Statement execution serializes behind the engine lock, so the
    # gate saturates in production when slots are held across lock
    # waits; the tests occupy a slot directly -- the same condition,
    # minus the thread ballet.

    def test_overflow_is_shed_with_retry_later(self):
        with IntensionalQueryServer(_ship_system(), lock_timeout_s=0.3,
                                    max_in_flight=1,
                                    max_queue=0) as server:
            ticket = server.admission.admit()
            try:
                with Client("127.0.0.1", server.port) as other:
                    with pytest.raises(ServerError) as info:
                        other.sql("SELECT Type FROM CLASS")
            finally:
                ticket.__exit__()
            assert info.value.remote_type == "RetryLater"
            assert info.value.retryable
            assert info.value.retry_after_s > 0
            assert "nothing was executed" in info.value.hint

    def test_retry_policy_rides_out_the_shed(self):
        with IntensionalQueryServer(_ship_system(), lock_timeout_s=0.3,
                                    max_in_flight=1,
                                    max_queue=0) as server:
            ticket = server.admission.admit()
            released = threading.Timer(0.05, ticket.__exit__)
            released.start()
            retrier = Client("127.0.0.1", server.port,
                             retry=_fast_retry(max_attempts=50),
                             timeout_s=10.0).connect()
            try:
                rows = retrier.sql("SELECT Type FROM CLASS")
            finally:
                retrier.close()
                released.join()
            assert len(rows) > 0
            assert retrier.stats["retries"] > 0

    def test_ping_and_commit_bypass_admission(self):
        with IntensionalQueryServer(_ship_system(), lock_timeout_s=0.3,
                                    max_in_flight=1,
                                    max_queue=0) as server:
            ticket = server.admission.admit()
            try:
                with Client("127.0.0.1", server.port) as other:
                    assert other.ping() >= 0.0
            finally:
                ticket.__exit__()

    def test_overloaded_ask_degrades_to_extensional(self, server,
                                                    client):
        # A near-identical variant the wire memo has never seen.
        variant = EXAMPLE_1.replace("> 8000", "> 7999")
        healthy = client.ask(EXAMPLE_1)
        assert healthy.intensional
        server.admission.overloaded = lambda *a, **k: True
        try:
            # Memoized reads keep serving in full under overload (the
            # fast path runs before the gate)...
            assert client.ask(EXAMPLE_1).intensional
            # ...but fresh work degrades to the extensional half, with
            # an honest warning.
            degraded = client.ask(variant)
            assert degraded.intensional == []
            assert any("overloaded" in warning
                       for warning in degraded.warnings)
            assert len(degraded.extensional) == len(healthy.extensional)
        finally:
            del server.admission.overloaded
        # the degraded answer was never memoized: healthy asks get the
        # full intensional half again
        assert client.ask(variant).intensional


# ---------------------------------------------------------------------------
# idempotent DML: exactly-once under retries and recovery


class TestIdempotentDedup:
    INSERT = "INSERT INTO SUBMARINE VALUES ('9911', 'Redelivered', '1301')"

    def test_same_token_applies_exactly_once(self, server, client):
        first = client.request({"op": "sql", "sql": self.INSERT,
                                "token": "t-1", "client": "cli-a"})
        again = client.request({"op": "sql", "sql": self.INSERT,
                                "token": "t-1", "client": "cli-a"})
        assert first["count"] == 1
        assert again["count"] == 1
        assert again.get("deduplicated") is True
        rows = client.sql("SELECT Name FROM SUBMARINE "
                          "WHERE Name = 'Redelivered'")
        assert len(rows) == 1
        assert server.dedup.stats["hits"] >= 1

    def test_retry_from_another_session_hits_the_entry(self, server):
        # The key is the *client* id: a retry lands on a fresh session
        # after a reconnect and must still dedup.
        with Client("127.0.0.1", server.port) as one:
            one.request({"op": "sql", "sql": self.INSERT,
                         "token": "t-9", "client": "cli-b"})
        with Client("127.0.0.1", server.port) as two:
            again = two.request({"op": "sql", "sql": self.INSERT,
                                 "token": "t-9", "client": "cli-b"})
            assert again.get("deduplicated") is True
            rows = two.sql("SELECT Name FROM SUBMARINE "
                           "WHERE Name = 'Redelivered'")
        assert len(rows) == 1

    def test_distinct_tokens_apply_independently(self, client):
        client.request({"op": "sql", "sql": self.INSERT, "token": "a-1",
                        "client": "cli-c"})
        client.request({
            "op": "sql", "token": "a-2", "client": "cli-c",
            "sql": "INSERT INTO SUBMARINE VALUES "
                   "('9912', 'Second', '1301')"})
        rows = client.sql("SELECT Name FROM SUBMARINE "
                          "WHERE Name = 'Redelivered' "
                          "OR Name = 'Second'")
        assert len(rows) == 2

    def test_tokenless_dml_is_not_deduplicated(self, server, client):
        delete = "DELETE FROM SUBMARINE WHERE Name = 'NoSuchBoat'"
        client.sql(delete)
        client.sql(delete)
        assert len(server.dedup) == 0

    def test_dedup_survives_recovery_from_wal_tail(self, tmp_path):
        data_dir = str(tmp_path / "data")
        system = _ship_system()
        system.attach_storage(data_dir)
        system.storage.checkpoint()
        with IntensionalQueryServer(system, lock_timeout_s=0.3) as live:
            with Client("127.0.0.1", live.port) as client:
                first = client.request({
                    "op": "sql", "sql": self.INSERT,
                    "token": "t-wal", "client": "cli-d"})
                assert first["count"] == 1
        recovered, report = IntensionalQueryProcessor.recover(data_dir)
        assert report.dedup_entries, \
            "the dedup record must replay from the WAL tail"
        with IntensionalQueryServer(recovered,
                                    lock_timeout_s=0.3) as live:
            assert len(live.dedup) > 0
            with Client("127.0.0.1", live.port) as client:
                again = client.request({
                    "op": "sql", "sql": self.INSERT,
                    "token": "t-wal", "client": "cli-d"})
                assert again.get("deduplicated") is True
                assert again["count"] == 1
                rows = client.sql("SELECT Name FROM SUBMARINE "
                                  "WHERE Name = 'Redelivered'")
                assert len(rows) == 1

    def test_dedup_survives_checkpoint_then_recovery(self, tmp_path):
        # A checkpoint rotates the WAL away; the entries must ride the
        # snapshot metadata instead.
        data_dir = str(tmp_path / "data")
        system = _ship_system()
        system.attach_storage(data_dir)
        system.storage.checkpoint()
        with IntensionalQueryServer(system, lock_timeout_s=0.3) as live:
            with Client("127.0.0.1", live.port) as client:
                client.request({"op": "sql", "sql": self.INSERT,
                                "token": "t-ckpt", "client": "cli-e"})
            system.storage.checkpoint()
        recovered, report = IntensionalQueryProcessor.recover(data_dir)
        assert "cli-e|t-ckpt" in report.dedup_entries
        with IntensionalQueryServer(recovered,
                                    lock_timeout_s=0.3) as live:
            with Client("127.0.0.1", live.port) as client:
                again = client.request({
                    "op": "sql", "sql": self.INSERT,
                    "token": "t-ckpt", "client": "cli-e"})
                assert again.get("deduplicated") is True


# ---------------------------------------------------------------------------
# the retrying client against scripted wire faults


class TestClientRetries:
    def test_dropped_request_is_retried_transparently(self, server):
        schedule = ChaosSchedule(script={0: "drop"})
        client = Client(
            "127.0.0.1", server.port, retry=_fast_retry(),
            wrap_socket=lambda sock: ChaosSocket(sock, schedule),
        ).connect()
        try:
            rows = client.sql("SELECT Name FROM SUBMARINE "
                              "WHERE Class = '1301'")
        finally:
            client.close()
        local = server.system.ask("SELECT Name FROM SUBMARINE "
                                  "WHERE Class = '1301'").extensional
        assert list(rows) == list(local)
        assert client.stats["retries"] == 1
        assert client.stats["reconnects"] == 1

    def test_dropped_reply_dml_applies_exactly_once(self, server):
        # The ambiguous ack: the server fully processed the INSERT but
        # the reply died.  The retry must be served from the dedup
        # table, not re-executed.
        schedule = ChaosSchedule(script={0: "drop_reply"})
        client = Client(
            "127.0.0.1", server.port, retry=_fast_retry(),
            client_id="cli-chaos",
            wrap_socket=lambda sock: ChaosSocket(sock, schedule),
        ).connect()
        try:
            count = client.sql("INSERT INTO SUBMARINE VALUES "
                               "('9920', 'Ambiguous', '1301')")
            assert count == 1
            assert client.stats["deduped"] == 1
            rows = client.sql("SELECT Name FROM SUBMARINE "
                              "WHERE Name = 'Ambiguous'")
        finally:
            client.close()
        assert len(rows) == 1
        assert server.dedup.stats["hits"] >= 1

    def test_no_retry_inside_explicit_transaction(self, tmp_path):
        # Transaction state dies with the session, so a mid-transaction
        # transport fault must surface, not silently reconnect onto a
        # fresh session.
        system = _ship_system()
        system.attach_storage(str(tmp_path / "data"))
        system.storage.checkpoint()
        schedule = ChaosSchedule(script={1: "reset"})
        with IntensionalQueryServer(system, lock_timeout_s=0.3) as live:
            client = Client(
                "127.0.0.1", live.port, retry=_fast_retry(),
                wrap_socket=lambda sock: ChaosSocket(sock, schedule),
            ).connect()
            try:
                client.begin()
                assert client.in_transaction
                with pytest.raises(ServerError):
                    client.sql("SELECT Name FROM SUBMARINE")
                assert client.stats["retries"] == 0
                assert not client.in_transaction
            finally:
                client.close()

    def test_transaction_control_is_never_retried(self):
        client = Client(retry=_fast_retry())
        assert not client._request_retry_safe({"op": "begin"})
        assert not client._request_retry_safe({"op": "commit"})
        assert not client._request_retry_safe({"op": "rollback"})
        assert client._request_retry_safe({"op": "sql",
                                           "sql": "SELECT 1"})
        assert not client._request_retry_safe(
            {"op": "sql", "sql": "DELETE FROM T"})
        assert client._request_retry_safe(
            {"op": "sql", "sql": "DELETE FROM T", "token": "t"})

    def test_backoff_honours_server_hint_and_deadline(self):
        slept = []
        client = Client(retry=_fast_retry(), sleep=slept.append)
        hinted = RetryLater("busy", retry_after_s=0.5)
        client._backoff(0, hinted, None)
        assert slept == [0.5]
        with pytest.raises(DeadlineExceeded, match="retry budget"):
            client._backoff(0, hinted,
                            Deadline.after(0.1))

    def test_breaker_fails_fast_when_server_unreachable(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        breaker = CircuitBreaker(failure_threshold=2,
                                 reset_after_s=60.0)
        client = Client("127.0.0.1", port, breaker=breaker,
                        connect_timeout_s=0.5)
        for _ in range(2):
            with pytest.raises(ServerError):
                client.connect()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpen):
            client.connect()
        assert breaker.stats["fast_failures"] == 1


# ---------------------------------------------------------------------------
# connect timeouts (satellite: a listener that never speaks)


class TestConnectTimeout:
    def test_accepting_but_silent_listener_times_out(self):
        # The TCP handshake succeeds (the connection parks in the
        # listen backlog) but no hello ever arrives: the client must
        # fail with a clear error within connect_timeout_s, not hang.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        try:
            start = time.monotonic()
            with pytest.raises(ProtocolError,
                               match="no handshake") as info:
                Client("127.0.0.1", listener.getsockname()[1],
                       connect_timeout_s=0.3).connect()
            assert time.monotonic() - start < 5.0
            assert "hello" in str(info.value)
        finally:
            listener.close()


# ---------------------------------------------------------------------------
# the idle reaper (satellite: in-flight statements are not idleness)


class TestIdleReaper:
    def test_idle_connection_is_reaped(self):
        with IntensionalQueryServer(_ship_system(), lock_timeout_s=0.3,
                                    idle_timeout_s=0.2) as server:
            client = Client("127.0.0.1", server.port,
                            timeout_s=5.0).connect()
            try:
                assert client.ping() >= 0.0
                time.sleep(0.8)
                with pytest.raises(ServerError):
                    client.ping()
            finally:
                client.close()

    def test_slow_statement_is_not_reaped(self):
        # A statement running longer than the idle window is work, not
        # idleness: the reaper must leave the session alone.
        with IntensionalQueryServer(_ship_system(), lock_timeout_s=2.0,
                                    idle_timeout_s=0.3) as server:
            with Client("127.0.0.1", server.port,
                        timeout_s=10.0) as client:
                calls = {"n": 0}

                def slow(plan, batch):
                    # One long stall mid-statement: ~10 reaper sweeps
                    # (interval 0.075s) pass while the session's wall
                    # clock looks idle far beyond the 0.3s window.
                    if calls["n"] == 0:
                        calls["n"] += 1
                        time.sleep(0.8)

                plans.set_batch_observer(slow)
                try:
                    rows = client.sql("SELECT Name, Class "
                                      "FROM SUBMARINE")
                finally:
                    plans.set_batch_observer(None)
                assert calls["n"] == 1, \
                    "statement never reached the stalled batch"
                assert len(rows) > 0
                # and the session is still alive afterwards
                assert client.ping() >= 0.0


# ---------------------------------------------------------------------------
# observability of the whole ladder


class TestStatusSurface:
    def test_server_status_reports_resilience_state(self, server,
                                                    client):
        import json
        status = json.loads(client.admin("status"))
        assert status["admission"]["max_in_flight"] == 8
        assert status["dedup"]["capacity"] == 4096
        assert status["overloaded"] is False
        assert status["degraded_rules"] is False
        assert status["statement_timeout_s"] == 30.0

    def test_client_resilience_status(self, server):
        client = Client("127.0.0.1", server.port, retry=_fast_retry(),
                        breaker=CircuitBreaker(),
                        client_id="cli-status").connect()
        try:
            client.sql("SELECT Name FROM SUBMARINE")
            status = client.resilience_status()
        finally:
            client.close()
        assert status["client_id"] == "cli-status"
        assert status["retry"] is True
        assert status["requests"] >= 1
        assert status["breaker"]["state"] == "closed"
