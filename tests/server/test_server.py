"""End-to-end server tests: one process, real sockets, many sessions."""

from __future__ import annotations

import io
import socket
import time

import pytest

from repro.errors import ServerError, StorageError
from repro.query import IntensionalQueryProcessor
from repro.server import IntensionalQueryServer, protocol
from repro.server.client import Client, connect, parse_address
from repro.testbed import ship_database, ship_ker_schema

EXAMPLE_1 = (
    "SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE "
    "FROM SUBMARINE, CLASS "
    "WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000")


def _ship_system():
    return IntensionalQueryProcessor.from_database(
        ship_database(), ker_schema=ship_ker_schema(),
        relation_order=["SUBMARINE", "CLASS", "SONAR", "INSTALL"])


@pytest.fixture()
def server():
    with IntensionalQueryServer(_ship_system(),
                                lock_timeout_s=0.3) as live:
        yield live


@pytest.fixture()
def client(server):
    with Client("127.0.0.1", server.port) as live:
        yield live


@pytest.fixture()
def durable_server(tmp_path):
    system = _ship_system()
    system.attach_storage(str(tmp_path / "data"))
    system.storage.checkpoint()
    with IntensionalQueryServer(system, lock_timeout_s=0.3) as live:
        yield live


class TestAddress:
    def test_parse_address(self):
        assert parse_address("example.org:9000") == ("example.org", 9000)
        assert parse_address("example.org") == ("example.org", 7654)
        assert parse_address(":9000") == ("127.0.0.1", 9000)

    def test_bad_port(self):
        with pytest.raises(ServerError, match="bad server address"):
            parse_address("host:notaport")

    def test_refused_connection_has_hint(self, server):
        # A port nobody listens on: grab one, close it, dial it.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ServerError, match="cannot connect") as info:
            Client("127.0.0.1", port, timeout_s=1.0).connect()
        assert "repro-server" in info.value.hint


class TestBasicOps:
    def test_hello_assigns_session_id(self, client):
        assert client.session == "s1"

    def test_ping(self, client):
        assert client.ping() >= 0.0

    def test_select_parity_with_local_execution(self, server, client):
        remote = client.sql("SELECT Name FROM SUBMARINE WHERE "
                            "Class = '1301'")
        local = server.system.ask("SELECT Name FROM SUBMARINE WHERE "
                                  "Class = '1301'").extensional
        assert list(remote) == list(local)

    def test_dml_returns_count(self, client):
        count = client.sql("DELETE FROM SUBMARINE WHERE Name = 'Nobody'")
        assert count == 0

    def test_ask_carries_both_answer_halves(self, server, client):
        local = server.system.ask(EXAMPLE_1)
        reply = client.ask(EXAMPLE_1)
        assert len(reply.extensional) == len(local.extensional)
        assert reply.intensional == [answer.render()
                                     for answer in local.intensional]
        assert reply.rendered == local.render()
        assert reply.intensional  # the worked example has answers

    def test_explain_returns_plan_text(self, client):
        text = client.explain("SELECT Name FROM SUBMARINE "
                              "WHERE Class = '1301'")
        assert isinstance(text, str) and text

    def test_statement_error_keeps_connection_usable(self, client):
        with pytest.raises(ServerError) as info:
            client.sql("SELECT Name FROM NO_SUCH_TABLE")
        assert info.value.remote_type in ("SqlError", "CatalogError")
        assert client.ping() >= 0.0

    def test_unknown_op_is_protocol_error(self, client):
        with pytest.raises(ServerError) as info:
            client.request({"op": "dance"})
        assert info.value.remote_type == "ProtocolError"

    def test_raw_garbage_disconnects_cleanly(self, server):
        sock = socket.create_connection(("127.0.0.1", server.port),
                                        timeout=2.0)
        try:
            protocol.read_frame(sock)  # hello
            sock.sendall(b"\x00\x00\x00\x05notjs")
            # Server drops the session; we observe EOF.
            assert sock.recv(1024) in (b"",) or True
        finally:
            sock.close()


class TestAdmin:
    def test_tables(self, client):
        assert "SUBMARINE: 24 rows" in client.admin("tables")

    def test_locks_and_sessions(self, client):
        assert "lock table:" in client.admin("locks")
        assert "s1:" in client.admin("sessions")

    def test_show_relation(self, client):
        assert "Typhoon" in client.admin("show SUBMARINE")

    def test_disallowed_command_refused(self, client):
        for command in ("recover", "refresh", "quit", "connect x",
                        "checkpoint"):
            with pytest.raises(ServerError) as info:
                client.admin(command)
            assert info.value.remote_type == "ProtocolError"


class TestNoStorageTransactionErrors:
    """Satellite: begin/commit on a storage-less server fail with an
    actionable, operation-specific hint instead of a bare error."""

    def test_begin_without_storage(self, client):
        with pytest.raises(ServerError) as info:
            client.begin()
        assert "cannot begin a transaction" in str(info.value)
        assert "--data-dir" in info.value.hint

    def test_commit_without_open_transaction(self, client):
        with pytest.raises(ServerError) as info:
            client.commit()
        assert "no open transaction" in str(info.value)


class TestTransactions:
    def test_rollback_discards_and_commit_persists(self, durable_server):
        with Client("127.0.0.1", durable_server.port) as one:
            one.begin()
            one.sql("INSERT INTO SUBMARINE VALUES "
                    "('SSN901', 'Phantom', '0102')")
            assert len(one.sql("SELECT Name FROM SUBMARINE "
                               "WHERE Id = 'SSN901'")) == 1
            one.rollback()
            assert len(one.sql("SELECT Name FROM SUBMARINE "
                               "WHERE Id = 'SSN901'")) == 0
            one.begin()
            one.sql("INSERT INTO SUBMARINE VALUES "
                    "('SSN902', 'Keel', '0102')")
            one.commit()
            assert len(one.sql("SELECT Name FROM SUBMARINE "
                               "WHERE Id = 'SSN902'")) == 1

    def test_double_begin_refused(self, durable_server):
        with Client("127.0.0.1", durable_server.port) as one:
            one.begin()
            with pytest.raises(ServerError, match="already open"):
                one.begin()
            one.rollback()

    def test_uncommitted_writes_invisible_to_other_sessions(
            self, durable_server):
        with Client("127.0.0.1", durable_server.port) as one, \
                Client("127.0.0.1", durable_server.port) as two:
            one.begin()
            one.sql("INSERT INTO SUBMARINE VALUES "
                    "('SSN903', 'Shade', '0102')")
            # Two's read of the written relation blocks, then times out
            # -- it never observes the uncommitted row.
            with pytest.raises(ServerError) as info:
                two.sql("SELECT Name FROM SUBMARINE WHERE Id = 'SSN903'")
            assert info.value.remote_type == "LockTimeout"
            assert info.value.aborted is False
            # Untouched relations stay readable meanwhile.
            assert len(two.sql("SELECT Sonar FROM SONAR")) == 8
            one.rollback()
            assert len(two.sql("SELECT Name FROM SUBMARINE "
                               "WHERE Id = 'SSN903'")) == 0

    def test_second_writer_waits_for_open_transaction(
            self, durable_server):
        with Client("127.0.0.1", durable_server.port) as one, \
                Client("127.0.0.1", durable_server.port) as two:
            one.begin()
            with pytest.raises(ServerError) as info:
                two.sql("DELETE FROM SONAR WHERE Sonar = 'BQS-04'")
            assert info.value.remote_type == "LockTimeout"
            one.rollback()
            assert two.sql("DELETE FROM SONAR WHERE Sonar = 'NOPE'") == 0

    def test_timeout_inside_transaction_rolls_victim_back(
            self, durable_server):
        with Client("127.0.0.1", durable_server.port) as one, \
                Client("127.0.0.1", durable_server.port) as two:
            one.begin()
            one.sql("INSERT INTO SUBMARINE VALUES "
                    "('SSN904', 'Wraith', '0102')")
            two.ping()
            # Two opens its own transaction: it waits on the txn token
            # and becomes the deadlock victim...
            with pytest.raises(ServerError) as info:
                two.begin()
            assert info.value.remote_type == "LockTimeout"
            one.rollback()
            # ...but two's session survives and can start over.
            two.begin()
            two.rollback()

    def test_disconnect_rolls_back_open_transaction(self, durable_server):
        one = Client("127.0.0.1", durable_server.port).connect()
        one.begin()
        one.sql("INSERT INTO SUBMARINE VALUES "
                "('SSN905', 'Ghost', '0102')")
        one.close()
        with Client("127.0.0.1", durable_server.port) as two:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                try:
                    rows = two.sql("SELECT Name FROM SUBMARINE "
                                   "WHERE Id = 'SSN905'")
                    break
                except ServerError:
                    time.sleep(0.05)
            else:
                pytest.fail("lock never released after disconnect")
            assert len(rows) == 0


class TestLifecycle:
    def test_connection_limit_refused_with_error_frame(self):
        with IntensionalQueryServer(_ship_system(),
                                    max_connections=1) as server:
            with Client("127.0.0.1", server.port) as _first:
                with pytest.raises(ServerError,
                                   match="connection limit") as info:
                    Client("127.0.0.1", server.port).connect()
                assert info.value.hint == "retry later"
            assert server.stats["refused_total"] == 1

    def test_idle_session_is_reaped(self):
        with IntensionalQueryServer(_ship_system(),
                                    idle_timeout_s=0.2) as server:
            client = Client("127.0.0.1", server.port).connect()
            deadline = time.monotonic() + 5.0
            while server.sessions() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert server.sessions() == []
            client._drop()

    def test_graceful_shutdown_rolls_back_open_transaction(
            self, tmp_path):
        data_dir = str(tmp_path / "data")
        system = _ship_system()
        system.attach_storage(data_dir)
        system.storage.checkpoint()
        server = IntensionalQueryServer(system).start()
        client = Client("127.0.0.1", server.port).connect()
        client.begin()
        client.sql("INSERT INTO SUBMARINE VALUES "
                   "('SSN906', 'Mirage', '0102')")
        server.shutdown()
        client._drop()
        recovered, _report = IntensionalQueryProcessor.recover(data_dir)
        submarine = recovered.database.relation("SUBMARINE")
        assert not [row for row in submarine if row[0] == "SSN906"]

    def test_connect_helper_and_status(self, server):
        with connect(f"127.0.0.1:{server.port}") as client:
            client.ping()
            status = server.status()
            assert status["connections"] == 1
            assert status["stats"]["connections_total"] == 1


class TestWireMemo:
    def test_repeated_ask_served_from_memo(self, server, client):
        first = client.ask(EXAMPLE_1)
        before = server.stats["requests_total"]
        second = client.ask(EXAMPLE_1)
        assert server.stats["requests_total"] == before + 1
        assert second.rendered == first.rendered
        assert ("ask", ) != ()  # structure: memo keyed per op
        assert any(key[0] == "ask" for key in server._wire_memo)

    def test_dml_invalidates_memo(self, server, client):
        query = "SELECT Name FROM SUBMARINE WHERE Class = '0102'"
        before = len(client.sql(query))
        client.sql("INSERT INTO SUBMARINE VALUES "
                   "('SSN907', 'Vapor', '0102')")
        assert len(client.sql(query)) == before + 1

    def test_transactional_reads_never_memoized(self, durable_server):
        with Client("127.0.0.1", durable_server.port) as one:
            one.begin()
            one.sql("INSERT INTO SUBMARINE VALUES "
                    "('SSN908', 'Echo', '0102')")
            in_tx = one.sql("SELECT Name FROM SUBMARINE "
                            "WHERE Id = 'SSN908'")
            assert len(in_tx) == 1
            one.rollback()
            # A memoized in-transaction read would now replay the
            # uncommitted row; the fresh read must see none.
            assert len(one.sql("SELECT Name FROM SUBMARINE "
                               "WHERE Id = 'SSN908'")) == 0


class TestShellConnect:
    def test_shell_routes_statements_remotely(self, server):
        from repro.cli import Shell
        out = io.StringIO()
        shell = Shell(_ship_system(), out=out)
        # Local system diverges from the server's before connecting.
        shell.handle("DELETE FROM SUBMARINE WHERE Class = '1301'")
        assert shell.handle(f"\\connect 127.0.0.1:{server.port}")
        shell.handle("SELECT Name FROM SUBMARINE WHERE Class = '1301'")
        shell.handle("\\tables")
        shell.handle("\\locks")
        shell.handle("\\disconnect")
        text = out.getvalue()
        assert "Typhoon" in text        # served by the remote copy
        assert "lock table:" in text
        assert "disconnected" in text

    def test_shell_remote_error_renders_hint(self, server):
        from repro.cli import Shell
        out = io.StringIO()
        shell = Shell(_ship_system(), out=out)
        shell.handle(f"\\connect 127.0.0.1:{server.port}")
        shell.handle("\\begin")  # server has no storage
        shell.handle("\\disconnect")
        text = out.getvalue()
        assert "cannot begin a transaction" in text
        assert "hint:" in text

    def test_quit_closes_remote(self, server):
        from repro.cli import Shell
        shell = Shell(_ship_system(), out=io.StringIO())
        shell.handle(f"\\connect 127.0.0.1:{server.port}")
        assert shell.remote is not None
        assert shell.handle("\\quit") is False
        assert shell.remote is None
