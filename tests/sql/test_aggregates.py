"""Unit tests for SQL aggregates and GROUP BY."""

import pytest

from repro.errors import SqlError
from repro.sql import execute_sql


class TestGlobalAggregates:
    def test_count_star(self, ship_db):
        out = execute_sql(ship_db, "SELECT COUNT(*) FROM SUBMARINE")
        assert out.rows == [(24,)]
        assert out.schema.column_names() == ["count"]

    def test_count_column(self, ship_db):
        out = execute_sql(ship_db, "SELECT COUNT(Type) FROM CLASS")
        assert out.rows == [(13,)]

    def test_count_distinct(self, ship_db):
        out = execute_sql(ship_db,
                          "SELECT COUNT(DISTINCT Type) FROM CLASS")
        assert out.rows == [(2,)]

    def test_min_max_sum_avg(self, ship_db):
        out = execute_sql(ship_db, (
            "SELECT MIN(Displacement) lo, MAX(Displacement) hi, "
            "SUM(Displacement) s, AVG(Displacement) a FROM CLASS"))
        lo, hi, total, mean = out.rows[0]
        assert (lo, hi) == (2145, 30000)
        assert total == 99494.0
        assert mean == pytest.approx(99494 / 13)

    def test_aggregate_with_where(self, ship_db):
        out = execute_sql(ship_db, (
            "SELECT COUNT(*), MAX(Displacement) FROM CLASS "
            "WHERE Type = 'SSBN'"))
        assert out.rows == [(4, 30000)]

    def test_empty_input_single_row(self, ship_db):
        out = execute_sql(ship_db, (
            "SELECT COUNT(*), MIN(Displacement) FROM CLASS "
            "WHERE Type = 'XX'"))
        assert out.rows == [(0, None)]

    def test_aggregate_over_join(self, ship_db):
        out = execute_sql(ship_db, (
            "SELECT COUNT(*) FROM SUBMARINE, INSTALL "
            "WHERE SUBMARINE.Id = INSTALL.Ship "
            "AND INSTALL.Sonar = 'BQS-04'"))
        assert out.rows == [(4,)]


class TestGroupBy:
    def test_group_counts(self, ship_db):
        out = execute_sql(ship_db, (
            "SELECT Type, COUNT(*) FROM CLASS GROUP BY Type"))
        counts = {row[0]: row[1] for row in out}
        assert counts == {"SSBN": 4, "SSN": 9}

    def test_group_ranges_reproduce_characteristics(self, ship_db):
        """GROUP BY recovers the classification characteristics the
        paper's Table 1 tabulates."""
        out = execute_sql(ship_db, (
            "SELECT Type, MIN(Displacement), MAX(Displacement) "
            "FROM CLASS GROUP BY Type"))
        spans = {row[0]: (row[1], row[2]) for row in out}
        assert spans["SSN"] == (2145, 6955)
        assert spans["SSBN"] == (7250, 30000)

    def test_group_by_with_join(self, ship_db):
        out = execute_sql(ship_db, (
            "SELECT SONAR.SonarType, COUNT(*) "
            "FROM INSTALL, SONAR "
            "WHERE INSTALL.Sonar = SONAR.Sonar "
            "GROUP BY SONAR.SonarType"))
        counts = {row[0]: row[1] for row in out}
        assert counts == {"BQQ": 14, "BQS": 9, "TACTAS": 1}

    def test_order_by_group_key(self, ship_db):
        out = execute_sql(ship_db, (
            "SELECT Type, COUNT(*) FROM CLASS GROUP BY Type "
            "ORDER BY Type"))
        assert [row[0] for row in out] == ["SSBN", "SSN"]

    def test_group_key_alias(self, ship_db):
        out = execute_sql(ship_db, (
            "SELECT Type AS t, COUNT(*) AS n FROM CLASS GROUP BY Type"))
        assert out.schema.column_names() == ["t", "n"]

    def test_types(self, ship_db):
        out = execute_sql(ship_db, (
            "SELECT Type, COUNT(*), MAX(Displacement), AVG(Displacement) "
            "FROM CLASS GROUP BY Type"))
        assert out.schema.columns[1].datatype.name == "integer"
        assert out.schema.columns[2].datatype.name == "integer"
        assert out.schema.columns[3].datatype.name == "real"


class TestErrors:
    def test_bare_column_without_group_by(self, ship_db):
        with pytest.raises(SqlError, match="GROUP BY"):
            execute_sql(ship_db, "SELECT Type, COUNT(*) FROM CLASS")

    def test_star_with_aggregates(self, ship_db):
        with pytest.raises(SqlError, match=r"SELECT \*"):
            execute_sql(ship_db,
                        "SELECT * FROM CLASS GROUP BY Type")

    def test_min_star_rejected(self, ship_db):
        from repro.errors import ParseError
        with pytest.raises(ParseError, match="COUNT"):
            execute_sql(ship_db, "SELECT MIN(*) FROM CLASS")

    def test_unknown_column_in_aggregate(self, ship_db):
        with pytest.raises(SqlError):
            execute_sql(ship_db, "SELECT COUNT(Bogus) FROM CLASS")

    def test_render_roundtrip(self, ship_db):
        from repro.sql import parse_select
        text = ("SELECT Type, COUNT(DISTINCT ClassName) FROM CLASS "
                "GROUP BY Type ORDER BY Type")
        stmt = parse_select(text)
        assert parse_select(stmt.render()).render() == stmt.render()
