"""Unit tests for SQL DML (INSERT / DELETE / UPDATE)."""

import pytest

from repro.errors import ParseError, SqlError
from repro.relational import Database, INTEGER, char
from repro.sql import execute_statement, parse_statement
from repro.sql import ast


@pytest.fixture()
def db():
    database = Database()
    database.create("EMP",
                    [("Name", char(10)), ("Dept", char(4)),
                     ("Salary", INTEGER)],
                    rows=[("ann", "eng", 100), ("bob", "eng", 110),
                          ("cat", "ops", 90)])
    return database


class TestParsing:
    def test_insert_with_columns(self):
        statement = parse_statement(
            "INSERT INTO EMP (Name, Salary) VALUES ('dee', 120)")
        assert isinstance(statement, ast.InsertStmt)
        assert statement.columns == ("Name", "Salary")

    def test_insert_multi_row(self):
        statement = parse_statement(
            "INSERT INTO T VALUES (1, 'a'), (2, 'b')")
        assert len(statement.rows) == 2

    def test_delete(self):
        statement = parse_statement("DELETE FROM EMP WHERE Salary < 100")
        assert isinstance(statement, ast.DeleteStmt)

    def test_update(self):
        statement = parse_statement(
            "UPDATE EMP SET Salary = Salary + 5 WHERE Dept = 'eng'")
        assert isinstance(statement, ast.UpdateStmt)
        assert statement.assignments[0][0] == "Salary"

    def test_render_roundtrips(self):
        for text in (
                "INSERT INTO T (A, B) VALUES (1, \"x\")",
                "DELETE FROM T WHERE A = 1",
                "UPDATE T SET A = 2 WHERE B = \"x\""):
            statement = parse_statement(text)
            again = parse_statement(statement.render())
            assert again.render() == statement.render()

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("FROB THE DATABASE")

    def test_parse_select_rejects_dml(self):
        from repro.sql import parse_select
        with pytest.raises(ParseError, match="SELECT"):
            parse_select("DELETE FROM T")


class TestInsert:
    def test_positional(self, db):
        count = execute_statement(
            db, "INSERT INTO EMP VALUES ('dee', 'mkt', 95)")
        assert count == 1
        assert ("dee", "mkt", 95) in db.relation("EMP").rows

    def test_with_column_list_fills_nulls(self, db):
        execute_statement(
            db, "INSERT INTO EMP (Name) VALUES ('eve')")
        assert ("eve", None, None) in db.relation("EMP").rows

    def test_multi_row(self, db):
        count = execute_statement(
            db, "INSERT INTO EMP VALUES ('f', 'x', 1), ('g', 'y', 2)")
        assert count == 2
        assert len(db.relation("EMP")) == 5

    def test_null_literal(self, db):
        execute_statement(
            db, "INSERT INTO EMP VALUES ('h', NULL, NULL)")
        assert ("h", None, None) in db.relation("EMP").rows

    def test_arity_mismatch(self, db):
        with pytest.raises(SqlError, match="expects 3"):
            execute_statement(db, "INSERT INTO EMP VALUES ('x')")

    def test_unknown_column(self, db):
        with pytest.raises(Exception):
            execute_statement(
                db, "INSERT INTO EMP (Bogus) VALUES (1)")

    def test_non_constant_rejected(self, db):
        with pytest.raises(SqlError, match="constant"):
            execute_statement(
                db, "INSERT INTO EMP VALUES (Name, 'x', 1)")

    def test_constant_arithmetic_allowed(self, db):
        execute_statement(
            db, "INSERT INTO EMP VALUES ('i', 'z', 50 + 25)")
        assert ("i", "z", 75) in db.relation("EMP").rows


class TestDelete:
    def test_with_where(self, db):
        count = execute_statement(
            db, "DELETE FROM EMP WHERE Dept = 'eng'")
        assert count == 2
        assert len(db.relation("EMP")) == 1

    def test_without_where(self, db):
        count = execute_statement(db, "DELETE FROM EMP")
        assert count == 3
        assert len(db.relation("EMP")) == 0

    def test_no_match(self, db):
        assert execute_statement(
            db, "DELETE FROM EMP WHERE Salary > 9999") == 0


class TestUpdate:
    def test_conditional(self, db):
        count = execute_statement(
            db, "UPDATE EMP SET Salary = Salary + 10 "
                "WHERE Dept = 'eng'")
        assert count == 2
        emp = db.relation("EMP")
        salaries = dict(zip(emp.column_values("Name"),
                            emp.column_values("Salary")))
        assert salaries == {"ann": 110, "bob": 120, "cat": 90}

    def test_unconditional(self, db):
        count = execute_statement(db, "UPDATE EMP SET Dept = 'all'")
        assert count == 3
        assert set(db.relation("EMP").column_values("Dept")) == {"all"}

    def test_multiple_assignments(self, db):
        execute_statement(
            db, "UPDATE EMP SET Dept = 'hq', Salary = 0 "
                "WHERE Name = 'ann'")
        assert ("ann", "hq", 0) in db.relation("EMP").rows

    def test_set_null(self, db):
        execute_statement(
            db, "UPDATE EMP SET Salary = NULL WHERE Name = 'cat'")
        assert ("cat", "ops", None) in db.relation("EMP").rows

    def test_unknown_column(self, db):
        with pytest.raises(Exception):
            execute_statement(db, "UPDATE EMP SET Bogus = 1")

    def test_type_checked(self, db):
        from repro.errors import TypeMismatchError
        with pytest.raises(TypeMismatchError):
            execute_statement(
                db, "UPDATE EMP SET Salary = 'lots'")


class TestStatementDispatch:
    def test_select_returns_relation(self, db):
        result = execute_statement(db, "SELECT Name FROM EMP")
        assert len(result) == 3

    def test_cli_handles_dml(self, db):
        import io
        from repro.cli import Shell
        from repro.query import IntensionalQueryProcessor
        from repro.rules.ruleset import RuleSet

        shell = Shell(IntensionalQueryProcessor(db, RuleSet()),
                      out=io.StringIO())
        shell.handle("UPDATE EMP SET Salary = 1 WHERE Name = 'ann'")
        assert "1 rows affected" in shell.out.getvalue()
