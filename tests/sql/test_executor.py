"""Unit tests for the SQL executor (using the ship database)."""

import pytest

from repro.errors import SqlError
from repro.relational import Database, INTEGER, char
from repro.sql import execute_sql


@pytest.fixture()
def db(ship_db):
    return ship_db


class TestSingleTable:
    def test_projection(self, db):
        out = execute_sql(db, "SELECT Id FROM SUBMARINE")
        assert len(out) == 24
        assert out.schema.column_names() == ["Id"]

    def test_star(self, db):
        out = execute_sql(db, "SELECT * FROM TYPE")
        assert out.schema.column_names() == ["Type", "TypeName"]
        assert len(out) == 2

    def test_filter(self, db):
        out = execute_sql(
            db, "SELECT Class FROM CLASS WHERE Displacement >= 7250")
        assert sorted(row[0] for row in out) == [
            "0101", "0102", "0103", "1301"]

    def test_distinct(self, db):
        out = execute_sql(db, "SELECT DISTINCT SonarType FROM SONAR")
        assert len(out) == 3

    def test_order_by(self, db):
        out = execute_sql(
            db, "SELECT Class FROM CLASS ORDER BY Displacement")
        assert out.rows[0] == ("0215",)
        assert out.rows[-1] == ("1301",)

    def test_string_range_condition(self, db):
        out = execute_sql(
            db, "SELECT Sonar FROM SONAR "
                "WHERE Sonar BETWEEN 'BQQ-2' AND 'BQQ-8'")
        assert len(out) == 3

    def test_or_condition(self, db):
        out = execute_sql(
            db, "SELECT Class FROM CLASS "
                "WHERE Class = '0101' OR Class = '1301'")
        assert len(out) == 2


class TestJoins:
    def test_two_way_join(self, db):
        out = execute_sql(db, (
            "SELECT SUBMARINE.Name, CLASS.Type FROM SUBMARINE, CLASS "
            "WHERE SUBMARINE.Class = CLASS.Class"))
        assert len(out) == 24

    def test_three_way_join(self, db):
        out = execute_sql(db, (
            "SELECT SUBMARINE.Name FROM SUBMARINE, CLASS, INSTALL "
            "WHERE SUBMARINE.Class = CLASS.Class "
            "AND SUBMARINE.Id = INSTALL.Ship "
            "AND INSTALL.Sonar = 'BQS-04'"))
        assert {row[0] for row in out} == {
            "Bonefish", "Seadragon", "Snook", "Robert E. Lee"}

    def test_alias_join(self, db):
        out = execute_sql(db, (
            "SELECT s.Name FROM SUBMARINE s, CLASS c "
            "WHERE s.Class = c.Class AND c.Type = 'SSBN'"))
        assert len(out) == 7

    def test_cross_product_when_no_join(self, db):
        out = execute_sql(db, "SELECT TYPE.Type FROM TYPE, SONAR")
        assert len(out) == 16

    def test_residual_predicate(self, db):
        out = execute_sql(db, (
            "SELECT c1.Class FROM CLASS c1, CLASS c2 "
            "WHERE c1.Displacement < c2.Displacement "
            "AND c2.Class = '0215'"))
        assert len(out) == 0  # 0215 is the smallest displacement

    def test_self_join(self, db):
        out = execute_sql(db, (
            "SELECT c1.Class, c2.Class FROM CLASS c1, CLASS c2 "
            "WHERE c1.Displacement = c2.Displacement "
            "AND c1.Class < c2.Class"))
        assert out.rows == [("0102", "0103")]  # the two 7250s


class TestOutputShaping:
    def test_duplicate_names_suffixed(self, db):
        out = execute_sql(db, (
            "SELECT SUBMARINE.Class, CLASS.Class FROM SUBMARINE, CLASS "
            "WHERE SUBMARINE.Class = CLASS.Class"))
        assert out.schema.column_names() == ["Class", "Class_2"]

    def test_alias_output(self, db):
        out = execute_sql(
            db, "SELECT Displacement AS Tons FROM CLASS")
        assert out.schema.column_names() == ["Tons"]

    def test_expression_output(self, db):
        out = execute_sql(
            db, "SELECT Displacement * 2 FROM CLASS WHERE Class = '0101'")
        assert out.rows == [(33200,)]

    def test_types_preserved(self, db):
        out = execute_sql(db, "SELECT Displacement FROM CLASS")
        assert out.schema.column("Displacement").datatype == INTEGER


class TestErrors:
    def test_unknown_table(self, db):
        with pytest.raises(Exception):
            execute_sql(db, "SELECT A FROM NOPE")

    def test_unknown_alias(self, db):
        with pytest.raises(SqlError, match="unknown table or alias"):
            execute_sql(db, "SELECT zz.A FROM SUBMARINE")

    def test_unknown_column(self, db):
        with pytest.raises(SqlError, match="no column"):
            execute_sql(db, "SELECT SUBMARINE.Bogus FROM SUBMARINE")

    def test_ambiguous_column(self, db):
        with pytest.raises(SqlError, match="ambiguous"):
            execute_sql(db, "SELECT Class FROM SUBMARINE, CLASS")

    def test_duplicate_binding(self, db):
        with pytest.raises(SqlError, match="duplicate"):
            execute_sql(db, "SELECT x.Id FROM SUBMARINE x, CLASS x")


class TestPaperExamples:
    def test_example_1_rows(self, db):
        out = execute_sql(db, (
            "SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, "
            "CLASS.TYPE FROM SUBMARINE, CLASS "
            "WHERE SUBMARINE.CLASS = CLASS.CLASS "
            "AND CLASS.DISPLACEMENT > 8000"))
        assert sorted(out.rows) == [
            ("SSBN130", "Typhoon", "1301", "SSBN"),
            ("SSBN730", "Rhode Island", "0101", "SSBN")]

    def test_example_2_rows(self, db):
        out = execute_sql(db, (
            "SELECT SUBMARINE.NAME, SUBMARINE.CLASS FROM SUBMARINE, CLASS "
            "WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = 'SSBN'"))
        assert len(out) == 7

    def test_example_3_rows(self, db):
        out = execute_sql(db, (
            "SELECT SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE "
            "FROM SUBMARINE, CLASS, INSTALL "
            "WHERE SUBMARINE.CLASS = CLASS.CLASS "
            "AND SUBMARINE.ID = INSTALL.SHIP "
            "AND INSTALL.SONAR = 'BQS-04'"))
        assert sorted(out.rows) == [
            ("Bonefish", "0215", "SSN"),
            ("Robert E. Lee", "0208", "SSN"),
            ("Seadragon", "0212", "SSN"),
            ("Snook", "0209", "SSN")]
