"""Unit tests for IS NULL / IS NOT NULL."""

import pytest

from repro.relational import Database, INTEGER, char
from repro.relational.expressions import IsNull
from repro.sql import execute_sql, execute_statement, parse_select


@pytest.fixture()
def db():
    database = Database()
    database.create("T", [("A", char(4)), ("N", INTEGER)],
                    rows=[("x", 1), ("y", None), (None, 3)])
    return database


class TestParsing:
    def test_is_null(self):
        stmt = parse_select("SELECT A FROM T WHERE N IS NULL")
        assert isinstance(stmt.where, IsNull)
        assert not stmt.where.negated

    def test_is_not_null(self):
        stmt = parse_select("SELECT A FROM T WHERE N IS NOT NULL")
        assert stmt.where.negated

    def test_render_roundtrip(self):
        text = "SELECT A FROM T WHERE N IS NOT NULL"
        stmt = parse_select(text)
        assert parse_select(stmt.render()).render() == stmt.render()


class TestExecution:
    def test_is_null(self, db):
        out = execute_sql(db, "SELECT A FROM T WHERE N IS NULL")
        assert out.rows == [("y",)]

    def test_is_not_null(self, db):
        out = execute_sql(db, "SELECT N FROM T WHERE A IS NOT NULL")
        assert sorted(row[0] for row in out if row[0] is not None) == [1]

    def test_conjunction(self, db):
        out = execute_sql(
            db, "SELECT A FROM T WHERE N IS NOT NULL AND A IS NOT NULL")
        assert out.rows == [("x",)]

    def test_in_update(self, db):
        count = execute_statement(
            db, "UPDATE T SET N = 0 WHERE N IS NULL")
        assert count == 1
        assert ("y", 0) in db.relation("T").rows

    def test_in_delete(self, db):
        count = execute_statement(db, "DELETE FROM T WHERE A IS NULL")
        assert count == 1

    def test_unused_by_inference(self, ship_db):
        from repro.query import extract_conditions
        out = extract_conditions(ship_db, parse_select(
            "SELECT Class FROM CLASS WHERE Type IS NOT NULL"))
        assert not out.clauses
        assert len(out.unused) == 1
