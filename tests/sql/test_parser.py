"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.relational.expressions import (
    And, ColumnRef, Comparison, Literal, Not, Or,
)
from repro.sql import parse_select


class TestSelectList:
    def test_qualified_columns(self):
        stmt = parse_select(
            "SELECT SUBMARINE.ID, CLASS.TYPE FROM SUBMARINE, CLASS")
        assert [item.expression.render() for item in stmt.items] == [
            "SUBMARINE.ID", "CLASS.TYPE"]

    def test_star(self):
        stmt = parse_select("SELECT * FROM T")
        assert stmt.star
        assert not stmt.items

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT A FROM T").distinct

    def test_as_alias(self):
        stmt = parse_select("SELECT A AS x FROM T")
        assert stmt.items[0].alias == "x"

    def test_implicit_alias(self):
        stmt = parse_select("SELECT A x FROM T")
        assert stmt.items[0].alias == "x"

    def test_expression_item(self):
        stmt = parse_select("SELECT A + 1 FROM T")
        assert stmt.items[0].expression.render() == "(A + 1)"


class TestFrom:
    def test_table_alias(self):
        stmt = parse_select("SELECT s.A FROM SUBMARINE s")
        assert stmt.tables[0].alias == "s"
        assert stmt.tables[0].binding == "s"

    def test_multiple_tables(self):
        stmt = parse_select("SELECT A FROM T, U, V")
        assert len(stmt.tables) == 3

    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse_select("SELECT A")


class TestWhere:
    def test_conjunction(self):
        stmt = parse_select(
            "SELECT A FROM T WHERE A = 1 AND B > 2 AND C < 3")
        assert isinstance(stmt.where, And)
        assert len(stmt.where.parts) == 3

    def test_disjunction_precedence(self):
        stmt = parse_select("SELECT A FROM T WHERE A = 1 OR B = 2 AND C = 3")
        assert isinstance(stmt.where, Or)
        assert isinstance(stmt.where.parts[1], And)

    def test_not(self):
        stmt = parse_select("SELECT A FROM T WHERE NOT A = 1")
        assert isinstance(stmt.where, Not)

    def test_between_desugars(self):
        stmt = parse_select("SELECT A FROM T WHERE A BETWEEN 1 AND 5")
        assert isinstance(stmt.where, And)
        assert stmt.where.parts[0].op == ">="
        assert stmt.where.parts[1].op == "<="

    def test_in_desugars(self):
        stmt = parse_select("SELECT A FROM T WHERE A IN (1, 2, 3)")
        assert isinstance(stmt.where, Or)
        assert all(part.op == "=" for part in stmt.where.parts)

    def test_string_literals_double_and_single(self):
        stmt = parse_select("SELECT A FROM T WHERE B = \"x\" AND C = 'y'")
        assert stmt.where.parts[0].right == Literal("x")
        assert stmt.where.parts[1].right == Literal("y")

    def test_not_equal_spellings(self):
        for spelling in ("!=", "<>"):
            stmt = parse_select(f"SELECT A FROM T WHERE B {spelling} 1")
            assert stmt.where.op == "!="

    def test_parenthesized_qualification(self):
        stmt = parse_select(
            "SELECT A FROM T WHERE (B = 1 OR C = 2) AND D = 3")
        assert isinstance(stmt.where, And)


class TestOrderBy:
    def test_order_by(self):
        stmt = parse_select("SELECT A FROM T ORDER BY A, B")
        assert [k.render() for k in stmt.order_by] == ["A", "B"]

    def test_order_by_asc_noise(self):
        stmt = parse_select("SELECT A FROM T ORDER BY A ASC")
        assert len(stmt.order_by) == 1


class TestMisc:
    def test_trailing_semicolon(self):
        parse_select("SELECT A FROM T;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_select("SELECT A FROM T SELECT")

    def test_case_insensitive_keywords(self):
        parse_select("select a from t where b = 1 order by a")

    def test_render_roundtrip(self):
        text = ('SELECT DISTINCT T.A, U.B FROM T, U '
                'WHERE T.K = U.K AND T.A > 5 ORDER BY T.A')
        stmt = parse_select(text)
        again = parse_select(stmt.render())
        assert again.render() == stmt.render()
