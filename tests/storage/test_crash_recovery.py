"""Crash-recovery property suite.

The harness runs a scripted workload once under :class:`CountingOps` to
enumerate every file-system operation, then re-runs it once per
``(operation index, partial-write fraction)`` pair under a
:class:`FaultInjector` that kills the process at exactly that point.
Every scenario must recover to a *committed prefix*: the database state
after some prefix of the committed transactions, never a torn or merged
state, and never missing a transaction whose commit had already been
acknowledged.

The deterministic sweeps below generate well over 200 crash scenarios
spanning WAL appends, WAL fsyncs, snapshot writes, snapshot fsyncs,
checkpoint renames and WAL rotation; a hypothesis layer adds randomized
workload shapes on top.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.database import Database
from repro.relational.datatypes import INTEGER, char
from repro.storage import (
    CountingOps, FaultInjector, InjectedCrash, StorageEngine,
)

#: Partial-write fractions: nothing written, torn records of several
#: lengths (group commit writes whole transactions as one batch, so
#: intermediate fractions land in different records of the batch), and
#: a complete write whose fsync/acknowledgement was lost.
FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Denser grid for the sparser rules workload, whose group-committed
#: batches leave fewer fault-injection points to enumerate.
DENSE_FRACTIONS = (0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9, 1.0)


def db_state(database):
    """Canonical comparable snapshot of every relation's rows."""
    return tuple(sorted((relation.name, tuple(relation.rows))
                        for relation in database.catalog))


class Script:
    """Collects the committed-state timeline of a fault-free run and
    the acknowledged-commit count of a faulty one."""

    def __init__(self):
        self.states = []
        self.acked = 0

    def mark(self, database):
        self.states.append(db_state(database))
        self.acked += 1


def run_to_crash(workload, data_dir, ops):
    """Run *workload* until it finishes or the injector kills it;
    returns the script with ``acked`` set to the commits that were
    acknowledged before death."""
    script = Script()
    try:
        workload(data_dir, ops, script)
    except InjectedCrash:
        pass
    return script


def assert_committed_prefix(data_dir, reference_states, acked):
    """Recovery must land exactly on a committed prefix, at least as
    long as the acknowledged one."""
    engine, report = StorageEngine.recover(data_dir)
    try:
        state = db_state(engine.database)
        matches = [index for index, expected
                   in enumerate(reference_states) if expected == state]
        assert matches, (
            f"recovered state is not any committed prefix: {state!r}")
        assert max(matches) >= acked - 1, (
            f"recovery lost acknowledged commit(s): recovered prefix "
            f"{matches}, acknowledged {acked}")
    finally:
        engine.wal.close()
    return engine, report


def sweep(workload, tmp_path, fractions=FRACTIONS, check=None):
    """Enumerate every crash point of *workload* and verify recovery.

    Returns the number of crash scenarios executed.
    """
    counter = CountingOps()
    baseline_dir = str(tmp_path / "baseline")
    baseline = Script()
    workload(baseline_dir, counter, baseline)
    assert counter.count > 0
    # The fault-free run itself must recover to its final state.
    assert_committed_prefix(baseline_dir, baseline.states,
                            baseline.acked)
    scenarios = 0
    for crash_at in range(counter.count):
        for fraction in fractions:
            scenarios += 1
            data_dir = str(tmp_path / f"crash-{crash_at}-{fraction}")
            injector = FaultInjector(crash_at, fraction)
            script = run_to_crash(workload, data_dir, injector)
            assert injector.dead, "injector never fired"
            engine, report = assert_committed_prefix(
                data_dir, baseline.states, script.acked)
            if check is not None:
                check(engine, report, script)
    return scenarios, counter.kinds


# -- workloads --------------------------------------------------------------


def data_workload(data_dir, ops, script):
    """DML-heavy: autocommits, explicit transactions, a rollback, and
    two checkpoints so crash points cover snapshot machinery too."""
    database = Database("w")
    engine = StorageEngine(database, data_dir, file_ops=ops)
    script.mark(database)  # the empty pre-create state is a valid prefix
    try:
        relation = database.create(
            "T", [("A", INTEGER), ("B", char(4))],
            [(1, "one"), (2, "two")])
        script.mark(database)
        relation.insert((10, "ten"))
        script.mark(database)
        relation.insert((11, "elf"))
        script.mark(database)
        engine.begin()
        relation.insert((12, "doce"))
        relation.insert((13, "tred"))
        engine.commit()
        script.mark(database)
        engine.checkpoint()
        relation.insert((14, "quat"))
        script.mark(database)
        relation.delete_where(lambda row: row[0] == 10)
        script.mark(database)
        engine.begin()
        relation.insert((99, "nope"))
        engine.rollback()  # must never surface in any recovery
        relation.replace_where(lambda row: row[0] == 11,
                               lambda row: (21, "xxi"))
        script.mark(database)
        engine.checkpoint()
        relation.insert((16, "sixt"))
        script.mark(database)
    finally:
        engine.wal.close()


def rules_workload(data_dir, ops, script):
    """Rule-base lifecycle: store rules, invalidate them with data
    churn, checkpoint, re-induce.  Used to prove the rule base is never
    newer than the data it was induced from."""
    from repro.rules.clause import AttributeRef, Clause, Interval
    from repro.rules.rule import Rule
    from repro.rules.rule_relations import encode_rule_relations
    from repro.rules.ruleset import RuleSet

    def store(engine, high):
        ruleset = RuleSet()
        ruleset.add(Rule(
            [Clause(AttributeRef("T", "A"), Interval(1, high))],
            Clause(AttributeRef("T", "B"), Interval("lo", "lo"))))
        with engine.transaction():
            encode_rule_relations(ruleset).register_into(
                engine.database, replace=True)
            engine.mark_rules_current()

    database = Database("w")
    engine = StorageEngine(database, data_dir, file_ops=ops)
    script.mark(database)
    sync_states = []
    try:
        relation = database.create(
            "T", [("A", INTEGER), ("B", char(4))],
            [(1, "lo"), (2, "lo")])
        script.mark(database)
        store(engine, high=2)
        script.mark(database)
        sync_states.append(db_state(database))
        relation.insert((7, "hi"))  # rules now stale
        script.mark(database)
        engine.checkpoint()
        store(engine, high=7)  # re-induced: fresh again
        script.mark(database)
        sync_states.append(db_state(database))
        relation.insert((8, "hi"))  # stale once more
        script.mark(database)
    finally:
        engine.wal.close()
    return sync_states


# -- deterministic sweeps ---------------------------------------------------


class TestDeterministicSweeps:
    def test_data_workload_every_crash_point(self, tmp_path):
        scenarios, kinds = sweep(data_workload, tmp_path)
        assert scenarios >= 100
        # The sweep must actually cover every fault class the issue
        # names: WAL append/fsync, checkpoint write and rename.
        for kind in ("wal_append", "wal_fsync", "snapshot_write",
                     "snapshot_fsync", "snapshot_rename", "wal_rotate"):
            assert kind in kinds, f"no crash point exercised {kind}"

    def test_rules_workload_every_crash_point(self, tmp_path):
        baseline_syncs = []

        def remember_baseline(data_dir, ops, script):
            # Crashing runs raise out of rules_workload before reaching
            # the update, so only the fault-free baseline lands here.
            syncs = rules_workload(data_dir, ops, script)
            baseline_syncs.clear()
            baseline_syncs.extend(syncs)

        def check(engine, report, script):
            # Rule base never newer than data: fresh rules imply the
            # recovered data is EXACTLY a rule-sync state; anything
            # else must be flagged stale (degrading ask() to
            # extensional-only) or have no rules at all.
            state = db_state(engine.database)
            if engine.has_rules and not engine.rules_stale:
                assert state in baseline_syncs, (
                    "recovery produced fresh rules over data that was "
                    "never their induction input")
            if engine.has_rules:
                assert report.has_rules

        scenarios, kinds = sweep(remember_baseline, tmp_path,
                                 fractions=DENSE_FRACTIONS, check=check)
        assert scenarios >= 100
        assert "snapshot_rename" in kinds

    def test_total_scenarios_meet_floor(self, tmp_path):
        """The two sweeps together must clear the 200-scenario floor
        demanded by the acceptance criteria."""
        first, _ = sweep(data_workload, tmp_path / "a")

        def wrapped(data_dir, ops, script):
            rules_workload(data_dir, ops, script)

        second, _ = sweep(wrapped, tmp_path / "b",
                          fractions=DENSE_FRACTIONS)
        assert first + second >= 200


# -- end-to-end: crash anywhere, ask() is never silently wrong --------------


class TestEndToEndIntensional:
    """Sweep every crash point of a full induce-checkpoint-mutate run on
    the paper's ship database, then *ask a real query* after recovery.

    The invariant under test is the issue's headline guarantee: after
    any crash, intensional answers are either exactly the ones a fresh
    induction would give, or suppressed with a staleness warning --
    never silently derived from rules that no longer match the data."""

    QUERY = ("SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, "
             "CLASS.TYPE FROM SUBMARINE, CLASS "
             "WHERE SUBMARINE.CLASS = CLASS.CLASS "
             "AND CLASS.DISPLACEMENT > 8000")

    @staticmethod
    def _workload(data_dir, ops, mutate):
        from repro.induction import (
            InductionConfig, InductiveLearningSubsystem,
        )
        from repro.ker import SchemaBinding
        from repro.testbed import ship_database, ship_ker_schema

        database = ship_database()
        engine = StorageEngine(database, data_dir, file_ops=ops)
        try:
            binding = SchemaBinding(ship_ker_schema(), database)
            ils = InductiveLearningSubsystem(
                binding, InductionConfig(n_c=3),
                relation_order=["SUBMARINE", "CLASS", "SONAR",
                                "INSTALL"])
            ils.induce_and_store()
            engine.checkpoint()
            if mutate:
                database.relation("SONAR").clear()  # rules now stale
        finally:
            engine.wal.close()

    def test_recovered_answers_fresh_or_suppressed(self, tmp_path):
        from repro.query import IntensionalQueryProcessor
        from repro.testbed import ship_ker_schema

        ker = ship_ker_schema()

        def render_all(result):
            return sorted(answer.render()
                          for answer in result.intensional)

        # Reference: the same pipeline, crash-free, stopped before the
        # staling mutation -- these are the only legitimate intensional
        # answers any recovery may produce.
        reference_dir = str(tmp_path / "reference")
        self._workload(reference_dir, CountingOps(), mutate=False)
        reference, _ = IntensionalQueryProcessor.recover(
            reference_dir, ker_schema=ker)
        fresh_answers = render_all(reference.ask(self.QUERY))
        assert fresh_answers, "reference run produced no intensional "\
                              "answers; the sweep would prove nothing"
        reference.storage.wal.close()

        counter = CountingOps()
        self._workload(str(tmp_path / "baseline"), counter,
                       mutate=True)
        scenarios = 0
        for crash_at in range(counter.count):
            for fraction in (0.0, 0.35, 0.7, 1.0):
                scenarios += 1
                data_dir = str(tmp_path / f"e2e-{crash_at}-{fraction}")
                injector = FaultInjector(crash_at, fraction)
                try:
                    self._workload(data_dir, injector, mutate=True)
                except InjectedCrash:
                    pass
                assert injector.dead
                system, report = IntensionalQueryProcessor.recover(
                    data_dir, ker_schema=ker)
                try:
                    if "SUBMARINE" not in system.database.catalog:
                        # Crash inside the bootstrap transaction: the
                        # database is empty, so rules must be too
                        # (rule base never newer than data).
                        assert not system.storage.has_rules
                        assert len(system.rules) == 0
                        continue
                    result = system.ask(self.QUERY)
                    if system.storage.rules_stale:
                        assert result.warnings, (
                            "stale rule base answered without warning")
                        assert result.intensional == []
                    elif result.intensional:
                        assert render_all(result) == fresh_answers, (
                            f"crash at op {crash_at} produced "
                            f"intensional answers differing from a "
                            f"fresh induction")
                finally:
                    system.storage.wal.close()
        assert scenarios >= 30


# -- randomized workloads ---------------------------------------------------


ACTIONS = st.lists(
    st.sampled_from(["insert", "delete", "replace", "tx", "rollback",
                     "checkpoint", "clear"]),
    min_size=1, max_size=12)


def scripted_workload(actions):
    def workload(data_dir, ops, script):
        database = Database("w")
        engine = StorageEngine(database, data_dir, file_ops=ops)
        script.mark(database)
        counter = [100]

        def fresh():
            counter[0] += 1
            return counter[0]

        try:
            relation = database.create(
                "T", [("A", INTEGER)], [(1,), (2,), (3,)])
            script.mark(database)
            for action in actions:
                if action == "insert":
                    relation.insert((fresh(),))
                    script.mark(database)
                elif action == "delete":
                    relation.insert((fresh(),))
                    script.mark(database)  # insert autocommits first
                    target = min(row[0] for row in relation.rows)
                    relation.delete_where(lambda row: row[0] == target)
                    script.mark(database)
                elif action == "replace":
                    value = fresh()
                    relation.replace_where(lambda row: True,
                                           lambda row: (row[0] + value,))
                    script.mark(database)
                elif action == "tx":
                    engine.begin()
                    relation.insert((fresh(),))
                    relation.insert((fresh(),))
                    engine.commit()
                    script.mark(database)
                elif action == "rollback":
                    engine.begin()
                    relation.insert((fresh(),))
                    engine.rollback()
                elif action == "checkpoint":
                    engine.checkpoint()
                elif action == "clear":
                    relation.clear()
                    script.mark(database)  # clear autocommits first
                    relation.insert((fresh(),))
                    script.mark(database)
        finally:
            engine.wal.close()
    return workload


class TestRandomizedWorkloads:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_random_workload_random_crash_point(self, data,
                                                tmp_path_factory):
        actions = data.draw(ACTIONS)
        workload = scripted_workload(actions)
        tmp_path = tmp_path_factory.mktemp("crash")
        counter = CountingOps()
        baseline = Script()
        workload(str(tmp_path / "baseline"), counter, baseline)
        crash_at = data.draw(
            st.integers(min_value=0, max_value=counter.count - 1))
        fraction = data.draw(st.sampled_from(FRACTIONS))
        injector = FaultInjector(crash_at, fraction)
        data_dir = str(tmp_path / "crash")
        script = run_to_crash(workload, data_dir, injector)
        assert injector.dead
        assert_committed_prefix(data_dir, baseline.states, script.acked)
