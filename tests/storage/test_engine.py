"""Unit tests for the storage engine: transactions, checkpoint,
recovery, and rule-base staleness tracking."""

import pytest

from repro.errors import StorageError
from repro.relational.database import Database
from repro.relational.datatypes import INTEGER, char
from repro.rules.rule_relations import RULE_RELATION_NAME
from repro.sql.executor import execute_statement
from repro.storage import StorageEngine


@pytest.fixture
def engine(tmp_path):
    database = Database("t")
    engine = StorageEngine(database, str(tmp_path / "data"))
    yield engine
    engine.wal.close()


def fill(database):
    return database.create("T", [("A", INTEGER), ("B", char(4))],
                           [(1, "one"), (2, "two")])


class TestTransactions:
    def test_commit_then_recover(self, engine):
        relation = fill(engine.database)
        engine.begin()
        relation.insert((3, "tri"))
        relation.delete_where(lambda row: row[0] == 1)
        engine.commit()
        recovered, report = StorageEngine.recover(engine.data_dir)
        assert recovered.database.relation("T").rows == [(2, "two"),
                                                         (3, "tri")]
        assert report.committed_transactions == 2  # create + explicit tx
        recovered.wal.close()

    def test_rollback_restores_every_mutation_kind(self, engine):
        relation = fill(engine.database)
        before = list(relation.rows)
        version_before = relation.version
        engine.begin()
        relation.insert((3, "tri"))
        relation.replace_where(lambda row: row[0] == 2,
                               lambda row: (20, "xx"))
        relation.delete_where(lambda row: row[0] == 1)
        relation.clear()
        engine.rollback()
        assert relation.rows == before
        # The version moves FORWARD on rollback -- caches keyed on it
        # must notice the rows changed back.
        assert relation.version > version_before

    def test_rollback_undoes_ddl(self, engine):
        database = engine.database
        fill(database)
        engine.begin()
        database.create("NEW", [("X", INTEGER)])
        database.drop("T")
        engine.rollback()
        assert "T" in database.catalog
        assert "NEW" not in database.catalog

    def test_rolled_back_work_never_reaches_recovery(self, engine):
        relation = fill(engine.database)
        engine.begin()
        relation.insert((9, "no"))
        engine.rollback()
        relation.insert((3, "yes"))  # autocommits
        recovered, _ = StorageEngine.recover(engine.data_dir)
        assert sorted(r[0] for r in
                      recovered.database.relation("T").rows) == [1, 2, 3]
        recovered.wal.close()

    def test_commit_without_begin_raises_with_hint(self, engine):
        with pytest.raises(StorageError) as excinfo:
            engine.commit()
        assert excinfo.value.hint is not None
        with pytest.raises(StorageError):
            engine.rollback()

    def test_nested_begin_rejected(self, engine):
        engine.begin()
        with pytest.raises(StorageError):
            engine.begin()
        engine.rollback()

    def test_checkpoint_inside_transaction_rejected(self, engine):
        engine.begin()
        with pytest.raises(StorageError):
            engine.checkpoint()
        engine.rollback()


class TestStatementScope:
    def test_failed_statement_rolls_back_its_mutations(self, engine):
        relation = fill(engine.database)

        class Boom(RuntimeError):
            pass

        def updater(row):
            if row[0] == 2:
                raise Boom()
            return (row[0] + 10, row[1])

        with pytest.raises(Boom):
            with engine.statement():
                relation.replace_where(lambda row: row[0] == 1,
                                       lambda row: (11, row[1]))
                relation.delete_where(lambda row: False)
                for row in list(relation.rows):
                    _ = updater(row)
        assert relation.rows == [(1, "one"), (2, "two")]

    def test_sql_dml_autocommits_per_statement(self, engine):
        fill(engine.database)
        execute_statement(engine.database,
                          "INSERT INTO T (A, B) VALUES (3, 'tri')")
        recovered, _ = StorageEngine.recover(engine.data_dir)
        assert len(recovered.database.relation("T")) == 3
        recovered.wal.close()

    def test_failed_sql_statement_aborts_enclosing_transaction(self,
                                                               engine):
        """PostgreSQL semantics: an error inside an explicit transaction
        aborts the whole transaction, never leaving half of it."""
        relation = fill(engine.database)
        engine.begin()
        execute_statement(engine.database,
                          "INSERT INTO T (A, B) VALUES (3, 'tri')")
        with pytest.raises(Exception):
            execute_statement(engine.database,
                              "INSERT INTO T (A, B) VALUES (4)")
        assert not engine.in_transaction()
        assert len(relation) == 2  # the first INSERT rolled back too


class TestCheckpointRecovery:
    def test_snapshot_plus_tail(self, engine):
        relation = fill(engine.database)
        engine.checkpoint()
        relation.insert((3, "tri"))
        recovered, report = StorageEngine.recover(engine.data_dir)
        assert report.snapshot_used
        assert report.replayed_records == 1
        assert len(recovered.database.relation("T")) == 3
        recovered.wal.close()

    def test_replay_is_idempotent_via_version_watermarks(self, engine):
        relation = fill(engine.database)
        relation.insert((3, "tri"))
        recovered, _ = StorageEngine.recover(engine.data_dir)
        live = recovered.database.relation("T")
        rows_once = list(live.rows)
        report = recovered.replay_tail()  # everything already applied
        assert report.replayed_records == 0 or live.rows == rows_once
        assert live.rows == rows_once
        recovered.wal.close()

    def test_recovered_engine_continues_transaction_ids(self, engine):
        fill(engine.database)
        engine.begin()
        engine.database.relation("T").insert((3, "x"))
        engine.commit()
        recovered, _ = StorageEngine.recover(engine.data_dir)
        assert recovered._next_tx > engine._next_tx - 1
        recovered.wal.close()

    def test_recovery_without_any_files(self, tmp_path):
        recovered, report = StorageEngine.recover(str(tmp_path / "empty"))
        assert len(recovered.database.catalog) == 0
        assert not report.snapshot_used
        recovered.wal.close()

    def test_delete_and_update_replay(self, engine):
        fill(engine.database)
        execute_statement(engine.database, "DELETE FROM T WHERE A = 1")
        execute_statement(engine.database,
                          "UPDATE T SET B = 'due' WHERE A = 2")
        recovered, _ = StorageEngine.recover(engine.data_dir)
        assert recovered.database.relation("T").rows == [(2, "due")]
        recovered.wal.close()

    def test_drop_replays(self, engine):
        fill(engine.database)
        engine.database.drop("T")
        recovered, _ = StorageEngine.recover(engine.data_dir)
        assert "T" not in recovered.database.catalog
        recovered.wal.close()


class TestRuleStaleness:
    def _store_rules(self, engine):
        from repro.rules.clause import AttributeRef, Clause, Interval
        from repro.rules.rule import Rule
        from repro.rules.rule_relations import encode_rule_relations
        from repro.rules.ruleset import RuleSet
        ruleset = RuleSet()
        ruleset.add(Rule(
            [Clause(AttributeRef("T", "A"), Interval(1, 2))],
            Clause(AttributeRef("T", "B"), Interval("one", "one"))))
        with engine.transaction():
            encode_rule_relations(ruleset).register_into(engine.database)
            engine.mark_rules_current()

    def test_fresh_after_sync_stale_after_data_mutation(self, engine):
        relation = fill(engine.database)
        self._store_rules(engine)
        assert engine.has_rules and not engine.rules_stale
        relation.insert((5, "five"))
        assert engine.rules_stale

    def test_staleness_survives_recovery(self, engine):
        relation = fill(engine.database)
        self._store_rules(engine)
        relation.insert((5, "five"))
        recovered, report = StorageEngine.recover(engine.data_dir)
        assert report.has_rules and report.rules_stale
        assert recovered.rules_stale
        recovered.wal.close()

    def test_freshness_survives_checkpoint_and_recovery(self, engine):
        fill(engine.database)
        self._store_rules(engine)
        engine.checkpoint()
        recovered, report = StorageEngine.recover(engine.data_dir)
        assert report.has_rules and not report.rules_stale
        assert RULE_RELATION_NAME in recovered.database.catalog
        recovered.wal.close()

    def test_rule_relation_mutations_do_not_stale(self, engine):
        fill(engine.database)
        self._store_rules(engine)
        engine.database.relation(RULE_RELATION_NAME).clear()
        assert not engine.rules_stale


class TestCacheInvalidationOnReplay:
    def test_stats_version_advances_during_recovery_replay(self, engine):
        """Replayed mutations must fire the same hooks as live ones, so
        a statistics snapshot taken before replay is detectably stale."""
        fill(engine.database)
        recovered, _ = StorageEngine.recover(engine.data_dir)
        catalog = recovered.database.catalog
        version_before = catalog.stats_version()
        # Append more committed work to the WAL by a second live engine
        # writing to the same directory (simulating a warm standby).
        recovered2, _ = StorageEngine.recover(engine.data_dir)
        recovered2.database.relation("T").insert((42, "answ"))
        recovered2.wal.close()
        report = recovered.replay_tail()
        assert report.replayed_records >= 1
        assert catalog.stats_version() > version_before
        assert (42, "answ") in recovered.database.relation("T").rows
        recovered.wal.close()
