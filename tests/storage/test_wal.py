"""Unit tests for the write-ahead log: records, tails, rotation."""

import pytest

from repro.errors import CorruptWalRecord, StorageError
from repro.storage.wal import (
    WriteAheadLog, decode_record, encode_record, read_records,
)


class TestRecordCodec:
    def test_round_trip(self):
        line = encode_record({"type": "mut", "lsn": 7, "rel": "T"})
        assert decode_record(line) == {"type": "mut", "lsn": 7, "rel": "T"}

    def test_crc_detects_any_flip(self):
        line = encode_record({"type": "commit", "lsn": 1, "tx": 3})
        tampered = line.replace('"tx":3', '"tx":4')
        assert tampered != line
        assert decode_record(tampered) is None

    def test_partial_line_is_invalid(self):
        line = encode_record({"type": "begin", "lsn": 1, "tx": 1})
        for cut in range(len(line.rstrip("\n"))):
            assert decode_record(line[:cut]) is None

    def test_non_record_json_is_invalid(self):
        assert decode_record("[1, 2, 3]") is None
        assert decode_record('{"no": "crc"}') is None
        assert decode_record("") is None


class TestReadRecords:
    def test_missing_file_is_empty(self, tmp_path):
        records, torn = read_records(str(tmp_path / "nope.jsonl"))
        assert records == [] and torn is False

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        good = encode_record({"type": "begin", "lsn": 1, "tx": 1})
        path.write_text(good + '{"type":"mut","lsn":2,"crc":')
        records, torn = read_records(str(path))
        assert [r["lsn"] for r in records] == [1]
        assert torn is True

    def test_mid_log_corruption_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        first = encode_record({"type": "begin", "lsn": 1, "tx": 1})
        third = encode_record({"type": "commit", "lsn": 3, "tx": 1})
        path.write_text(first + "garbage\n" + third)
        with pytest.raises(CorruptWalRecord):
            read_records(str(path))

    def test_non_monotonic_lsn_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text(
            encode_record({"type": "begin", "lsn": 5, "tx": 1})
            + encode_record({"type": "commit", "lsn": 5, "tx": 1}))
        with pytest.raises(CorruptWalRecord):
            read_records(str(path))


class TestWriteAheadLog:
    def test_append_assigns_monotonic_lsns(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.jsonl"))
        wal.append([{"type": "begin", "tx": 1},
                    {"type": "commit", "tx": 1}])
        wal.append([{"type": "begin", "tx": 2},
                    {"type": "commit", "tx": 2}])
        wal.close()
        records, torn = read_records(wal.path)
        assert [r["lsn"] for r in records] == [1, 2, 3, 4]
        assert torn is False

    def test_reopen_continues_lsns(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        first = WriteAheadLog(path)
        first.append([{"type": "begin", "tx": 1}])
        first.close()
        second = WriteAheadLog(path)
        assert second.last_lsn == 1
        second.append([{"type": "commit", "tx": 1}])
        second.close()
        records, _ = read_records(path)
        assert [r["lsn"] for r in records] == [1, 2]

    def test_reopen_truncates_torn_tail(self, tmp_path):
        """Appending after a torn tail must not create (apparent)
        mid-log corruption on the next read."""
        path = tmp_path / "wal.jsonl"
        path.write_text(
            encode_record({"type": "begin", "lsn": 1, "tx": 1})
            + '{"torn":')
        wal = WriteAheadLog(str(path))
        wal.append([{"type": "commit", "tx": 1}])
        wal.close()
        records, torn = read_records(str(path))
        assert [r["lsn"] for r in records] == [1, 2]
        assert torn is False

    def test_rotate_keeps_lsns_monotonic(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.jsonl"))
        wal.append([{"type": "begin", "tx": 1},
                    {"type": "commit", "tx": 1}])
        wal.rotate(after_lsn=wal.last_lsn)
        wal.append([{"type": "begin", "tx": 2}])
        wal.close()
        records, _ = read_records(wal.path)
        assert records[0]["type"] == "header"
        assert [r["lsn"] for r in records] == [2, 3]

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            WriteAheadLog(str(tmp_path / "wal.jsonl"), fsync="sometimes")
