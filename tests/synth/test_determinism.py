"""Determinism of the synthetic workload generator.

The differential harness's whole methodology rests on one property:
``(domain, seed)`` is a complete description of an instance.  Same seed
must mean *byte-identical* schema, rows, induced rules and workload --
across processes, platforms and Python versions (the generator only
uses integer arithmetic and string-seeded ``random.Random``).  The
golden pins below make a silent generator change loud: if one fails,
either restore compatibility or consciously re-pin and note that every
old corpus seed is invalidated.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sql.parser import parse_statement
from repro.synth import (
    DOMAINS, build_instance, generate_program, rows_fingerprint,
    rules_fingerprint, schema_fingerprint, workload_fingerprint,
)

DOMAIN_NAMES = sorted(DOMAINS)

#: (schema, rows, workload[30 stmts, seed 0], rules) at seed 0.
GOLDEN = {
    "hospital": ("41b8464409cef31769a9e2528261583f374c45c637e0dd180975abdfc657eb37",
        "d59c23250db1cc270f4a67997a78cedff6c56932b398d19a6f798e9f33bf0d2d",
        "ec5e9b185716fcd4d6f5e4fcfdc041f2d6593a7e05d68434fb5d6239e54ac0e7",
        "59fd8ef98f0de191a077be876ad72247d70de9dfa934163ab5713c6ecb91b460"),
    "logistics": ("cb520954fe0c931823f778b15949fecd4d0346b9a5c00ad358be23ebe9a0af8a",
        "edb188a9abd2228189c80b1a8a2e0e88cbd8bbffce35b9c42817d78a611bf745",
        "951eb17cbfd4e4385cc852d15aac776f4aff708bfd644f7c91467c3032502f83",
        "b50322678b9e697d008320d4ed259f5bdb33f2e3475745e8080f78888c65ecf9"),
    "ontology": ("f392f69e651ad64b8e2a45e277a1526db9cd523d156b623534352dda50c44908",
        "a143a2d9463c414f487fbd0d6b57aa524ad2bd5c3c7843c7072893068b486ebd",
        "4562dd6d904e8a2300391f4d7d357ab0bed2407861e0e4b56681c04f6519d4d4",
        "4e539c8505263582c08aeff5c6cfbb59e9bd8241ec781ce57c7d1fd423df515d"),
    "ship": ("f68cf14203a95ac33139478b8fe4ad6c57145acd64d055a75243a07547bd1beb",
        "4fdb239bcbfa563c61424446e6594fe9dcbd26a94b2675c7021c0b084d0a432e",
        "b38f04564a239cd93e4e41cbd8cb384df01fd884d75c99aff8781862bf8f5cc0",
        "4bdf10631b1d1d662db250f5fe9cdc808e21d24448abdff320648a5edc45851d"),
}


class TestGoldenPins:
    @pytest.mark.parametrize("domain", DOMAIN_NAMES)
    def test_seed_zero_fingerprints_pinned(self, domain):
        instance = build_instance(domain, seed=0)
        program = generate_program(instance, 30, seed=0)
        actual = (schema_fingerprint(instance),
                  rows_fingerprint(instance),
                  workload_fingerprint(program),
                  rules_fingerprint(instance))
        assert actual == GOLDEN[domain], (
            f"{domain}: generator output changed; a deliberate change "
            f"must re-pin and invalidates existing corpus seeds")


class TestSeedDeterminism:
    @settings(max_examples=15, deadline=None)
    @given(st.sampled_from(DOMAIN_NAMES), st.integers(0, 10_000),
           st.integers(0, 10_000))
    def test_same_seed_byte_identical(self, domain, seed, wseed):
        first = build_instance(domain, seed=seed)
        second = build_instance(domain, seed=seed)
        assert rows_fingerprint(first) == rows_fingerprint(second)
        assert rules_fingerprint(first) == rules_fingerprint(second)
        program_a = generate_program(first, 20, seed=wseed)
        program_b = generate_program(second, 20, seed=wseed)
        assert program_a == program_b

    @pytest.mark.parametrize("domain", ["hospital", "logistics",
                                        "ontology"])
    def test_different_seeds_differ(self, domain):
        fingerprints = {rows_fingerprint(build_instance(domain, seed=seed))
                        for seed in range(4)}
        assert len(fingerprints) == 4

    @pytest.mark.parametrize("domain", ["hospital", "logistics"])
    def test_adversarial_flag_changes_data_not_schema(self, domain):
        plain = build_instance(domain, seed=1)
        adversarial = build_instance(domain, seed=1, adversarial=True)
        assert (schema_fingerprint(plain)
                == schema_fingerprint(adversarial))
        assert (rows_fingerprint(plain)
                != rows_fingerprint(adversarial))

    def test_scale_grows_rows(self):
        small = build_instance("hospital", seed=0)
        large = build_instance("hospital", seed=0, scale=3)
        assert (len(large.database.relation("PATIENT"))
                == 3 * len(small.database.relation("PATIENT")))


class TestWorkloadValidity:
    @settings(max_examples=12, deadline=None)
    @given(st.sampled_from(DOMAIN_NAMES), st.integers(0, 500))
    def test_every_statement_parses(self, domain, seed):
        instance = build_instance(domain, seed=seed % 5, induce=False)
        for statement in generate_program(instance, 25, seed=seed):
            parse_statement(statement.sql)

    def test_mix_covers_all_kinds(self):
        instance = build_instance("hospital", seed=0, induce=False)
        kinds = {statement.kind
                 for statement in generate_program(instance, 60, seed=0)}
        assert kinds == {"select", "ask", "dml"}


class TestDomainShape:
    def test_every_domain_induces_rules(self):
        for domain in DOMAIN_NAMES:
            instance = build_instance(domain, seed=0)
            assert len(instance.rules) > 0, domain

    def test_ontology_hierarchy_depth(self):
        instance = build_instance("ontology", seed=0)
        assert instance.schema.ancestor_names("SPORT") == [
            "CAR", "VEHICLE", "MOBILE", "ASSET"]

    def test_reinduce_tracks_data(self):
        from repro.sql.executor import execute_statement
        instance = build_instance("hospital", seed=0)
        before = instance.rules
        assert before.fresh_for(instance.database.relation("PATIENT"))
        execute_statement(
            instance.database,
            "INSERT INTO PATIENT (Id, Age, Severity, Triage, Ward) "
            "VALUES ('Z001', 30, 5, 'RED', 'W01')")
        assert not before.fresh_for(
            instance.database.relation("PATIENT"))
        after = instance.reinduce()
        assert after.fresh_for(instance.database.relation("PATIENT"))
