"""Unit tests for the interactive shell."""

import io

import pytest

from repro.cli import Shell, build_system
from repro.relational.textio import dumps_database
from repro.testbed import SHIP_SCHEMA_DDL, ship_database


@pytest.fixture(scope="module")
def system():
    return build_system()


@pytest.fixture()
def shell(system):
    return Shell(system, out=io.StringIO())


def output_of(shell):
    return shell.out.getvalue()


class TestCommands:
    def test_tables(self, shell):
        assert shell.handle("\\tables")
        assert "SUBMARINE: 24 rows" in output_of(shell)

    def test_rules(self, shell):
        shell.handle("\\rules")
        assert "then x isa SSBN" in output_of(shell)

    def test_schema(self, shell):
        shell.handle("\\schema")
        assert "object type SUBMARINE" in output_of(shell)

    def test_hierarchy(self, shell):
        shell.handle("\\hierarchy class")
        text = output_of(shell)
        assert text.startswith("CLASS")
        assert "SSBN" in text

    def test_show(self, shell):
        shell.handle("\\show TYPE")
        assert "ballistic nuclear missile sub" in output_of(shell)

    def test_quel(self, shell):
        shell.handle("\\quel range of c is CLASS")
        shell.handle("\\quel retrieve (count(c.Class))")
        assert "13" in output_of(shell)

    def test_lint(self, shell):
        shell.handle("\\lint")
        text = output_of(shell)
        # The ship schema's INSTALL rules legitimately warn.
        assert "cross-type-conclusion" in text or "clean" in text

    def test_explain(self, shell):
        shell.handle("\\explain SELECT Class FROM CLASS "
                     "WHERE Displacement > 8000")
        text = output_of(shell)
        assert "R9 fires" in text
        assert "is subsumed by premise" in text

    def test_explain_usage(self, shell):
        shell.handle("\\explain")
        assert "usage" in output_of(shell)

    def test_help(self, shell):
        shell.handle("\\help")
        assert "rules" in output_of(shell)

    def test_unknown_command(self, shell):
        shell.handle("\\frobnicate")
        assert "unknown command" in output_of(shell)

    def test_quit(self, shell):
        assert shell.handle("\\quit") is False

    def test_blank_line(self, shell):
        assert shell.handle("   ")
        assert output_of(shell) == ""


class TestCacheCommand:
    def test_status_reflects_activity(self, shell):
        from repro.cache import query_cache
        cache = query_cache(shell.system.database)
        cache.enabled = True  # holds on the REPRO_CACHE=off CI leg
        cache.floor_s = 0.0
        shell.handle("\\cache clear")
        shell.handle("SELECT Class FROM CLASS WHERE Displacement > 8000")
        shell.handle("SELECT Class FROM CLASS WHERE Displacement > 8000")
        shell.handle("\\cache")
        text = output_of(shell)
        assert "query cache: enabled" in text
        assert "ask:" in text and "1 hits" in text

    def test_toggle_and_clear(self, shell):
        from repro.cache import query_cache
        shell.handle("\\cache off")
        assert not query_cache(shell.system.database).enabled
        shell.handle("\\cache on")
        assert query_cache(shell.system.database).enabled
        shell.handle("\\cache clear")
        assert "entries dropped" in output_of(shell)
        shell.handle("\\cache bogus")
        assert "usage" in output_of(shell)

    def test_cache_bytes_override(self):
        from repro.cache import query_cache
        system = build_system(cache_bytes=4096)
        assert query_cache(system.database).byte_budget == 4096


class TestObservabilityCommands:
    @pytest.fixture(autouse=True)
    def clean_obs(self):
        from repro import obs
        from repro.obs.slowlog import DEFAULT_THRESHOLD_S
        obs.disable()
        obs.reset()
        yield
        obs.disable()
        obs.reset()
        obs.slow_queries().set_threshold(DEFAULT_THRESHOLD_S)

    def test_obs_toggle_and_status(self, shell):
        from repro import obs
        shell.handle("\\obs on")
        assert obs.enabled()
        shell.handle("\\obs off")
        assert not obs.enabled()
        shell.handle("\\obs")
        text = output_of(shell)
        assert "enabled" in text and "disabled" in text
        shell.handle("\\obs bogus")
        assert "usage" in output_of(shell)

    def test_metrics_dump_after_traced_query(self, shell):
        shell.handle("\\obs on")
        shell.handle("SELECT Class FROM CLASS WHERE Displacement > 8000")
        shell.handle("\\metrics")
        text = output_of(shell)
        assert "query_seconds_count" in text
        shell.handle("\\metrics prom")
        assert "# TYPE query_seconds histogram" in output_of(shell)

    def test_metrics_reset(self, shell):
        from repro import obs
        shell.handle("\\obs on")
        shell.handle("SELECT Class FROM CLASS WHERE Displacement > 8000")
        shell.handle("\\metrics reset")
        assert "metrics cleared" in output_of(shell)
        assert obs.metrics().snapshot() == {}

    def test_metrics_empty(self, shell):
        shell.handle("\\metrics")
        assert "(no metrics recorded)" in output_of(shell)

    def test_trace_tail_and_clear(self, shell):
        shell.handle("\\trace")
        assert "no spans recorded" in output_of(shell)
        shell.handle("\\obs on")
        # An earlier test may have warmed the query cache for this
        # statement; drop it so the ask re-plans and re-executes (the
        # span names below come from live plan nodes).
        shell.handle("\\cache clear")
        shell.handle("SELECT Class FROM CLASS WHERE Displacement > 8000")
        shell.handle("\\trace 5")
        assert "plan.node." in output_of(shell)
        shell.handle("\\trace clear")
        assert "trace buffer cleared" in output_of(shell)
        shell.handle("\\trace nonsense")
        assert "usage" in output_of(shell)

    def test_trace_export(self, shell, tmp_path):
        shell.handle("\\obs on")
        shell.handle("SELECT Class FROM CLASS WHERE Displacement > 8000")
        path = tmp_path / "spans.jsonl"
        shell.handle(f"\\trace export {path}")
        assert f"spans written to {path}" in output_of(shell)
        assert path.read_text().count("\n") >= 1
        shell.handle("\\trace export")
        assert "usage" in output_of(shell)

    def test_slowlog_threshold_and_capture(self, shell):
        from repro import obs
        shell.handle("\\slowlog 0")  # everything is slow now
        shell.handle("\\obs on")
        shell.handle("SELECT Class FROM CLASS WHERE Displacement > 8000")
        shell.handle("\\slowlog")
        assert "SELECT Class FROM CLASS" in output_of(shell)
        shell.handle("\\slowlog clear")
        assert len(obs.slow_queries()) == 0
        shell.handle("\\slowlog abc")
        assert "usage" in output_of(shell)

    def test_explain_analyze_from_shell(self, shell):
        shell.handle("EXPLAIN ANALYZE SELECT Class FROM CLASS "
                     "WHERE Displacement > 8000")
        text = output_of(shell)
        assert "actual" in text and ", time " in text


class TestQueries:
    def test_sql_query(self, shell):
        shell.handle("SELECT Class FROM CLASS WHERE Displacement > 8000")
        text = output_of(shell)
        assert "Extensional answer" in text
        assert "SSBN" in text

    def test_sql_error_reported_not_raised(self, shell):
        assert shell.handle("SELECT * FROM NOPE")
        assert "error:" in output_of(shell)

    def test_parse_error_reported(self, shell):
        shell.handle("SELEKT nonsense")
        assert "error:" in output_of(shell)


class TestRepl:
    def test_repl_session(self, system):
        out = io.StringIO()
        shell = Shell(system, out=out)
        shell.repl(io.StringIO("\\tables\n\\quit\n"))
        text = out.getvalue()
        assert "intensional query shell" in text
        assert "SUBMARINE: 24 rows" in text

    def test_repl_eof_terminates(self, system):
        shell = Shell(system, out=io.StringIO())
        shell.repl(io.StringIO(""))  # no input -> clean exit


class TestBuildSystem:
    def test_default_is_ship_db(self, system):
        assert "SUBMARINE" in system.database
        assert len(system.rules) == 18

    def test_from_dump_files(self, tmp_path):
        db_file = tmp_path / "ships.txt"
        db_file.write_text(dumps_database(ship_database()))
        ker_file = tmp_path / "ships.ker"
        ker_file.write_text(SHIP_SCHEMA_DDL)
        system = build_system(str(db_file), str(ker_file))
        assert len(system.rules) > 0
        result = system.ask(
            "SELECT Class FROM CLASS WHERE Displacement > 8000")
        assert result.inference.forward_subtypes() == ["SSBN"]

    def test_from_dump_without_schema(self, tmp_path):
        db_file = tmp_path / "ships.txt"
        db_file.write_text(dumps_database(ship_database()))
        system = build_system(str(db_file))
        assert len(system.rules) == 0

    def test_nc_override(self):
        system = build_system(n_c=1)
        assert len(system.rules) > 18


class TestDurabilityCommands:
    def _durable_shell(self, tmp_path):
        system = build_system(data_dir=str(tmp_path / "data"))
        return Shell(system, out=io.StringIO())

    def test_commands_without_storage_print_hint(self, shell):
        shell.handle("\\wal")
        assert "no durable storage attached" in output_of(shell)
        shell.handle("\\begin")
        text = output_of(shell)
        assert "error: cannot begin a transaction: " \
            "no durable storage attached" in text
        assert "hint:" in text and "--data-dir" in text

    def test_wal_status_and_records(self, tmp_path):
        shell = self._durable_shell(tmp_path)
        shell.handle("\\wal 5")
        text = output_of(shell)
        assert "fsync policy:   commit" in text
        assert "snapshot:       present" in text
        assert "rule base:      fresh" in text

    def test_begin_commit_persists(self, tmp_path):
        shell = self._durable_shell(tmp_path)
        shell.handle("\\begin")
        shell.handle("INSERT INTO SONAR (Sonar, SonarType) "
                     "VALUES ('ZZ-9', 'ZZ')")
        shell.handle("\\commit")
        assert "committed" in output_of(shell)
        shell.handle("\\wal")
        assert "rule base:      STALE" in output_of(shell)
        # A fresh shell over the same directory sees the row.
        reopened = self._durable_shell(tmp_path)
        result = reopened.system.database.relation("SONAR")
        assert any(row[0] == "ZZ-9" for row in result.rows)

    def test_rollback_discards(self, tmp_path):
        shell = self._durable_shell(tmp_path)
        before = len(shell.system.database.relation("SONAR"))
        shell.handle("\\begin")
        shell.handle("INSERT INTO SONAR (Sonar, SonarType) "
                     "VALUES ('ZZ-9', 'ZZ')")
        shell.handle("\\rollback")
        assert "rolled back" in output_of(shell)
        assert len(shell.system.database.relation("SONAR")) == before

    def test_checkpoint_and_recover(self, tmp_path):
        shell = self._durable_shell(tmp_path)
        shell.handle("INSERT INTO SONAR (Sonar, SonarType) "
                     "VALUES ('ZZ-9', 'ZZ')")
        shell.handle("\\checkpoint")
        assert "checkpoint complete" in output_of(shell)
        shell.handle("\\recover")
        text = output_of(shell)
        assert "recovery complete" in text
        assert "rule base: STALE" in text
        # The recovered system degrades intensional answers ...
        shell.handle("SELECT Class FROM CLASS WHERE Displacement > 8000")
        assert "WARNING" in output_of(shell)
        # ... until \refresh re-induces.
        shell.handle("\\refresh")
        assert "rule base refreshed" in output_of(shell)
        shell.out = io.StringIO()
        shell.handle("SELECT Class FROM CLASS WHERE Displacement > 8000")
        assert "WARNING" not in output_of(shell)

    def test_fresh_directory_recovers_on_reopen(self, tmp_path):
        first = self._durable_shell(tmp_path)
        rules = len(first.system.rules)
        assert rules > 0
        out = io.StringIO()
        system = build_system(data_dir=str(tmp_path / "data"), out=out)
        assert "recovery complete" in out.getvalue()
        assert len(system.rules) == rules

    def test_reopened_default_system_keeps_intensional_answers(
            self, tmp_path):
        self._durable_shell(tmp_path)
        system = build_system(data_dir=str(tmp_path / "data"))
        result = system.ask(
            "SELECT SUBMARINE.NAME, SUBMARINE.CLASS FROM SUBMARINE, "
            "CLASS WHERE SUBMARINE.CLASS = CLASS.CLASS "
            'AND CLASS.TYPE = "SSBN"')
        assert result.intensional
