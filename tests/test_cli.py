"""Unit tests for the interactive shell."""

import io

import pytest

from repro.cli import Shell, build_system
from repro.relational.textio import dumps_database
from repro.testbed import SHIP_SCHEMA_DDL, ship_database


@pytest.fixture(scope="module")
def system():
    return build_system()


@pytest.fixture()
def shell(system):
    return Shell(system, out=io.StringIO())


def output_of(shell):
    return shell.out.getvalue()


class TestCommands:
    def test_tables(self, shell):
        assert shell.handle("\\tables")
        assert "SUBMARINE: 24 rows" in output_of(shell)

    def test_rules(self, shell):
        shell.handle("\\rules")
        assert "then x isa SSBN" in output_of(shell)

    def test_schema(self, shell):
        shell.handle("\\schema")
        assert "object type SUBMARINE" in output_of(shell)

    def test_hierarchy(self, shell):
        shell.handle("\\hierarchy class")
        text = output_of(shell)
        assert text.startswith("CLASS")
        assert "SSBN" in text

    def test_show(self, shell):
        shell.handle("\\show TYPE")
        assert "ballistic nuclear missile sub" in output_of(shell)

    def test_quel(self, shell):
        shell.handle("\\quel range of c is CLASS")
        shell.handle("\\quel retrieve (count(c.Class))")
        assert "13" in output_of(shell)

    def test_lint(self, shell):
        shell.handle("\\lint")
        text = output_of(shell)
        # The ship schema's INSTALL rules legitimately warn.
        assert "cross-type-conclusion" in text or "clean" in text

    def test_explain(self, shell):
        shell.handle("\\explain SELECT Class FROM CLASS "
                     "WHERE Displacement > 8000")
        text = output_of(shell)
        assert "R9 fires" in text
        assert "is subsumed by premise" in text

    def test_explain_usage(self, shell):
        shell.handle("\\explain")
        assert "usage" in output_of(shell)

    def test_help(self, shell):
        shell.handle("\\help")
        assert "rules" in output_of(shell)

    def test_unknown_command(self, shell):
        shell.handle("\\frobnicate")
        assert "unknown command" in output_of(shell)

    def test_quit(self, shell):
        assert shell.handle("\\quit") is False

    def test_blank_line(self, shell):
        assert shell.handle("   ")
        assert output_of(shell) == ""


class TestQueries:
    def test_sql_query(self, shell):
        shell.handle("SELECT Class FROM CLASS WHERE Displacement > 8000")
        text = output_of(shell)
        assert "Extensional answer" in text
        assert "SSBN" in text

    def test_sql_error_reported_not_raised(self, shell):
        assert shell.handle("SELECT * FROM NOPE")
        assert "error:" in output_of(shell)

    def test_parse_error_reported(self, shell):
        shell.handle("SELEKT nonsense")
        assert "error:" in output_of(shell)


class TestRepl:
    def test_repl_session(self, system):
        out = io.StringIO()
        shell = Shell(system, out=out)
        shell.repl(io.StringIO("\\tables\n\\quit\n"))
        text = out.getvalue()
        assert "intensional query shell" in text
        assert "SUBMARINE: 24 rows" in text

    def test_repl_eof_terminates(self, system):
        shell = Shell(system, out=io.StringIO())
        shell.repl(io.StringIO(""))  # no input -> clean exit


class TestBuildSystem:
    def test_default_is_ship_db(self, system):
        assert "SUBMARINE" in system.database
        assert len(system.rules) == 18

    def test_from_dump_files(self, tmp_path):
        db_file = tmp_path / "ships.txt"
        db_file.write_text(dumps_database(ship_database()))
        ker_file = tmp_path / "ships.ker"
        ker_file.write_text(SHIP_SCHEMA_DDL)
        system = build_system(str(db_file), str(ker_file))
        assert len(system.rules) > 0
        result = system.ask(
            "SELECT Class FROM CLASS WHERE Displacement > 8000")
        assert result.inference.forward_subtypes() == ["SSBN"]

    def test_from_dump_without_schema(self, tmp_path):
        db_file = tmp_path / "ships.txt"
        db_file.write_text(dumps_database(ship_database()))
        system = build_system(str(db_file))
        assert len(system.rules) == 0

    def test_nc_override(self):
        system = build_system(n_c=1)
        assert len(system.rules) > 18
