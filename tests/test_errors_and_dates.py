"""Cross-cutting tests: the exception hierarchy and date-typed columns
flowing through the whole pipeline."""

import datetime

import pytest

from repro import errors
from repro.induction import InductionConfig, induce_scheme
from repro.relational import Database, DATE, char
from repro.rules import decode_rule_relations, encode_rule_relations
from repro.rules.ruleset import RuleSet


class TestErrorHierarchy:
    def test_all_derive_from_base(self):
        for name in ("SchemaError", "TypeMismatchError", "CatalogError",
                     "ExpressionError", "ParseError", "QuelError",
                     "SqlError", "KerError", "RuleError",
                     "InductionError", "InferenceError"):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_type_mismatch_is_schema_error(self):
        assert issubclass(errors.TypeMismatchError, errors.SchemaError)

    def test_parse_error_carries_position(self):
        error = errors.ParseError("bad token", line=3, column=7)
        assert error.line == 3 and error.column == 7
        assert "line 3, col 7" in str(error)

    def test_parse_error_without_position(self):
        error = errors.ParseError("bad token")
        assert "line" not in str(error)

    def test_one_base_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.QuelError("boom")


class TestDatePipeline:
    @pytest.fixture()
    def db(self):
        database = Database()
        rows = [
            (datetime.date(1960, 1, 1), "cold-war"),
            (datetime.date(1965, 6, 1), "cold-war"),
            (datetime.date(1975, 3, 1), "cold-war"),
            (datetime.date(1995, 5, 1), "modern"),
            (datetime.date(2001, 9, 1), "modern"),
            (datetime.date(2010, 2, 1), "modern"),
        ]
        database.create("HULL", [("Laid", DATE), ("Era", char(10))],
                        rows=rows)
        return database

    def test_induction_over_dates(self, db):
        rules = induce_scheme(db.relation("HULL"), "Laid", "Era",
                              InductionConfig(n_c=3))
        spans = {rule.rhs.interval.low:
                 (rule.lhs[0].interval.low, rule.lhs[0].interval.high)
                 for rule in rules}
        assert spans["cold-war"] == (datetime.date(1960, 1, 1),
                                     datetime.date(1975, 3, 1))
        assert spans["modern"] == (datetime.date(1995, 5, 1),
                                   datetime.date(2010, 2, 1))

    def test_date_rules_roundtrip_through_rule_relations(self, db):
        rules = RuleSet(induce_scheme(db.relation("HULL"), "Laid", "Era",
                                      InductionConfig(n_c=3)))
        decoded = decode_rule_relations(encode_rule_relations(rules))
        assert decoded.render() == rules.render()
        assert isinstance(decoded[1].lhs[0].interval.low, datetime.date)

    def test_date_inference(self, db):
        from repro.inference import TypeInferenceEngine
        from repro.rules.clause import Clause, Interval

        rules = RuleSet(induce_scheme(db.relation("HULL"), "Laid", "Era",
                                      InductionConfig(n_c=3)))
        engine = TypeInferenceEngine(rules)
        result = engine.infer([Clause(
            rules[1].lhs[0].attribute,
            Interval.closed(datetime.date(1962, 1, 1),
                            datetime.date(1970, 1, 1)))])
        facts = {ref.render(): interval
                 for ref, interval, _s in result.facts.facts()}
        assert facts["HULL.Era"].low == "cold-war"

    def test_date_textio_roundtrip(self, db):
        from repro.relational.textio import dumps_database, loads_database
        loaded = loads_database(dumps_database(db))
        assert loaded.relation("HULL") == db.relation("HULL")
