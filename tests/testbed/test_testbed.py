"""Unit tests for the test-bed databases and generators."""

import pytest

from repro.induction import InductionConfig, induce_scheme
from repro.relational import algebra
from repro.testbed import (
    BATTLESHIP_CLASSES, battleship_database, battleship_table,
    ship_database, synthetic_classified_database,
)
from repro.testbed.generators import (
    scaled_ship_database, synthetic_star_database,
)
from repro.testbed.paper_rules import compare_with_paper, paper_rule_set


class TestShipDatabase:
    def test_cardinalities_match_appendix_c(self):
        db = ship_database()
        assert len(db.relation("SUBMARINE")) == 24
        assert len(db.relation("CLASS")) == 13
        assert len(db.relation("TYPE")) == 2
        assert len(db.relation("SONAR")) == 8
        assert len(db.relation("INSTALL")) == 24

    def test_referential_integrity(self):
        db = ship_database()
        classes = set(db.relation("CLASS").column_values("Class"))
        assert set(db.relation("SUBMARINE").column_values("Class")) <= (
            classes)
        ships = set(db.relation("SUBMARINE").column_values("Id"))
        assert set(db.relation("INSTALL").column_values("Ship")) == ships
        sonars = set(db.relation("SONAR").column_values("Sonar"))
        assert set(db.relation("INSTALL").column_values("Sonar")) <= sonars

    def test_fresh_copies_independent(self):
        first = ship_database()
        second = ship_database()
        first.relation("CLASS").clear()
        assert len(second.relation("CLASS")) == 13


class TestPaperRules:
    def test_seventeen_rules(self):
        assert len(paper_rule_set()) == 17

    def test_rules_sound_except_r14_quirk(self):
        # The printed rules (as corrected) hold on the Appendix C data.
        rules = paper_rule_set()
        assert rules[10].render(isa_style=True).endswith("x isa BQQ")

    def test_comparison_against_induced(self, ship_rules):
        report = compare_with_paper(ship_rules)
        assert report.exact == 15
        assert report.implied == 1
        assert report.missing == 1
        assert len(report.extras) == 2

    def test_comparison_render(self, ship_rules):
        text = compare_with_paper(ship_rules).render()
        assert "exact: 15/17" in text
        assert "[x] R14" in text


class TestBattleships:
    def test_table_shape(self):
        table = battleship_table()
        assert len(table) == 12
        assert table.schema.column_names() == [
            "Category", "Type", "TypeName", "DisplacementLow",
            "DisplacementHigh"]

    def test_fleet_respects_ranges(self):
        db = battleship_database(ships_per_type=10, seed=5)
        ranges = {entry.type_code: (entry.displacement_low,
                                    entry.displacement_high)
                  for entry in BATTLESHIP_CLASSES}
        ship = db.relation("SHIP")
        for row in ship:
            low, high = ranges[ship.value(row, "Type")]
            assert low <= ship.value(row, "Displacement") <= high

    def test_endpoints_included(self):
        db = battleship_database(ships_per_type=5, seed=1)
        grouped = algebra.group_by(
            db.relation("SHIP"), ["Type"],
            {"lo": ("min", "Displacement"), "hi": ("max", "Displacement")})
        observed = {row[0]: (row[1], row[2]) for row in grouped}
        for entry in BATTLESHIP_CLASSES:
            assert observed[entry.type_code] == (
                entry.displacement_low, entry.displacement_high)

    def test_deterministic(self):
        first = battleship_database(seed=7)
        second = battleship_database(seed=7)
        assert first.relation("SHIP") == second.relation("SHIP")

    def test_induction_recovers_disjoint_ranges(self):
        """Within the Subsurface category Table 1's ranges are disjoint,
        so Displacement -> Type induction recovers them exactly."""
        db = battleship_database(ships_per_type=15, seed=3)
        subsurface = algebra.select_where(
            db.relation("SHIP"), lambda r: r["Type"] in ("SSBN", "SSN"))
        rules = induce_scheme(subsurface, "Displacement", "Type",
                              InductionConfig(n_c=3))
        spans = {rule.rhs.interval.low:
                 (rule.lhs[0].interval.low, rule.lhs[0].interval.high)
                 for rule in rules}
        assert spans["SSBN"] == (7250, 16600)
        assert spans["SSN"] == (1720, 6000)


class TestGenerators:
    def test_classified_bands_recoverable(self):
        db = synthetic_classified_database(n_rows=500, n_classes=4, seed=2)
        rules = induce_scheme(db.relation("ITEM"), "Value", "Label",
                              InductionConfig(n_c=10))
        labels = {rule.rhs.interval.low for rule in rules}
        assert labels == {"L000", "L001", "L002", "L003"}
        for rule in rules:
            low = rule.lhs[0].interval.low
            high = rule.lhs[0].interval.high
            band = int(rule.rhs.interval.low[1:])
            assert band * 100 <= low <= high < (band + 1) * 100

    def test_noise_creates_inconsistencies(self):
        clean = synthetic_classified_database(n_rows=400, seed=3)
        noisy = synthetic_classified_database(n_rows=400, seed=3,
                                              noise=0.3)
        clean_rules = induce_scheme(clean.relation("ITEM"), "Value",
                                    "Label", InductionConfig(n_c=5))
        noisy_rules = induce_scheme(noisy.relation("ITEM"), "Value",
                                    "Label", InductionConfig(n_c=5))
        clean_support = sum(rule.support for rule in clean_rules)
        noisy_support = sum(rule.support for rule in noisy_rules)
        assert noisy_support < clean_support

    def test_star_database_shapes(self):
        db = synthetic_star_database(n_entities=100, n_groups=10, seed=1)
        assert len(db.relation("GROUPS")) == 10
        assert len(db.relation("ENTITY")) == 100

    def test_scaled_ship_database(self):
        db = scaled_ship_database(scale=3)
        assert len(db.relation("SUBMARINE")) == 24 * 3
        assert len(db.relation("INSTALL")) == 24 * 3
        assert len(db.relation("CLASS")) == 13  # dimensions unchanged

    def test_scaled_identity_at_one(self):
        db = scaled_ship_database(scale=1)
        assert len(db.relation("SUBMARINE")) == 24
