"""Unit tests for the random query workload generator."""

import pytest

from repro.testbed.workload import (
    GeneratedQuery, generate_workload, run_workload,
)


class TestGeneration:
    def test_deterministic(self, ship_binding):
        first = generate_workload(ship_binding, n_queries=10, seed=3)
        second = generate_workload(ship_binding, n_queries=10, seed=3)
        assert [q.sql for q in first] == [q.sql for q in second]

    def test_seeds_differ(self, ship_binding):
        first = generate_workload(ship_binding, n_queries=10, seed=3)
        second = generate_workload(ship_binding, n_queries=10, seed=4)
        assert [q.sql for q in first] != [q.sql for q in second]

    def test_count(self, ship_binding):
        assert len(generate_workload(ship_binding, n_queries=25)) == 25

    def test_queries_parse_and_execute(self, ship_binding, ship_system):
        for query in generate_workload(ship_binding, n_queries=40,
                                       seed=9):
            result = ship_system.ask(query.sql)  # must not raise
            assert result.extensional is not None

    def test_conditions_drawn_from_data(self, ship_binding, ship_system):
        """Point queries on observed values always have a non-empty
        extension (unless joined away)."""
        queries = generate_workload(ship_binding, n_queries=40, seed=11,
                                    join_probability=0.0)
        for query in queries:
            if query.kind == "point":
                result = ship_system.ask(query.sql)
                assert len(result.extensional) >= 1, query.sql

    def test_kinds_covered(self, ship_binding):
        kinds = {q.kind for q in generate_workload(
            ship_binding, n_queries=60, seed=1)}
        assert kinds == {"point", "lower", "upper", "range"}


class TestRunWorkload:
    def test_stats_shape(self, ship_binding, ship_system):
        queries = generate_workload(ship_binding, n_queries=30, seed=7)
        stats = run_workload(ship_system, queries)
        assert stats.queries == 30
        assert 0 <= stats.with_any <= 30
        assert stats.with_forward <= stats.with_any
        text = stats.render()
        assert "with any answer" in text

    def test_some_queries_answerable(self, ship_binding, ship_system):
        queries = generate_workload(ship_binding, n_queries=60, seed=13)
        stats = run_workload(ship_system, queries)
        assert stats.with_any > 0
